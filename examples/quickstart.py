"""Quickstart: touch a column of data with gestures.

This example walks through the core dbTouch loop on synthetic data using
the two layers of the public API:

1. the **session facade** — load a column, place it on the (simulated)
   screen, pick a query action, then slide / tap / zoom, exactly as a
   person would drive the prototype;
2. the **command protocol** underneath — every one of those calls builds a
   serializable gesture command, so the whole run can be recorded as a
   :class:`repro.GestureScript`, shipped as JSON and replayed on a fresh
   backend (see ``examples/scripted_replay.py`` for the remote version).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ExplorationSession, GestureScript, IPAD1, LocalExplorationService
from repro.viz import assign_colors, render_results, render_screen, shape_from_view


def main() -> None:
    rng = np.random.default_rng(42)
    # one year of hourly sensor readings with a daily cycle and some noise
    hours = np.arange(24 * 365)
    readings = 20.0 + 8.0 * np.sin(2 * np.pi * hours / 24.0) + rng.normal(0, 1.5, len(hours))

    session = ExplorationSession(profile=IPAD1)
    session.load_column("sensor_readings", readings)

    # record everything this session does as a replayable script
    script = session.record("quickstart")

    # ---------------------------------------------------------------- #
    # glance at the screen: object metadata, no data values yet
    # ---------------------------------------------------------------- #
    view = session.show_column("sensor_readings", height_cm=10.0, width_cm=2.0)
    for info in session.glance():
        print(f"data object: {info.name} ({info.num_rows:,} tuples, {info.dtype_names[0]})")

    colors = assign_colors(["sensor_readings"])
    print()
    print(render_screen([shape_from_view(view, colors["sensor_readings"])]))

    # ---------------------------------------------------------------- #
    # tap to reveal a single value (schema-less querying)
    # ---------------------------------------------------------------- #
    session.choose_scan(view)
    tap = session.tap(view, fraction=0.5)
    print(f"\nsingle tap mid-object reveals value: {tap.results[0].value:.2f}")

    # ---------------------------------------------------------------- #
    # slide to scan: results appear (and fade) as the gesture progresses
    # ---------------------------------------------------------------- #
    scan = session.slide(view, duration=2.0)
    print(f"\nslide-to-scan for 2.0 s returned {scan.entries_returned} entries")
    stream = session.kernel.state_of(view.name).results
    print(
        render_results(
            shape_from_view(view, "blue"), stream, now=session.device.now, max_rows=12
        )
    )

    # ---------------------------------------------------------------- #
    # slide to aggregate: a running average, continuously refined
    # ---------------------------------------------------------------- #
    session.choose_aggregate(view, "avg")
    agg = session.slide(view, duration=2.0)
    print(f"\nrunning average after the slide: {agg.final_aggregate:.2f}")
    print(f"(true mean of the column: {readings.mean():.2f})")

    # ---------------------------------------------------------------- #
    # interactive summaries: one average per touch over 21 entries
    # ---------------------------------------------------------------- #
    session.choose_summary(view, k=10, aggregate="avg")
    summary = session.slide(view, duration=2.0)
    print(
        f"\ninteractive-summary slide returned {summary.entries_returned} summaries, "
        f"examining {summary.tuples_examined} stored values"
    )

    # ---------------------------------------------------------------- #
    # zoom in for more detail, then slide again
    # ---------------------------------------------------------------- #
    session.zoom_in(view)
    finer = session.slide(view, duration=2.0)
    print(
        f"after zoom-in the object is {view.height:.1f} cm tall and the same slide "
        f"returns {finer.entries_returned} summaries"
    )

    # ---------------------------------------------------------------- #
    # session report (maintained incrementally, O(1) to read)
    # ---------------------------------------------------------------- #
    report = session.summary()
    print(
        f"\nsession total: {report.gestures} gestures, {report.entries_returned} entries shown, "
        f"{report.tuples_examined:,} of {len(readings):,} stored values examined, "
        f"worst per-touch latency {report.max_touch_latency_s * 1000:.2f} ms"
    )

    # ---------------------------------------------------------------- #
    # the exploration as data: record -> JSON -> replay on a fresh backend
    # ---------------------------------------------------------------- #
    session.stop_recording()
    wire = script.to_json()
    replica = LocalExplorationService(profile=IPAD1)
    replica.load_column("sensor_readings", readings)
    envelopes = replica.run(GestureScript.from_json(wire))
    replayed = sum(e.entries_returned for e in envelopes)
    print(
        f"\nthe whole exploration serialized to {len(wire):,} bytes of JSON "
        f"({len(script)} commands) and replayed on a fresh service: "
        f"{replayed} entries ({report.entries_returned} in the live session)"
    )


if __name__ == "__main__":
    main()
