"""The IT-analyst scenario: browsing a day of monitoring data.

The paper's second motivating user is "a data analyst of an IT business
[who] browses daily data of monitoring streams to figure out user behavior
patterns".  This example loads a synthetic day of request-monitoring events
(with a planted deployment-window latency spike, a daily traffic cycle and
one misbehaving service) and explores it with gestures:

* an interactive-summary slide over the latency column to find the spike,
* a group-by slide over the table to find the misbehaving service,
* a drag-the-column-out projection to keep working on a smaller object,
* and a rotate gesture that switches the table's physical layout
  incrementally.

Run it with::

    python examples/it_monitoring_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import ExplorationSession, IPAD1
from repro.core.actions import group_by_action
from repro.workloads import it_monitoring_scenario


def main() -> None:
    scenario = it_monitoring_scenario(num_events=500_000)
    print(scenario.description)
    print(f"stream: {len(scenario.table):,} events, columns {scenario.table.column_names}")

    session = ExplorationSession(profile=IPAD1)
    session.load_table("it_monitoring", scenario.table)

    # ---------------------------------------------------------------- #
    # find the latency spike with a summary slide
    # ---------------------------------------------------------------- #
    latency_view = session.show_column("it_monitoring", column_name="latency_ms", height_cm=10.0)
    session.choose_summary(latency_view, k=10, aggregate="avg")
    outcome = session.slide(latency_view, duration=3.0)
    values = np.asarray([r.value for r in outcome.results], dtype=np.float64)
    fractions = np.asarray([r.position_fraction for r in outcome.results])
    spike_fraction = float(fractions[int(np.argmax(values))])
    spike_time_h = spike_fraction * 24.0
    print(
        f"\nlatency summary slide: {outcome.entries_returned} summaries; the worst "
        f"latencies cluster around hour {spike_time_h:.1f} of the day "
        f"(summary {values.max():.0f} ms vs median {np.median(values):.0f} ms)"
    )

    # ---------------------------------------------------------------- #
    # break latency down by service with a group-by slide on the table
    # ---------------------------------------------------------------- #
    table_view = session.show_table("it_monitoring", x=4.0, height_cm=10.0, width_cm=8.0)
    session.choose_action(
        table_view, group_by_action("service_id", "latency_ms", aggregate="avg")
    )
    session.slide(table_view, duration=3.0)
    groups = session.kernel.state_of(table_view.name).group_by.snapshot()
    print("\nrunning per-service averages after one slide over the table object:")
    for group in sorted(groups, key=lambda g: -(g.value or 0.0)):
        print(
            f"  service {group.key}: avg latency {group.value:7.1f} ms "
            f"over {group.count} touched events"
        )
    worst = max(groups, key=lambda g: g.value or 0.0)
    print(f"service {worst.key} looks misbehaving (planted culprit: service 5)")

    # ---------------------------------------------------------------- #
    # drag the interesting column out of the fat table (projection gesture)
    # ---------------------------------------------------------------- #
    dragged = session.drag_column_out(
        table_view, "latency_ms", new_object_name="latency_only", x=14.0
    )
    small_view = session.device.view(f"{dragged.created_objects[0]}-view")
    session.choose_summary(small_view, k=10)
    fast = session.slide(small_view, duration=1.0)
    print(
        f"\nafter dragging 'latency_ms' out into its own object ({dragged.created_objects[0]}), "
        f"a 1 s slide still returns {fast.entries_returned} summaries with worst per-touch "
        f"latency {fast.max_touch_latency_s * 1000:.2f} ms"
    )

    # ---------------------------------------------------------------- #
    # rotate the table: incremental layout change
    # ---------------------------------------------------------------- #
    rotation_outcome = session.rotate(table_view)
    state = session.kernel.state_of(table_view.name)
    progress = state.rotation.progress
    print(
        f"\nrotate gesture switched the table towards a {rotation_outcome.layout_kind.value} "
        f"layout; only {progress.fraction_converted:.0%} of the data was converted up front "
        f"({progress.cells_copied:,} of {state.rotation.full_conversion_cost_cells:,} cells)"
    )

    report = session.summary()
    print(
        f"\nsession total: {report.gestures} gestures, {report.tuples_examined:,} values examined "
        f"out of {len(scenario.table) * scenario.table.num_columns:,} stored cells"
    )


if __name__ == "__main__":
    main()
