"""Record an exploration, ship it as JSON, replay it anywhere.

A dbTouch query is a session of continuous gestures — and since the service
redesign a session is also *data*: every gesture is a serializable command,
and a recorded :class:`repro.GestureScript` survives a JSON round-trip.
This example demonstrates the full loop the paper's Section 2.9 sketches:

1. an analyst explores the IT-monitoring scenario interactively (we drive
   the session facade, recording as we go);
2. the recording is serialized to JSON — the wire format a tablet app
   would store or send;
3. the same JSON replays on a fresh in-process backend with identical
   results, and then against a *remote* deployment where the server holds
   the base data and the device keeps only a small sample, under all three
   network policies.

Run it with::

    python examples/scripted_replay.py
"""

from __future__ import annotations

from repro import (
    ExplorationSession,
    GestureScript,
    LocalExplorationService,
    RemoteExplorationService,
)
from repro.metrics.reporting import format_comparison
from repro.remote.client import RemotePolicy
from repro.remote.network import WAN
from repro.workloads.scenarios import it_monitoring_scenario


def main() -> None:
    scenario = it_monitoring_scenario(num_events=300_000)
    print(f"scenario: {scenario.description}\n")

    # ---------------------------------------------------------------- #
    # 1. explore interactively, recording every gesture
    # ---------------------------------------------------------------- #
    session = ExplorationSession()
    scenario.load_into(session.service)
    script = session.record("latency-investigation")

    view = session.show_column("latency_ms", height_cm=10.0)
    session.choose_summary(view, k=10, aggregate="avg")
    session.slide(view, duration=2.0)                      # coarse pass
    session.zoom_in(view)                                  # more detail
    session.slide(view, duration=1.5, start_fraction=0.5, end_fraction=0.65)
    session.tap(view, fraction=0.575)                      # the spike
    session.stop_recording()

    live = session.summary()
    print(
        f"live session: {live.gestures} gestures, {live.entries_returned} entries, "
        f"{live.tuples_examined:,} tuples examined"
    )

    # ---------------------------------------------------------------- #
    # 2. the exploration as JSON
    # ---------------------------------------------------------------- #
    wire = script.to_json(indent=2)
    print(f"recorded script: {len(script)} commands, {len(wire):,} bytes of JSON")

    # ---------------------------------------------------------------- #
    # 3a. replay on a fresh local backend: identical outcomes
    # ---------------------------------------------------------------- #
    local = LocalExplorationService()
    scenario.load_into(local)
    envelopes = local.run(GestureScript.from_json(wire))
    replayed_entries = sum(e.entries_returned for e in envelopes)
    print(
        f"local replay: {replayed_entries} entries "
        f"(identical: {replayed_entries == live.entries_returned})\n"
    )

    # ---------------------------------------------------------------- #
    # 3b. replay against a server over a simulated WAN, per policy
    # ---------------------------------------------------------------- #
    rows_report: dict[str, dict[str, float]] = {}
    for policy in RemotePolicy:
        remote = RemoteExplorationService(policy=policy, network_profile=WAN)
        scenario.load_into(remote)
        remote_envelopes = remote.run(GestureScript.from_json(wire))
        slides = [e for e in remote_envelopes if e.command_kind in ("slide", "tap")]
        rows_report[policy.value] = {
            "entries": float(sum(e.entries_returned for e in remote_envelopes)),
            "remote_requests": float(sum(e.remote_requests for e in remote_envelopes)),
            "network_seconds": sum(e.network_seconds for e in remote_envelopes),
            "worst_touch_ms": max(e.max_touch_latency_s for e in slides) * 1000.0,
        }

    print(format_comparison(f"replaying {script.name!r} over a {WAN.name} link", rows_report))
    print(
        "\nthe hybrid policy replays the same script with near-local touch "
        "latencies while shipping only the fine-grained touches to the server."
    )


if __name__ == "__main__":
    main()
