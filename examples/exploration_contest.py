"""The exploration contest: dbTouch vs a SQL user on a monolithic DBMS.

Appendix A of the paper proposes a demo contest: two audience members race
to discover the properties planted in the same dataset, one with the
dbTouch prototype, the other with the SQL interface of a column-store DBMS
on a laptop.  This example scripts both contestants (see
``repro.workloads.contest``) and prints the outcome: who found the planted
pattern, how many interactions each needed and how much data each system
had to read.

Run it with::

    python examples/exploration_contest.py
"""

from __future__ import annotations

from repro.metrics.reporting import format_comparison
from repro.workloads import make_contest_dataset, run_contest


def main() -> None:
    dataset = make_contest_dataset(num_rows=200_000)
    print(
        f"contest dataset: {len(dataset.table):,} rows x {dataset.table.num_columns} sensors; "
        f"planted patterns: "
        + ", ".join(f"{p.kind.value} in {p.column}" for p in dataset.patterns)
    )

    for column_name in ("sensor_a", "sensor_b"):
        result = run_contest(dataset, column_name)
        pattern = result.pattern
        print(
            f"\n=== hunting the {pattern.kind.value} planted in {column_name} "
            f"(fractions {pattern.start_fraction:.2f}-{pattern.end_fraction:.2f}) ==="
        )
        rows = {
            "dbtouch explorer": {
                "found": float(result.dbtouch.found),
                "interactions": float(result.dbtouch.interactions),
                "values_read": float(result.dbtouch.tuples_examined),
            },
            "sql explorer": {
                "found": float(result.sql.found),
                "interactions": float(result.sql.interactions),
                "values_read": float(result.sql.tuples_examined),
            },
        }
        print(format_comparison("contest result", rows, float_format="{:.0f}"))
        print(
            f"winner: {result.winner} — the SQL explorer read "
            f"{result.data_read_ratio:,.0f}x more data to localize the same pattern"
        )


if __name__ == "__main__":
    main()
