"""Trace mining end to end: record a fleet's sessions, mine, speculate.

dbTouch's adaptive loop does not stop at one session: every recorded
exploration is evidence of how analysts actually move, and a fleet can
mine that corpus into gesture policies that speculate ahead of the next
user.  This example closes the loop:

1. a small "fleet day" of sessions explores a sensor column with a
   habitual rhythm (slide, slide, zoom in, tap ...), each recorded via
   ``ExplorationSession.record_trace`` and appended to a
   :class:`repro.TraceCorpus` (with one torn write injected, because real
   corpora always have them);
2. the corpus is mined offline into an order-2
   :class:`repro.GestureTransitionModel` and saved as a JSON checkpoint;
3. a fresh serving session adopts the checkpoint as a
   :class:`repro.SpeculativePolicy` and replays tomorrow's session: the
   policy predicts each next gesture, schedules background warm-ups, and
   its online hit rate is compared against the persistence baseline (the
   "last gesture repeats" assumption the live prefetcher embodies).

Run it with::

    python examples/trace_mining.py

Exits non-zero if the mined policy fails to beat the baseline.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ExplorationSession,
    GestureTransitionModel,
    SpeculativePolicy,
    TraceCorpus,
    mine_corpus,
    persistence_hit_rate,
)
from repro.core.commands import TimedCommand
from repro.touchio.device import DeviceProfile

PROFILE = DeviceProfile(
    name="fleet-tablet",
    screen_width_cm=20.0,
    screen_height_cm=15.0,
    sampling_rate_hz=25.0,
    finger_width_cm=0.08,
)

#: The fleet's habitual exploration rhythm (two quick slides, a zoom to
#: change granularity, a tap to inspect, then back to sliding).
HABIT = ["slide", "slide", "zoom-in", "tap", "slide", "tap"]
SESSIONS = 8
CYCLES_PER_SESSION = 3


def fresh_session(rng: np.random.Generator) -> ExplorationSession:
    session = ExplorationSession(profile=PROFILE)
    session.load_column(
        "sensor", rng.integers(0, 10_000, size=50_000, dtype=np.int64)
    )
    return session


def drive_habit(session: ExplorationSession, rng: np.random.Generator) -> None:
    """One session following the fleet habit, with a little human noise."""
    view = session.show_column("sensor")
    for _ in range(CYCLES_PER_SESSION):
        for kind in HABIT:
            if rng.random() < 0.1:  # occasionally break the habit
                kind = "tap" if kind == "slide" else "slide"
            if kind == "slide":
                a, b = sorted(rng.uniform(0.0, 1.0, size=2))
                session.slide(view, duration=0.4, start_fraction=a, end_fraction=b)
            elif kind == "zoom-in":
                session.zoom_in(view, duration=0.3)
            else:
                session.tap(view, fraction=float(rng.random()))


def main() -> int:
    rng = np.random.default_rng(42)
    with tempfile.TemporaryDirectory(prefix="dbtouch-mining-") as root:
        corpus = TraceCorpus(Path(root) / "corpus")

        # ------------------------------------------------------------ #
        # 1. the fleet day: record sessions into the corpus
        # ------------------------------------------------------------ #
        for _ in range(SESSIONS):
            session = fresh_session(rng)
            session.record_trace()
            drive_habit(session, rng)
            corpus.append_trace(session.stop_trace())
        with (Path(root) / "corpus" / "traces.jsonl").open("a") as handle:
            handle.write('{"version": 1, "trace": "torn')  # a torn write
        print(f"corpus: {len(corpus)} traces recorded")

        # ------------------------------------------------------------ #
        # 2. mine offline, checkpoint the model
        # ------------------------------------------------------------ #
        report = mine_corpus(corpus, order=2, seed=7)
        print(
            f"mined : {report.traces} traces, {report.records} records, "
            f"{report.skipped} skipped (torn writes survive mining)"
        )
        checkpoint = report.model.save(Path(root) / "gesture-policy.json")
        print(
            f"model : order-{report.model.order}, "
            f"{report.model.transitions_observed} transitions "
            f"-> {checkpoint.name}"
        )

        # ------------------------------------------------------------ #
        # 3. adopt the checkpoint and replay tomorrow's session
        # ------------------------------------------------------------ #
        policy = SpeculativePolicy(GestureTransitionModel.load(checkpoint))
        tomorrow = fresh_session(rng)
        tomorrow.adopt_speculation(policy)
        tomorrow.record_trace()
        drive_habit(tomorrow, rng)
        replayed: list[TimedCommand] = tomorrow.stop_trace()

        stats = tomorrow.speculation_stats()
        baseline = persistence_hit_rate([replayed])
        print("\nlive speculation over tomorrow's session:")
        print(f"  mined predictions : {stats['mined_predictions']}")
        print(f"  mined hit rate    : {policy.hit_rate:.2f}")
        print(f"  persistence rate  : {baseline.rate:.2f}")
        print(
            f"  warm-ups          : {stats['speculations_completed']} completed, "
            f"{stats['rows_warmed']} rows warmed, "
            f"{stats['levels_staged']} levels staged"
        )

        if stats["speculation_errors"]:
            print(f"FAILED: {stats['speculation_errors']} speculation errors", file=sys.stderr)
            return 1
        if stats["speculations_completed"] != stats["speculations_scheduled"]:
            print("FAILED: scheduled warm-ups did not all complete", file=sys.stderr)
            return 1
        if report.skipped != 1:
            print("FAILED: the torn write was not accounted", file=sys.stderr)
            return 1
        if policy.hit_rate <= baseline.rate:
            print(
                f"FAILED: mined hit rate {policy.hit_rate:.2f} does not beat "
                f"the persistence baseline {baseline.rate:.2f}",
                file=sys.stderr,
            )
            return 1
    print("\nmined policy beats the persistence baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
