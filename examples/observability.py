"""Observability end-to-end: trace a slow gesture across a sharded fleet.

The telemetry plane has three moving parts, and this walk-through drives
all of them against a live 2-shard fleet:

* **distributed tracing** — every forwarded gesture opens a front-door
  root span and ships its context to the worker, whose kernel records
  ``queue_wait`` / ``kernel_exec`` / ``chunk_fault`` / ``cache_lookup``
  child spans; draining the fleet and stitching the partials yields one
  span tree per gesture, annotated with the site each span ran on,
* **the telemetry registry** — scheduler, index, chunk cache and tracer
  counters federate into one merged fleet snapshot, rendered in the
  Prometheus text exposition format any scraper can read,
* **the flight recorder** — a bounded ring of the last N completed traces
  plus a slow-gesture log, drained over the ``telemetry`` verb.

The script validates every exposition line against the Prometheus text
grammar and exits non-zero on a malformed one, so CI reuses it as the
telemetry smoke test.

Run it with::

    python examples/observability.py
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import Column, DiskColumnStore, ShowColumn, Slide, StoreCatalog, stitch_traces
from repro.obs import TraceConfig
from repro.serving import (
    ShardedClient,
    ShardedServer,
    ShardedServerConfig,
    WorkerConfig,
)

NUM_ROWS = 300_000

#: One line of the Prometheus text exposition format.
_METRIC_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r'|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? '
    r"(-?[0-9.eE+-]+|\+Inf|-Inf|NaN))$"
)


def publish_snapshot(root: Path) -> None:
    """Write the dataset once; every worker maps these same files."""
    rng = np.random.default_rng(11)
    catalog = StoreCatalog(DiskColumnStore(root))
    catalog.persist_column(Column("sensor", rng.normal(size=NUM_ROWS)))
    print(f"published snapshot: {NUM_ROWS:,} rows under {root}")


def check_exposition(text: str, label: str) -> int:
    """Validate every exposition line; returns the number of bad lines."""
    bad = 0
    for line in text.strip().splitlines():
        if not _METRIC_LINE.match(line):
            print(f"MALFORMED [{label}]: {line!r}", file=sys.stderr)
            bad += 1
    lines = len(text.strip().splitlines())
    print(f"exposition [{label}]: {lines} lines, {bad} malformed")
    return bad


def render_tree(nodes, depth: int = 0) -> None:
    for node in nodes:
        span = node["span"]
        tags = {k: v for k, v in span.tags.items() if k != "session"}
        print(
            f"  {'  ' * depth}{span.name:<14} {span.duration_s * 1e3:8.3f} ms"
            f"  @{span.site}  {tags if tags else ''}"
        )
        render_tree(node["children"], depth + 1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
        root = Path(tmp) / "snapshot"
        publish_snapshot(root)

        config = ShardedServerConfig(
            num_workers=2,
            worker=WorkerConfig(
                snapshot_path=str(root),
                scheduler_workers=2,
                trace_sample_rate=1.0,  # trace every gesture
                slow_trace_threshold_s=0.0005,  # everything over 0.5 ms is "slow"
                cache_bytes=1 << 20,  # a tiny cache, to force chunk faults
            ),
            tracing=TraceConfig(),  # front-door tracer: stitchable roots
        )

        with ShardedServer(config) as server:
            with ShardedClient("127.0.0.1", server.port, session_id="ops") as client:
                # a cold slide: chunk faults and cache lookups on the way
                client.execute(ShowColumn(object_name="sensor", view_name="v"))
                client.execute(
                    Slide(view="v", duration=1.5, start_fraction=0.05, end_fraction=0.9)
                )

                report = client.telemetry()
                print(f"\nfleet: {report['alive_workers']} of {report['num_workers']} alive")
                metrics = report["metrics"]
                for key in sorted(metrics):
                    if key.startswith(("storage_", "tracer_", "frontdoor_")):
                        print(f"  {key} = {metrics[key]:g}")

                print("\nstitched gesture traces (front door -> worker -> kernel):")
                for trace in stitch_traces(report["traces"]):
                    print(f"- trace {trace.trace_id[:12]} ({len(trace.spans)} spans)")
                    render_tree(trace.tree())

                slow = report["slow_traces"]
                print(f"\nslow log: {len(slow)} trace(s) over the threshold")

                bad = check_exposition(report["exposition"], "fleet")
                for worker_id, detail in sorted(report["workers"].items()):
                    if "exposition" in detail:
                        bad += check_exposition(detail["exposition"], f"worker-{worker_id}")

            server.drain(timeout=30.0)

    if bad:
        print(f"\nFAILED: {bad} malformed exposition line(s)", file=sys.stderr)
        return 1
    print("\nall exposition output well-formed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
