"""The astronomer scenario: browsing a sky survey for interesting effects.

The paper motivates dbTouch with an astronomer who "wants to browse parts
of the sky to look for interesting effects".  This example loads a
synthetic sky-object catalog with a planted transient event (a small
declination band of unusually bright objects) and explores it the dbTouch
way:

* a coarse interactive-summary slide over the magnitude column to spot the
  suspicious region,
* a zoom-in plus a slower, partial slide to localize it,
* a tap on the table object to inspect a full tuple from the region,
* and a comparison of how much data was touched versus what a single
  full-scan SQL query would have read.

Run it with::

    python examples/astronomer_sky_survey.py
"""

from __future__ import annotations

import numpy as np

from repro import ExplorationSession, IPAD1
from repro.baseline import MonolithicEngine, SqlInterface
from repro.core.kernel import KernelConfig
from repro.workloads import sky_survey_scenario


def main() -> None:
    scenario = sky_survey_scenario(num_objects=500_000)
    print(scenario.description)
    print(f"catalog: {len(scenario.table):,} sky objects, columns {scenario.table.column_names}")

    # caching/prefetching off so the "data touched" report reflects the
    # exploration itself
    session = ExplorationSession(
        profile=IPAD1, config=KernelConfig(enable_cache=False, enable_prefetch=False)
    )
    session.load_table("sky_survey", scenario.table)

    # ---------------------------------------------------------------- #
    # phase 1: coarse slide over the magnitude column
    # ---------------------------------------------------------------- #
    magnitude_view = session.show_column("sky_survey", column_name="magnitude", height_cm=10.0)
    session.choose_summary(magnitude_view, k=10, aggregate="avg")
    coarse = session.slide(magnitude_view, duration=3.0)

    values = np.asarray([r.value for r in coarse.results], dtype=np.float64)
    fractions = np.asarray([r.position_fraction for r in coarse.results])
    brightest_fraction = float(fractions[int(np.argmin(values))])
    print(
        f"\ncoarse slide: {coarse.entries_returned} summaries; the brightest region "
        f"(lowest magnitude) is around fraction {brightest_fraction:.2f} of the column"
    )

    # ---------------------------------------------------------------- #
    # phase 2: zoom in and slide slowly over the suspicious region only
    # ---------------------------------------------------------------- #
    session.zoom_in(magnitude_view)
    lo = max(0.0, brightest_fraction - 0.05)
    hi = min(1.0, brightest_fraction + 0.05)
    fine = session.slide(magnitude_view, duration=3.0, start_fraction=lo, end_fraction=hi)
    fine_values = np.asarray([r.value for r in fine.results], dtype=np.float64)
    print(
        f"zoomed slide over [{lo:.2f}, {hi:.2f}]: {fine.entries_returned} summaries, "
        f"brightest summary magnitude {fine_values.min():.2f} "
        f"(background is around {np.median(values):.2f})"
    )

    # ---------------------------------------------------------------- #
    # phase 3: tap the full table at the interesting position
    # ---------------------------------------------------------------- #
    table_view = session.show_table("sky_survey", x=6.0, height_cm=10.0, width_cm=8.0)
    tap = session.tap(table_view, fraction=brightest_fraction)
    print("\na tap on the table object at that position reveals the tuple:")
    for attribute, value in tap.revealed_tuple.items():
        print(f"  {attribute:>17}: {value:.4f}")

    ground_truth = scenario.patterns[0]
    found = (
        ground_truth.start_fraction - 0.05
        <= brightest_fraction
        <= ground_truth.end_fraction + 0.05
    )
    print(
        f"\nplanted transient lives in fractions "
        f"[{ground_truth.start_fraction:.2f}, {ground_truth.end_fraction:.2f}] — "
        f"{'found it' if found else 'missed it'}"
    )

    # ---------------------------------------------------------------- #
    # how much data did the exploration touch, versus one SQL full scan?
    # ---------------------------------------------------------------- #
    touched = session.summary().tuples_examined
    engine = MonolithicEngine()
    engine.register(scenario.table)
    sql = SqlInterface(engine)
    sql.execute("SELECT AVG(magnitude) FROM sky_survey")
    print(
        f"\ndata touched by the whole gesture session: {touched:,} values; "
        f"a single SQL AVG over the column reads {engine.total_cells_read:,} values"
    )


if __name__ == "__main__":
    main()
