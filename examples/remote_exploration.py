"""Remote processing: a tablet exploring data that lives on a server.

Section 4 of the paper sketches the split deployment — the server keeps the
base data and the big samples, the device keeps only small samples, and
dbTouch must avoid shipping every single touch over the network.  This
example compares the three client policies implemented in ``repro.remote``
(local-only, remote-every-touch, hybrid) over a simulated WAN link and
shows why the hybrid policy is the one that stays interactive.

Run it with::

    python examples/remote_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.metrics.reporting import format_comparison
from repro.remote import (
    RemoteExplorationClient,
    RemotePolicy,
    RemoteServer,
    SimulatedLink,
    WAN,
)
from repro.storage.column import Column


def main() -> None:
    rows = 5_000_000
    server = RemoteServer()
    server.host_column(Column("server_data", np.arange(rows, dtype=np.int64)))
    print(f"server hosts 'server_data' with {rows:,} tuples; link profile: {WAN.name} "
          f"({WAN.round_trip_s * 1000:.0f} ms round trip)")

    # a 60-touch coarse slide followed by a 20-touch fine slide into one region
    coarse_rowids = [int(r) for r in np.linspace(0, rows - 1, 60)]
    fine_rowids = list(range(2_500_000, 2_500_020))

    rows_report: dict[str, dict[str, float]] = {}
    for policy in RemotePolicy:
        client = RemoteExplorationClient(
            server, SimulatedLink(WAN), "server_data", policy=policy, local_sample_rows=4096
        )
        client.slide(coarse_rowids)
        answers = client.slide(fine_rowids, stride_hint=1)
        refined = sum(1 for a in answers if a.refined_value is not None)
        rows_report[policy.value] = {
            "mean_response_ms": client.stats.mean_response_s * 1000.0,
            "max_response_ms": client.stats.max_response_s * 1000.0,
            "remote_requests": float(client.stats.remote_requests),
            "refined_answers": float(refined),
            "network_seconds": client.network_stats.simulated_seconds,
        }

    print()
    print(format_comparison("remote exploration policies (80-touch session)", rows_report))
    print(
        "\nthe hybrid policy answers every touch from the local sample immediately and "
        "only ships the fine-grained touches to the server for refinement — the "
        "behaviour the paper asks for."
    )


if __name__ == "__main__":
    main()
