"""Sharded serving end-to-end: publish, serve, explore over the wire.

The dbTouch serving story at fleet scale: base data is published *once*
as an on-disk snapshot, N worker processes attach it read-only (shared
through the page cache, never copied), and a TCP front door pins every
session to one worker by consistent hash — so each user's gestures build
their adaptive state in exactly one kernel while the fleet uses every
core on the machine.

The walk-through:

* publish a 500k-row telemetry column into a snapshot directory,
* start a :class:`repro.serving.ShardedServer` with 4 worker processes
  attached to that snapshot,
* explore it from an ordinary :class:`repro.ExplorationSession` — the
  session drives a :class:`repro.serving.ShardedClient` exactly the way
  it drives an in-process service,
* read the fleet-wide ``stats`` aggregation, then drain and shut down.

Run it with::

    python examples/sharded_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Column, DiskColumnStore, ExplorationSession, StoreCatalog
from repro.serving import (
    ShardedClient,
    ShardedServer,
    ShardedServerConfig,
    WorkerConfig,
    shard_for_session,
)

NUM_ROWS = 500_000
NUM_WORKERS = 4


def publish_snapshot(root: Path) -> None:
    """Write the dataset once; every worker maps these same files."""
    rng = np.random.default_rng(7)
    values = np.concatenate(
        [
            rng.normal(loc=20.0, scale=4.0, size=NUM_ROWS - 2_000),
            rng.normal(loc=95.0, scale=1.5, size=2_000),  # a planted hot band
        ]
    )
    rng.shuffle(values)
    catalog = StoreCatalog(DiskColumnStore(root))
    catalog.persist_column(Column("telemetry", values))
    print(f"published snapshot: {NUM_ROWS:,} rows under {root}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="dbtouch-shard-") as tmp:
        root = Path(tmp)
        publish_snapshot(root)

        config = ShardedServerConfig(
            num_workers=NUM_WORKERS,
            worker=WorkerConfig(snapshot_path=str(root)),
        )
        with ShardedServer(config) as server:
            print(
                f"serving on {server.address[0]}:{server.port} "
                f"with {NUM_WORKERS} worker processes"
            )

            # -------------------------------------------------------- #
            # two users, pinned to their shards by consistent hash
            # -------------------------------------------------------- #
            for user in ("alice", "bob"):
                shard = shard_for_session(user, NUM_WORKERS)
                print(f"session {user!r} is pinned to worker {shard}")

            with ShardedClient("127.0.0.1", server.port, session_id="alice") as wire:
                session = ExplorationSession(service=wire)
                # live View objects stay server-side: refer to views by name
                view = "v"
                session.show_column("telemetry", view_name=view, height_cm=10.0)
                session.choose_summary(view, k=10, aggregate="avg")
                coarse = session.slide(view, duration=2.0)
                print(
                    f"\nalice's coarse slide: {coarse.entries_returned} summaries, "
                    f"{coarse.tuples_examined:,} tuples examined"
                )
                focus = session.slide(
                    view, duration=2.0, start_fraction=0.4, end_fraction=0.6
                )
                print(
                    f"alice's focused slide: {focus.entries_returned} summaries, "
                    f"{focus.tuples_examined:,} tuples examined"
                )
                summary = session.summary()
                print(
                    f"alice so far: {summary.gestures} gestures, "
                    f"{summary.entries_returned} entries returned"
                )

                # ---------------------------------------------------- #
                # fleet-wide stats, aggregated across every worker
                # ---------------------------------------------------- #
                stats = wire.stats()
                print(
                    f"\nfleet: workers alive {stats['alive_workers']}, "
                    f"sessions {sorted(stats['sessions'])}"
                )
                for sid, counters in stats["sessions"].items():
                    print(f"  {sid}: {counters}")

                counters = wire.close_session()
                print(f"\nalice's final counters at close: {counters}")

                # ---------------------------------------------------- #
                # graceful drain: finish in-flight work, refuse new work
                # ---------------------------------------------------- #
                drained = wire.drain(timeout=30)
                print(f"drain completed cleanly: {drained}")
        print("fleet stopped")


if __name__ == "__main__":
    main()
