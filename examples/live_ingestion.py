"""Live ingestion: explore a column while new rows keep arriving.

The dbTouch promise does not pause for the data to finish loading.  This
example walks the whole streaming-append story on one session:

1. **load and explore** — show a sensor column, crack it with a few
   range selections (adaptive indexing as a gesture side effect);
2. **append mid-session** — new readings land via
   :meth:`repro.ExplorationSession.append` (a recorded, replayable
   gesture command).  The cracked index is *not* thrown away: its pieces
   keep answering for the frozen prefix through a validity window while
   the appended hot tail is scanned;
3. **merge the tail** — fold the tail into the cracked pieces (on a
   server this runs on the background lane; here we call it directly)
   and watch the window close;
4. **compact and re-attach** — persist the column, append more rows,
   fold the in-memory tail into the chunk files with
   :meth:`repro.StoreCatalog.compact_appends`, and warm-restart from the
   snapshot with every appended row present.

Run it with::

    python examples/live_ingestion.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Column, DiskColumnStore, ExplorationSession, StoreCatalog
from repro.engine.filter import Comparison, Predicate

BASE_ROWS = 500_000
BATCH_ROWS = 20_000


def fresh_readings(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.normal(500.0, 150.0, size=n)


def window_report(session: ExplorationSession, name: str) -> str:
    cracker = session.kernel.index_manager.cracker_for(name)
    if cracker is None:
        return "no cracker yet"
    return (
        f"{cracker.num_pieces} pieces over rows [0, {cracker.covered_rows:,}), "
        f"hot tail: {cracker.tail_rows:,} rows"
    )


def main() -> None:
    rng = np.random.default_rng(11)

    # ---------------------------------------------------------------- #
    # 1. load and explore: selections crack the column
    # ---------------------------------------------------------------- #
    session = ExplorationSession()
    session.load_column("sensor", fresh_readings(rng, BASE_ROWS))
    view = session.show_column("sensor")
    hot = Predicate(Comparison.BETWEEN, 440.0, upper=460.0)
    for predicate in (hot, Predicate(Comparison.BETWEEN, 600.0, upper=630.0)):
        selection = session.select_where(view.name, predicate)
        print(
            f"selected {len(selection.rowids):,} rows via {selection.strategy!r}, "
            f"scanned {selection.rows_scanned:,}"
        )
    print(f"index after exploring : {window_report(session, 'sensor')}")

    # ---------------------------------------------------------------- #
    # 2. rows arrive mid-session: the index keeps its pieces
    # ---------------------------------------------------------------- #
    new_length = session.append("sensor", values=fresh_readings(rng, BATCH_ROWS).tolist())
    print(f"\nappended {BATCH_ROWS:,} rows -> column holds {new_length:,}")
    print(f"index after append    : {window_report(session, 'sensor')}")
    selection = session.select_where(view.name, hot)
    print(
        f"hot range still exact : {len(selection.rowids):,} rows "
        f"(pieces answer the prefix, the tail is scanned)"
    )

    # ---------------------------------------------------------------- #
    # 3. fold the hot tail into the cracked pieces
    # ---------------------------------------------------------------- #
    merged = session.service.merge_index_tails()
    print(f"\nmerged {merged:,} tail rows into the cracker")
    print(f"index after merge     : {window_report(session, 'sensor')}")

    # ---------------------------------------------------------------- #
    # 4. persist, append onto the paged column, compact, re-attach warm
    # ---------------------------------------------------------------- #
    with tempfile.TemporaryDirectory(prefix="dbtouch-ingest-") as root:
        catalog = StoreCatalog(DiskColumnStore(Path(root)))
        catalog.persist_column(
            Column("sensor", np.asarray(session.catalog.column("sensor").values))
        )
        paged = catalog.load_column("sensor")
        paged.append_batch(fresh_readings(rng, BATCH_ROWS))
        print(
            f"\npaged column: {paged.base_rows:,} rows on disk "
            f"+ {paged.tail_rows:,} in the in-memory tail"
        )
        compacted = catalog.compact_appends("sensor")
        print(f"compact_appends -> {compacted:,} rows, all in chunk files")
        reopened = StoreCatalog(DiskColumnStore(Path(root))).load_column("sensor")
        print(
            f"warm re-attach        : {len(reopened):,} rows, "
            f"tail {reopened.tail_rows} (everything served from chunks)"
        )


if __name__ == "__main__":
    main()
