"""Metrics: collectors and experiment-series reporting for the benchmarks."""

from repro.metrics.collectors import GestureMetrics, LatencyStats, MetricsCollector
from repro.metrics.reporting import ExperimentSeries, SeriesPoint, format_comparison

__all__ = [
    "ExperimentSeries",
    "GestureMetrics",
    "LatencyStats",
    "MetricsCollector",
    "SeriesPoint",
    "format_comparison",
]
