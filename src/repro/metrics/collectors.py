"""Metric collectors used by the benchmark harness.

The paper's evaluation measures "number of data entries returned" under
varying gesture speed and object size; the extension experiments also need
per-touch latency distributions, data-read accounting and stall counts.
The collectors here are deliberately small, dependency-free containers so
benchmarks stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MetricsError
from repro.core.kernel import GestureOutcome
from repro.obs.stats import nearest_rank


@dataclass
class LatencyStats:
    """Summary statistics of a set of per-touch latencies."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @staticmethod
    def from_samples(samples: list[float]) -> "LatencyStats":
        """Compute the summary from raw latency samples.

        Percentiles follow the codebase-wide nearest-rank rule
        (:func:`repro.obs.stats.nearest_rank`) so per-touch summaries and
        the service layer's per-command reports agree on what "p95"
        means.
        """
        if not samples:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return LatencyStats(
            count=len(ordered),
            mean_s=sum(ordered) / len(ordered),
            p50_s=nearest_rank(ordered, 0.50),
            p95_s=nearest_rank(ordered, 0.95),
            p99_s=nearest_rank(ordered, 0.99),
            max_s=ordered[-1],
        )


@dataclass
class GestureMetrics:
    """Metrics extracted from one gesture outcome."""

    gesture_type: str
    duration_s: float
    entries_returned: int
    tuples_examined: int
    cache_hits: int
    prefetch_hits: int
    latency: LatencyStats

    @staticmethod
    def from_outcome(outcome: GestureOutcome) -> "GestureMetrics":
        """Extract metrics from a kernel gesture outcome."""
        return GestureMetrics(
            gesture_type=outcome.gesture_type.value,
            duration_s=outcome.duration_s,
            entries_returned=outcome.entries_returned,
            tuples_examined=outcome.tuples_examined,
            cache_hits=outcome.cache_hits,
            prefetch_hits=outcome.prefetch_hits,
            latency=LatencyStats.from_samples(outcome.per_touch_latencies_s),
        )


class MetricsCollector:
    """Accumulates gesture metrics across a whole experiment run."""

    def __init__(self) -> None:
        self._records: list[GestureMetrics] = []

    def record(self, outcome: GestureOutcome) -> GestureMetrics:
        """Record one gesture outcome and return its extracted metrics."""
        metrics = GestureMetrics.from_outcome(outcome)
        self._records.append(metrics)
        return metrics

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[GestureMetrics]:
        """Everything recorded so far."""
        return list(self._records)

    @property
    def total_entries_returned(self) -> int:
        """Sum of entries returned across all recorded gestures."""
        return sum(r.entries_returned for r in self._records)

    @property
    def total_tuples_examined(self) -> int:
        """Sum of tuples examined across all recorded gestures."""
        return sum(r.tuples_examined for r in self._records)

    def latency_overall(self) -> LatencyStats:
        """Latency summary pooled over every recorded gesture."""
        samples: list[float] = []
        for record in self._records:
            # reconstruct approximate samples from each record's summary is
            # lossy; collectors therefore keep the per-gesture summaries and
            # pool only their maxima/means for the overall view
            samples.append(record.latency.max_s)
        return LatencyStats.from_samples(samples)

    def budget_violations(self, budget_s: float) -> int:
        """How many recorded gestures exceeded ``budget_s`` for any touch."""
        if budget_s <= 0:
            raise MetricsError("budget must be positive")
        return sum(1 for r in self._records if r.latency.max_s > budget_s)
