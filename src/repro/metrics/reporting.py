"""Result-series reporting for the benchmark harness.

Every benchmark regenerates a table or figure from the paper as a *series*:
an x-axis (gesture duration, object size, network latency, ...) and one or
more y-values per x.  The reporters here hold those series, format them as
aligned text tables (what the benchmark prints) and check the qualitative
properties the paper's figures exhibit (monotonicity, approximate
linearity, who-wins comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MetricsError


@dataclass
class SeriesPoint:
    """One (x, metrics) point of an experiment series."""

    x: float
    values: dict[str, float]


class ExperimentSeries:
    """An ordered series of measurements for one experiment."""

    def __init__(self, name: str, x_label: str, y_labels: list[str]):
        if not y_labels:
            raise MetricsError("a series needs at least one y column")
        self.name = name
        self.x_label = x_label
        self.y_labels = list(y_labels)
        self._points: list[SeriesPoint] = []

    # ------------------------------------------------------------------ #
    # data entry
    # ------------------------------------------------------------------ #
    def add(self, x: float, **values: float) -> None:
        """Add a measurement point; values must cover every y column."""
        missing = [label for label in self.y_labels if label not in values]
        if missing:
            raise MetricsError(f"missing values for {missing} in series {self.name!r}")
        extra = [label for label in values if label not in self.y_labels]
        if extra:
            raise MetricsError(f"unexpected values {extra} in series {self.name!r}")
        self._points.append(SeriesPoint(x=float(x), values=dict(values)))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> list[SeriesPoint]:
        """All points, in insertion order."""
        return list(self._points)

    def xs(self) -> np.ndarray:
        """The x values as an array."""
        return np.asarray([p.x for p in self._points], dtype=np.float64)

    def ys(self, label: str) -> np.ndarray:
        """The y values of one column as an array."""
        if label not in self.y_labels:
            raise MetricsError(f"series {self.name!r} has no column {label!r}")
        return np.asarray([p.values[label] for p in self._points], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # qualitative checks (the "shape" assertions the benchmarks make)
    # ------------------------------------------------------------------ #
    def is_monotonic_increasing(self, label: str, tolerance: float = 0.0) -> bool:
        """Whether the column never decreases by more than ``tolerance``."""
        ys = self.ys(label)
        if len(ys) < 2:
            return True
        return bool(np.all(np.diff(ys) >= -tolerance))

    def is_monotonic_decreasing(self, label: str, tolerance: float = 0.0) -> bool:
        """Whether the column never increases by more than ``tolerance``."""
        ys = self.ys(label)
        if len(ys) < 2:
            return True
        return bool(np.all(np.diff(ys) <= tolerance))

    def linear_correlation(self, label: str) -> float:
        """Pearson correlation between x and the column (linearity check)."""
        xs, ys = self.xs(), self.ys(label)
        if len(xs) < 2 or np.std(xs) == 0 or np.std(ys) == 0:
            return 0.0
        return float(np.corrcoef(xs, ys)[0, 1])

    def ratio_last_to_first(self, label: str) -> float:
        """Ratio of the last to the first y value (growth factor)."""
        ys = self.ys(label)
        if len(ys) == 0 or ys[0] == 0:
            raise MetricsError("ratio_last_to_first needs a non-zero first value")
        return float(ys[-1] / ys[0])

    # ------------------------------------------------------------------ #
    # formatting
    # ------------------------------------------------------------------ #
    def to_table(self, float_format: str = "{:.3f}") -> str:
        """Format the series as an aligned text table."""
        header = [self.x_label, *self.y_labels]
        rows = [header]
        for point in self._points:
            row = [float_format.format(point.x)]
            row.extend(float_format.format(point.values[label]) for label in self.y_labels)
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [f"== {self.name} =="]
        for i, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def format_comparison(
    name: str, rows: dict[str, dict[str, float]], float_format: str = "{:.3f}"
) -> str:
    """Format a system-vs-system comparison (rows = system → metric → value)."""
    if not rows:
        raise MetricsError("comparison needs at least one row")
    metric_names = sorted({metric for metrics in rows.values() for metric in metrics})
    header = ["system", *metric_names]
    table_rows = [header]
    for system, metrics in rows.items():
        row = [system]
        for metric in metric_names:
            value = metrics.get(metric)
            row.append("-" if value is None else float_format.format(value))
        table_rows.append(row)
    widths = [max(len(r[i]) for r in table_rows) for i in range(len(header))]
    lines = [f"== {name} =="]
    for i, row in enumerate(table_rows):
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
