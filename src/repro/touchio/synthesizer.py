"""Gesture synthesizer: generates the touch streams a human finger would.

The paper's evaluation sweeps gesture *speed* and *object size* for a slide
gesture.  Since this reproduction has no physical touch screen, the
synthesizer stands in for the finger: given a device profile and a view,
it emits exactly the stream of touch events the digitizer would register —
sampled at the device's touch rate, bounded by the finger width, with
optional pauses, direction reversals and positional jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GestureError
from repro.touchio.device import DeviceProfile, IPAD1
from repro.touchio.events import TouchEvent, TouchPhase, TouchPoint, TouchStream
from repro.touchio.views import View


@dataclass(frozen=True)
class SlideSegment:
    """One leg of a (possibly multi-leg) slide gesture.

    Attributes
    ----------
    start_fraction / end_fraction:
        Start and end positions along the slide axis, as fractions of the
        view's extent (0.0 = top/left edge, 1.0 = bottom/right edge).
    duration:
        Wall-clock seconds the finger takes to cover this leg.
    pause_after:
        Seconds the finger rests (stationary) after finishing the leg.
    """

    start_fraction: float
    end_fraction: float
    duration: float
    pause_after: float = 0.0

    def __post_init__(self) -> None:
        for frac in (self.start_fraction, self.end_fraction):
            if not 0.0 <= frac <= 1.0:
                raise GestureError(f"slide fractions must be within [0, 1], got {frac}")
        if self.duration <= 0:
            raise GestureError("slide segment duration must be positive")
        if self.pause_after < 0:
            raise GestureError("pause_after must be non-negative")


class GestureSynthesizer:
    """Generate synthetic touch streams for a given device profile."""

    def __init__(
        self, profile: DeviceProfile = IPAD1, jitter_cm: float = 0.0, seed: int = 11
    ) -> None:
        if jitter_cm < 0:
            raise GestureError("jitter must be non-negative")
        self.profile = profile
        self.jitter_cm = jitter_cm
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _axis_extent(self, view: View, axis: str) -> float:
        if axis == "vertical":
            return view.height
        if axis == "horizontal":
            return view.width
        raise GestureError(f"unknown slide axis {axis!r}")

    def _point_on_axis(
        self, view: View, axis: str, fraction: float, cross_fraction: float
    ) -> TouchPoint:
        jitter = float(self._rng.normal(0.0, self.jitter_cm)) if self.jitter_cm else 0.0
        if axis == "vertical":
            y = min(view.height, max(0.0, fraction * view.height + jitter))
            x = cross_fraction * view.width
        else:
            x = min(view.width, max(0.0, fraction * view.width + jitter))
            y = cross_fraction * view.height
        return TouchPoint(x=x, y=y)

    # ------------------------------------------------------------------ #
    # tap
    # ------------------------------------------------------------------ #
    def tap(
        self,
        view: View,
        fraction: float = 0.5,
        cross_fraction: float = 0.5,
        axis: str = "vertical",
        start_time: float = 0.0,
    ) -> TouchStream:
        """Synthesize a single tap at the given fractional position."""
        point = self._point_on_axis(view, axis, fraction, cross_fraction)
        stream = TouchStream(view_name=view.name)
        stream.append(TouchEvent(start_time, TouchPhase.BEGAN, (point,), view.name))
        stream.append(TouchEvent(start_time + 0.05, TouchPhase.ENDED, (point,), view.name))
        return stream

    # ------------------------------------------------------------------ #
    # slide
    # ------------------------------------------------------------------ #
    def slide(
        self,
        view: View,
        duration: float,
        start_fraction: float = 0.0,
        end_fraction: float = 1.0,
        axis: str = "vertical",
        cross_fraction: float = 0.5,
        start_time: float = 0.0,
    ) -> TouchStream:
        """Synthesize a single-leg slide over ``view``.

        ``duration`` controls the gesture speed: a 10 cm object swept in
        1 second moves the finger at 10 cm/s, and at a 60 Hz digitizer
        registers ~60 touch locations.  A slower sweep (larger duration)
        registers proportionally more locations, which is exactly the
        effect Figure 4(a) measures.
        """
        segment = SlideSegment(start_fraction, end_fraction, duration)
        return self.slide_path(
            view, [segment], axis=axis, cross_fraction=cross_fraction, start_time=start_time
        )

    def slide_path(
        self,
        view: View,
        segments: Sequence[SlideSegment],
        axis: str = "vertical",
        cross_fraction: float = 0.5,
        start_time: float = 0.0,
    ) -> TouchStream:
        """Synthesize a multi-leg slide (speed changes, reversals, pauses)."""
        if not segments:
            raise GestureError("a slide needs at least one segment")
        extent = self._axis_extent(view, axis)
        if extent <= 0:
            raise GestureError("cannot slide over a view with no extent")
        interval = 1.0 / self.profile.sampling_rate_hz
        stream = TouchStream(view_name=view.name)
        time = start_time
        first = True
        last_fraction = segments[0].start_fraction
        for segment in segments:
            n_samples = max(2, self.profile.max_touches_for_duration(segment.duration))
            fractions = np.linspace(segment.start_fraction, segment.end_fraction, n_samples)
            times = np.linspace(time, time + segment.duration, n_samples)
            for i, (frac, t) in enumerate(zip(fractions, times)):
                phase = TouchPhase.BEGAN if first else TouchPhase.MOVED
                first = False
                point = self._point_on_axis(view, axis, float(frac), cross_fraction)
                stream.append(TouchEvent(float(t), phase, (point,), view.name))
            time = float(times[-1])
            last_fraction = segment.end_fraction
            if segment.pause_after > 0:
                # a paused finger produces stationary events at the sampling rate
                n_pause = self.profile.max_touches_for_duration(segment.pause_after)
                point = self._point_on_axis(view, axis, last_fraction, cross_fraction)
                for j in range(1, n_pause + 1):
                    stream.append(
                        TouchEvent(time + j * interval, TouchPhase.STATIONARY, (point,), view.name)
                    )
                time += segment.pause_after
        end_point = self._point_on_axis(view, axis, last_fraction, cross_fraction)
        stream.append(TouchEvent(time + interval, TouchPhase.ENDED, (end_point,), view.name))
        return stream

    # ------------------------------------------------------------------ #
    # zoom (two-finger pinch)
    # ------------------------------------------------------------------ #
    def zoom(
        self,
        view: View,
        zoom_in: bool = True,
        duration: float = 0.4,
        start_time: float = 0.0,
    ) -> TouchStream:
        """Synthesize a two-finger pinch gesture over the view's center.

        A zoom-in spreads the fingers apart (growing spread); a zoom-out
        pinches them together (shrinking spread).
        """
        if duration <= 0:
            raise GestureError("zoom duration must be positive")
        cx, cy = view.width / 2.0, view.height / 2.0
        max_half = max(0.2, min(view.width, view.height) / 2.5)
        n_samples = max(3, self.profile.max_touches_for_duration(duration))
        spreads = (
            np.linspace(0.2, max_half, n_samples)
            if zoom_in
            else np.linspace(max_half, 0.2, n_samples)
        )
        times = np.linspace(start_time, start_time + duration, n_samples)
        stream = TouchStream(view_name=view.name)
        for i, (half, t) in enumerate(zip(spreads, times)):
            phase = TouchPhase.BEGAN if i == 0 else TouchPhase.MOVED
            points = (
                TouchPoint(x=cx, y=max(0.0, cy - half), finger=0),
                TouchPoint(x=cx, y=min(view.height, cy + half), finger=1),
            )
            stream.append(TouchEvent(float(t), phase, points, view.name))
        stream.append(
            TouchEvent(
                float(times[-1]) + 1.0 / self.profile.sampling_rate_hz,
                TouchPhase.ENDED,
                stream[-1].points,
                view.name,
            )
        )
        return stream

    # ------------------------------------------------------------------ #
    # rotate (two-finger twist)
    # ------------------------------------------------------------------ #
    def rotate(self, view: View, duration: float = 0.5, start_time: float = 0.0) -> TouchStream:
        """Synthesize a two-finger 90-degree rotation gesture."""
        if duration <= 0:
            raise GestureError("rotation duration must be positive")
        cx, cy = view.width / 2.0, view.height / 2.0
        radius = max(0.2, min(view.width, view.height) / 3.0)
        n_samples = max(3, self.profile.max_touches_for_duration(duration))
        angles = np.linspace(0.0, np.pi / 2.0, n_samples)
        times = np.linspace(start_time, start_time + duration, n_samples)
        stream = TouchStream(view_name=view.name)
        for i, (angle, t) in enumerate(zip(angles, times)):
            phase = TouchPhase.BEGAN if i == 0 else TouchPhase.MOVED
            dx, dy = radius * np.cos(angle), radius * np.sin(angle)
            points = (
                TouchPoint(x=cx + dx, y=cy + dy, finger=0),
                TouchPoint(x=cx - dx, y=cy - dy, finger=1),
            )
            stream.append(TouchEvent(float(t), phase, points, view.name))
        stream.append(
            TouchEvent(
                float(times[-1]) + 1.0 / self.profile.sampling_rate_hz,
                TouchPhase.ENDED,
                stream[-1].points,
                view.name,
            )
        )
        return stream

    # ------------------------------------------------------------------ #
    # pan (drag an object around the screen)
    # ------------------------------------------------------------------ #
    def pan(
        self,
        view: View,
        dx_cm: float,
        dy_cm: float,
        duration: float = 0.5,
        start_time: float = 0.0,
    ) -> TouchStream:
        """Synthesize a single-finger pan (drag) by ``(dx_cm, dy_cm)``."""
        if duration <= 0:
            raise GestureError("pan duration must be positive")
        n_samples = max(3, self.profile.max_touches_for_duration(duration))
        cx, cy = view.width / 2.0, view.height / 2.0
        xs = np.linspace(cx, cx + dx_cm, n_samples)
        ys = np.linspace(cy, cy + dy_cm, n_samples)
        times = np.linspace(start_time, start_time + duration, n_samples)
        stream = TouchStream(view_name=view.name)
        for i, (x, y, t) in enumerate(zip(xs, ys, times)):
            phase = TouchPhase.BEGAN if i == 0 else TouchPhase.MOVED
            stream.append(TouchEvent(float(t), phase, (TouchPoint(float(x), float(y)),), view.name))
        stream.append(
            TouchEvent(
                float(times[-1]) + 1.0 / self.profile.sampling_rate_hz,
                TouchPhase.ENDED,
                stream[-1].points,
                view.name,
            )
        )
        return stream
