"""Simulated touch OS layer: events, views, devices, synthesis, recognition.

The paper's prototype runs on iOS; this subpackage is the substitution —
a deterministic simulation of the touch operating system that delivers the
same information an iOS view hierarchy would: touch locations inside views
of known physical size, sampled at the digitizer rate, segmented into
recognized gestures.
"""

from repro.touchio.device import (
    IPAD1,
    IPAD1_PROTOTYPE,
    MODERN_TABLET,
    PHONE,
    DeviceProfile,
    TouchDevice,
)
from repro.touchio.events import TouchEvent, TouchPhase, TouchPoint, TouchStream
from repro.touchio.recognizer import (
    GestureRecognizer,
    GestureType,
    RecognizedGesture,
)
from repro.touchio.synthesizer import GestureSynthesizer, SlideSegment
from repro.touchio.views import (
    DataObjectProperties,
    Rect,
    View,
    make_column_view,
    make_table_view,
)

__all__ = [
    "IPAD1",
    "IPAD1_PROTOTYPE",
    "MODERN_TABLET",
    "PHONE",
    "DataObjectProperties",
    "DeviceProfile",
    "GestureRecognizer",
    "GestureSynthesizer",
    "GestureType",
    "RecognizedGesture",
    "Rect",
    "SlideSegment",
    "TouchDevice",
    "TouchEvent",
    "TouchPhase",
    "TouchPoint",
    "TouchStream",
    "View",
    "make_column_view",
    "make_table_view",
]
