"""OS-level gesture recognition: raw touch streams → gesture descriptions.

In the dbTouch stack (Figure 3 of the paper) the operating system first
recognizes touches and gestures; only then does dbTouch map them to data
and execute operators.  This module plays the operating-system role: it
segments a :class:`~repro.touchio.events.TouchStream` into recognized
gestures (tap, slide, zoom-in, zoom-out, rotate, pan) described in purely
geometric terms.  The database-side interpretation of those gestures lives
in :mod:`repro.core`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.errors import GestureError
from repro.touchio.events import TouchEvent, TouchStream


class GestureType(Enum):
    """The gesture vocabulary the dbTouch front-end understands."""

    TAP = "tap"
    SLIDE = "slide"
    ZOOM_IN = "zoom-in"
    ZOOM_OUT = "zoom-out"
    ROTATE = "rotate"
    PAN = "pan"


@dataclass(frozen=True)
class RecognizedGesture:
    """A recognized gesture plus the geometric facts dbTouch needs.

    Attributes
    ----------
    gesture_type:
        Which gesture was recognized.
    view_name:
        The view the gesture was applied to.
    events:
        The single-finger touch events that make up the gesture, in order.
        For slides this is the full sequence of registered locations, which
        downstream becomes one operator invocation per event.
    duration:
        Wall-clock length of the gesture in seconds.
    scale:
        For zoom gestures, the ratio of final to initial finger spread.
    angle:
        For rotate gestures, the total rotation in radians.
    translation:
        For pan gestures, the (dx, dy) displacement in centimeters.
    """

    gesture_type: GestureType
    view_name: str
    events: tuple[TouchEvent, ...]
    duration: float
    scale: float = 1.0
    angle: float = 0.0
    translation: tuple[float, float] = (0.0, 0.0)

    @property
    def num_touches(self) -> int:
        """Number of registered touch locations within the gesture."""
        return len(self.events)


#: Maximum movement (cm) and duration (s) for a touch sequence to count as a tap.
TAP_MAX_MOVEMENT_CM = 0.3
TAP_MAX_DURATION_S = 0.35
#: Minimum spread ratio change to classify a two-finger gesture as a zoom.
ZOOM_MIN_SCALE_CHANGE = 0.15
#: Minimum rotation (radians) to classify a two-finger gesture as a rotate.
ROTATE_MIN_ANGLE = math.pi / 6


class GestureRecognizer:
    """Classify touch streams into recognized gestures."""

    def recognize(self, stream: TouchStream) -> RecognizedGesture:
        """Recognize the single gesture contained in ``stream``.

        Raises
        ------
        GestureError
            If the stream is empty or its shape matches no known gesture.
        """
        if stream.is_empty:
            raise GestureError("cannot recognize a gesture from an empty touch stream")
        max_fingers = max(event.num_fingers for event in stream)
        if max_fingers >= 2:
            return self._recognize_two_finger(stream)
        return self._recognize_single_finger(stream)

    def recognize_all(self, streams: list[TouchStream]) -> list[RecognizedGesture]:
        """Recognize a gesture for each stream in order."""
        return [self.recognize(stream) for stream in streams]

    # ------------------------------------------------------------------ #
    # single finger: tap, slide or pan
    # ------------------------------------------------------------------ #
    def _recognize_single_finger(self, stream: TouchStream) -> RecognizedGesture:
        events = tuple(stream)
        first, last = events[0], events[-1]
        dx = last.primary.x - first.primary.x
        dy = last.primary.y - first.primary.y
        path_length = self._path_length(events)
        duration = stream.duration
        if path_length <= TAP_MAX_MOVEMENT_CM and duration <= TAP_MAX_DURATION_S:
            return RecognizedGesture(
                gesture_type=GestureType.TAP,
                view_name=stream.view_name,
                events=events,
                duration=duration,
            )
        # single-finger movement over a data object is a slide; the distinction
        # from a pan (moving the object itself) is made by the front-end based
        # on the active mode, so the recognizer reports a slide by default and
        # exposes the translation for pan interpretation.
        return RecognizedGesture(
            gesture_type=GestureType.SLIDE,
            view_name=stream.view_name,
            events=events,
            duration=duration,
            translation=(dx, dy),
        )

    @staticmethod
    def _path_length(events: tuple[TouchEvent, ...]) -> float:
        total = 0.0
        for prev, cur in zip(events, events[1:]):
            total += math.dist(
                (prev.primary.x, prev.primary.y), (cur.primary.x, cur.primary.y)
            )
        return total

    # ------------------------------------------------------------------ #
    # two fingers: zoom or rotate
    # ------------------------------------------------------------------ #
    def _recognize_two_finger(self, stream: TouchStream) -> RecognizedGesture:
        two_finger_events = [e for e in stream if e.num_fingers >= 2]
        if len(two_finger_events) < 2:
            raise GestureError("two-finger gesture needs at least two multi-touch events")
        first, last = two_finger_events[0], two_finger_events[-1]
        initial_spread = max(first.spread, 1e-6)
        final_spread = max(last.spread, 1e-6)
        scale = final_spread / initial_spread
        angle = self._rotation_angle(first, last)
        duration = stream.duration
        events = tuple(stream)
        if abs(angle) >= ROTATE_MIN_ANGLE and abs(scale - 1.0) < ZOOM_MIN_SCALE_CHANGE:
            return RecognizedGesture(
                gesture_type=GestureType.ROTATE,
                view_name=stream.view_name,
                events=events,
                duration=duration,
                angle=angle,
            )
        if scale >= 1.0 + ZOOM_MIN_SCALE_CHANGE:
            gesture_type = GestureType.ZOOM_IN
        elif scale <= 1.0 - ZOOM_MIN_SCALE_CHANGE:
            gesture_type = GestureType.ZOOM_OUT
        elif abs(angle) >= ROTATE_MIN_ANGLE:
            return RecognizedGesture(
                gesture_type=GestureType.ROTATE,
                view_name=stream.view_name,
                events=events,
                duration=duration,
                angle=angle,
            )
        else:
            raise GestureError(
                "two-finger gesture is neither a zoom nor a rotation "
                f"(scale={scale:.3f}, angle={angle:.3f})"
            )
        return RecognizedGesture(
            gesture_type=gesture_type,
            view_name=stream.view_name,
            events=events,
            duration=duration,
            scale=scale,
            angle=angle,
        )

    @staticmethod
    def _rotation_angle(first: TouchEvent, last: TouchEvent) -> float:
        """Angle between the finger-pair axis at the start and at the end."""

        def axis_angle(event: TouchEvent) -> float:
            a, b = event.points[0], event.points[1]
            return math.atan2(b.y - a.y, b.x - a.x)

        delta = axis_angle(last) - axis_angle(first)
        # normalize to (-pi, pi]
        while delta <= -math.pi:
            delta += 2 * math.pi
        while delta > math.pi:
            delta -= 2 * math.pi
        return delta
