"""Simulated touch device (the iPad stand-in).

The original dbTouch prototype runs on an iPad 1.  This module provides the
device model the rest of the library runs against: a screen of a given
physical size, a touch sampling rate that bounds how many touch locations
can be registered per second, and a finger contact width that bounds how
finely two consecutive touches can be distinguished.  These two physical
limits are precisely what gives the paper's Figure 4 its shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TouchError
from repro.touchio.views import Rect, View


@dataclass(frozen=True)
class DeviceProfile:
    """Physical characteristics of a touch device.

    Attributes
    ----------
    name:
        Profile name (``"ipad1"`` is the paper's device).
    screen_width_cm / screen_height_cm:
        Physical screen dimensions in centimeters.
    sampling_rate_hz:
        How many touch locations per second the digitizer reports for a
        moving finger.  The iPad 1 digitizer samples at about 60 Hz.
    finger_width_cm:
        Effective width of a finger contact; two touch locations closer
        than this are not meaningfully distinct.
    """

    name: str
    screen_width_cm: float
    screen_height_cm: float
    sampling_rate_hz: float
    finger_width_cm: float

    def __post_init__(self) -> None:
        if self.screen_width_cm <= 0 or self.screen_height_cm <= 0:
            raise TouchError("screen dimensions must be positive")
        if self.sampling_rate_hz <= 0:
            raise TouchError("sampling rate must be positive")
        if self.finger_width_cm <= 0:
            raise TouchError("finger width must be positive")

    def max_touches_for_duration(self, seconds: float) -> int:
        """Upper bound on registered touch locations during ``seconds``."""
        if seconds <= 0:
            return 1
        return max(1, int(round(seconds * self.sampling_rate_hz)))

    def max_distinct_positions(self, length_cm: float) -> int:
        """Upper bound on distinguishable positions along ``length_cm``."""
        if length_cm <= 0:
            return 1
        return max(1, int(length_cm / self.finger_width_cm))


#: The paper's device: a 1st-generation iPad (9.7" screen, ~60 Hz digitizer).
IPAD1 = DeviceProfile(
    name="ipad1",
    screen_width_cm=19.7,
    screen_height_cm=14.8,
    sampling_rate_hz=60.0,
    finger_width_cm=0.08,
)

#: The iPad 1 as the dbTouch prototype effectively experienced it: although
#: the digitizer samples at ~60 Hz, the prototype registers far fewer touch
#: inputs per second because each touch triggers query processing and result
#: display on 2010-era hardware.  Figure 4(a) of the paper implies roughly
#: 14 registered touch inputs per second; this profile reproduces that
#: effective rate and is what the Figure 4 benchmarks use.
IPAD1_PROTOTYPE = DeviceProfile(
    name="ipad1-prototype",
    screen_width_cm=19.7,
    screen_height_cm=14.8,
    sampling_rate_hz=14.0,
    finger_width_cm=0.08,
)

#: A modern, faster tablet profile used for sensitivity analyses.
MODERN_TABLET = DeviceProfile(
    name="modern-tablet",
    screen_width_cm=24.0,
    screen_height_cm=17.0,
    sampling_rate_hz=120.0,
    finger_width_cm=0.05,
)

#: A phone-sized profile (small screen, coarse exploration).
PHONE = DeviceProfile(
    name="phone",
    screen_width_cm=14.0,
    screen_height_cm=6.8,
    sampling_rate_hz=60.0,
    finger_width_cm=0.08,
)


class TouchDevice:
    """A simulated touch device hosting a root view (the screen).

    The device owns the root view of the view hierarchy; data-object views
    are added as subviews.  It also provides the clock used to timestamp
    synthesized touch events.
    """

    def __init__(self, profile: DeviceProfile = IPAD1) -> None:
        self.profile = profile
        self.root = View(
            name="screen",
            frame=Rect(0.0, 0.0, profile.screen_width_cm, profile.screen_height_cm),
            allowed_gestures=(),
        )
        self._clock = 0.0

    # ------------------------------------------------------------------ #
    # view management
    # ------------------------------------------------------------------ #
    def add_view(self, view: View) -> View:
        """Place a data-object view on the screen."""
        if view.frame.x + view.frame.width > self.profile.screen_width_cm + 1e-9:
            raise TouchError(
                f"view {view.name!r} extends beyond the screen width "
                f"({view.frame.x + view.frame.width:.2f} > {self.profile.screen_width_cm})"
            )
        if view.frame.y + view.frame.height > self.profile.screen_height_cm + 1e-9:
            raise TouchError(
                f"view {view.name!r} extends beyond the screen height "
                f"({view.frame.y + view.frame.height:.2f} > {self.profile.screen_height_cm})"
            )
        self.root.add_subview(view)
        return view

    def view(self, name: str) -> View:
        """Find a view on the screen by name."""
        return self.root.find(name)

    def hit_test(self, x: float, y: float) -> View | None:
        """Return the deepest view under screen point ``(x, y)``."""
        return self.root.hit_test(x, y)

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """The device's current simulated time in seconds."""
        return self._clock

    def advance_clock(self, seconds: float) -> float:
        """Advance the simulated clock and return the new time."""
        if seconds < 0:
            raise TouchError("cannot advance the clock backwards")
        self._clock += seconds
        return self._clock

    def reset_clock(self) -> None:
        """Reset the simulated clock to zero."""
        self._clock = 0.0
