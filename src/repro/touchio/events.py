"""Touch events: the raw input stream delivered by the simulated touch OS.

A touch event is what iOS would deliver to a view: one or more finger
contact points, each with a location (in the view's coordinate system, in
centimeters), a phase (began / moved / ended) and a timestamp.  The dbTouch
kernel consumes nothing but this stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import TouchError


class TouchPhase(Enum):
    """Lifecycle phase of one touch point, mirroring the iOS touch phases."""

    BEGAN = "began"
    MOVED = "moved"
    STATIONARY = "stationary"
    ENDED = "ended"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class TouchPoint:
    """A single finger contact at a single instant.

    Coordinates are expressed in centimeters within the target view, with
    the origin at the view's top-left corner, ``x`` growing rightwards and
    ``y`` growing downwards (so a top-to-bottom slide has increasing ``y``).
    """

    x: float
    y: float
    finger: int = 0

    def __post_init__(self) -> None:
        if self.finger < 0:
            raise TouchError("finger index must be non-negative")


@dataclass(frozen=True)
class TouchEvent:
    """One touch-OS event: a timestamp, a phase and the active touch points."""

    timestamp: float
    phase: TouchPhase
    points: tuple[TouchPoint, ...]
    view_name: str = ""

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise TouchError("timestamps must be non-negative")
        if not self.points:
            raise TouchError("a touch event needs at least one touch point")

    @property
    def num_fingers(self) -> int:
        """Number of simultaneous finger contacts in this event."""
        return len(self.points)

    @property
    def primary(self) -> TouchPoint:
        """The first (primary) touch point."""
        return self.points[0]

    @property
    def centroid(self) -> tuple[float, float]:
        """Mean location of all touch points (used by zoom/rotate handling)."""
        xs = sum(p.x for p in self.points) / len(self.points)
        ys = sum(p.y for p in self.points) / len(self.points)
        return xs, ys

    @property
    def spread(self) -> float:
        """Largest pairwise distance between touch points (pinch distance)."""
        if len(self.points) < 2:
            return 0.0
        best = 0.0
        for i, a in enumerate(self.points):
            for b in self.points[i + 1 :]:
                dist = ((a.x - b.x) ** 2 + (a.y - b.y) ** 2) ** 0.5
                best = max(best, dist)
        return best


@dataclass
class TouchStream:
    """An ordered sequence of touch events destined for one view.

    The stream enforces monotonically non-decreasing timestamps, which the
    gesture recognizer and the prefetcher rely on when estimating gesture
    velocity.
    """

    view_name: str = ""
    events: list[TouchEvent] = field(default_factory=list)

    def append(self, event: TouchEvent) -> None:
        """Append an event, validating timestamp monotonicity."""
        if self.events and event.timestamp < self.events[-1].timestamp:
            raise TouchError(
                "touch events must have non-decreasing timestamps "
                f"({event.timestamp} after {self.events[-1].timestamp})"
            )
        self.events.append(event)

    def extend(self, events: list[TouchEvent]) -> None:
        """Append several events in order."""
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __getitem__(self, item):
        return self.events[item]

    @property
    def duration(self) -> float:
        """Elapsed time between the first and last event, in seconds."""
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].timestamp - self.events[0].timestamp

    @property
    def is_empty(self) -> bool:
        """Whether the stream holds no events."""
        return not self.events
