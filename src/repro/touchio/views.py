"""View hierarchy: placeholders for visual objects, as in a touch OS.

Views are the bridge between the touch OS and dbTouch: each visualized
data object corresponds to one view.  A view knows its physical size (in
centimeters), its position inside its master view, its rotation, and which
gestures it accepts.  dbTouch attaches extra properties to each view (the
number of tuples in the underlying object, the data types, the data size)
so that a touch location inside the view can be translated to a tuple
identifier with simple arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ViewError


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in a master view's coordinate system (cm)."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ViewError(f"rectangle must have positive size, got {self.width}x{self.height}")

    def contains(self, x: float, y: float) -> bool:
        """Whether the point ``(x, y)`` lies inside the rectangle."""
        return self.x <= x <= self.x + self.width and self.y <= y <= self.y + self.height

    @property
    def area(self) -> float:
        """Area in square centimeters."""
        return self.width * self.height


@dataclass
class DataObjectProperties:
    """dbTouch-specific properties attached to a view.

    Attributes
    ----------
    object_name:
        The catalog name of the table or column this view visualizes.
    num_tuples:
        Total number of tuples in the underlying data object.
    num_attributes:
        Number of attributes (1 for a single-column object).
    dtype_names:
        Names of the attribute types, for the schema-at-a-glance display.
    size_bytes:
        Total fixed-width storage size of the object.
    orientation:
        ``"vertical"`` when tuples run along the view's height (the default
        column shape) or ``"horizontal"`` after the object has been rotated
        to lie on its side.
    """

    object_name: str
    num_tuples: int
    num_attributes: int = 1
    dtype_names: tuple[str, ...] = ()
    size_bytes: int = 0
    orientation: str = "vertical"

    def __post_init__(self) -> None:
        if self.num_tuples < 0:
            raise ViewError("num_tuples must be non-negative")
        if self.num_attributes < 1:
            raise ViewError("num_attributes must be at least one")
        if self.orientation not in ("vertical", "horizontal"):
            raise ViewError(f"unknown orientation {self.orientation!r}")


class View:
    """A view: a rectangle in its master view plus dbTouch data properties."""

    def __init__(
        self,
        name: str,
        frame: Rect,
        properties: DataObjectProperties | None = None,
        allowed_gestures: tuple[str, ...] = ("tap", "slide", "zoom", "rotate", "pan"),
    ) -> None:
        self.name = name
        self.frame = frame
        self.properties = properties
        self.allowed_gestures = tuple(allowed_gestures)
        self.subviews: list["View"] = []
        self.master: "View" | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"View(name={self.name!r}, frame={self.frame}, subviews={len(self.subviews)})"

    # ------------------------------------------------------------------ #
    # hierarchy management
    # ------------------------------------------------------------------ #
    def add_subview(self, view: "View") -> None:
        """Attach ``view`` as a child of this view."""
        if view is self:
            raise ViewError("a view cannot be its own subview")
        if view.master is not None:
            raise ViewError(f"view {view.name!r} already has a master view")
        view.master = self
        self.subviews.append(view)

    def remove_subview(self, view: "View") -> None:
        """Detach ``view`` from this view."""
        if view not in self.subviews:
            raise ViewError(f"view {view.name!r} is not a subview of {self.name!r}")
        self.subviews.remove(view)
        view.master = None

    def walk(self) -> Iterator["View"]:
        """Yield this view and every descendant, depth first."""
        yield self
        for sub in self.subviews:
            yield from sub.walk()

    def find(self, name: str) -> "View":
        """Find a descendant view (or self) by name."""
        for view in self.walk():
            if view.name == name:
                return view
        raise ViewError(f"no view named {name!r} under {self.name!r}")

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        """View width in centimeters."""
        return self.frame.width

    @property
    def height(self) -> float:
        """View height in centimeters."""
        return self.frame.height

    def hit_test(self, x: float, y: float) -> "View | None":
        """Return the deepest descendant containing the master-view point.

        Coordinates are in this view's master coordinate system (or screen
        coordinates when called on the root view).
        """
        if not self.frame.contains(x, y):
            return None
        local_x = x - self.frame.x
        local_y = y - self.frame.y
        for sub in reversed(self.subviews):  # front-most subview wins
            found = sub.hit_test(local_x, local_y)
            if found is not None:
                return found
        return self

    def to_local(self, x: float, y: float) -> tuple[float, float]:
        """Convert master-view coordinates to this view's local coordinates."""
        return x - self.frame.x, y - self.frame.y

    def accepts(self, gesture_name: str) -> bool:
        """Whether this view accepts the named gesture."""
        return gesture_name in self.allowed_gestures

    # ------------------------------------------------------------------ #
    # resizing and rotation (zoom-in/out and rotate gestures act here)
    # ------------------------------------------------------------------ #
    def resize(self, scale: float) -> None:
        """Scale the view's frame by ``scale`` (zoom-in > 1, zoom-out < 1).

        The position of the view is preserved; only its size changes.  The
        touch → rowid mapping automatically picks up the new size, which is
        what makes zoom change the granularity of data access.
        """
        if scale <= 0:
            raise ViewError("resize scale must be positive")
        self.frame = Rect(
            x=self.frame.x,
            y=self.frame.y,
            width=self.frame.width * scale,
            height=self.frame.height * scale,
        )

    def rotate(self) -> None:
        """Swap the view's width and height and flip its orientation flag.

        Rotating an object only changes its positioning within its master
        view; touches and tuple identifiers calculated relative to the
        object view are not affected.
        """
        self.frame = Rect(
            x=self.frame.x,
            y=self.frame.y,
            width=self.frame.height,
            height=self.frame.width,
        )
        if self.properties is not None:
            flipped = "horizontal" if self.properties.orientation == "vertical" else "vertical"
            self.properties = DataObjectProperties(
                object_name=self.properties.object_name,
                num_tuples=self.properties.num_tuples,
                num_attributes=self.properties.num_attributes,
                dtype_names=self.properties.dtype_names,
                size_bytes=self.properties.size_bytes,
                orientation=flipped,
            )


def make_column_view(
    name: str,
    object_name: str,
    num_tuples: int,
    height_cm: float = 10.0,
    width_cm: float = 2.0,
    x: float = 0.0,
    y: float = 0.0,
    dtype_names: tuple[str, ...] = (),
    size_bytes: int = 0,
) -> View:
    """Build the standard vertical column-shaped view for a column object."""
    return View(
        name=name,
        frame=Rect(x=x, y=y, width=width_cm, height=height_cm),
        properties=DataObjectProperties(
            object_name=object_name,
            num_tuples=num_tuples,
            num_attributes=1,
            dtype_names=dtype_names,
            size_bytes=size_bytes,
        ),
    )


def make_table_view(
    name: str,
    object_name: str,
    num_tuples: int,
    num_attributes: int,
    height_cm: float = 10.0,
    width_cm: float = 8.0,
    x: float = 0.0,
    y: float = 0.0,
    dtype_names: tuple[str, ...] = (),
    size_bytes: int = 0,
) -> View:
    """Build the fat-rectangle view used for full-table objects."""
    return View(
        name=name,
        frame=Rect(x=x, y=y, width=width_cm, height=height_cm),
        properties=DataObjectProperties(
            object_name=object_name,
            num_tuples=num_tuples,
            num_attributes=num_attributes,
            dtype_names=dtype_names,
            size_bytes=size_bytes,
        ),
    )
