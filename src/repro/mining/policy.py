"""The speculative policy: a mined model driving background warm-ups.

A :class:`SpeculativePolicy` is the live end of the mining loop.  It binds
a trained :class:`repro.mining.model.GestureTransitionModel` into serving:

* every executed command updates a per-object context window and scores
  the previous prediction (the mined hit/miss counters surfaced through
  ``TelemetryRegistry`` and the sharded ``stats`` verb),
* the gesture prefetcher reports gesture *progress* (rowid, direction,
  stride) as it proposes — observation only, proposals are untouched,
* :meth:`speculation_plan` combines the predicted next gesture kind with
  the latest progress into a plan the service layer executes on the
  scheduler's background lane: pre-reading the rows the predicted gesture
  would touch (warming out-of-core chunk caches) and staging likely-next
  sample levels in a policy-private store.

The staging store is deliberately *not* the kernel's sample hierarchy:
materializing a level into the hierarchy renumbers levels and changes
``served_level_counts``, and the correctness contract for every adaptive
side-system in this codebase is bit-identical ``GestureOutcome`` counters
with the feature on or off.  Speculation therefore only warms surfaces
outside the outcome accounting (chunk caches, this staging area); the
differential harness in ``tests/test_differential_gestures.py`` proves it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import MiningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mining.model import GestureTransitionModel

#: Predicted kinds a plan can usefully warm for; predictions outside this
#: set (schema gestures, shows) produce no speculative work.
WARMABLE_KINDS = frozenset({"slide", "slide-path", "tap", "zoom-in", "zoom-out"})


@dataclass(frozen=True)
class SpeculationPlan:
    """One unit of speculative work: what to warm, and where the gesture is.

    ``rowid``/``direction``/``stride`` come from the prefetcher's progress
    reports (``rowid`` is -1 when the object has no progress yet);
    ``num_tuples`` bounds the object's rowid range (0 when unknown).
    """

    object_name: str
    predicted_kind: str
    rowid: int = -1
    direction: int = 0
    stride: int = 1
    num_tuples: int = 0


class SpeculativePolicy:
    """Thread-safe runtime state and accounting around a mined model.

    Parameters
    ----------
    model:
        The trained transition model (shared, read-only).
    warm_window:
        Upper bound on rows one speculative job pre-reads.
    max_staged_levels:
        LRU cap on staged sample levels kept per policy.
    """

    def __init__(
        self,
        model: "GestureTransitionModel",
        warm_window: int = 512,
        max_staged_levels: int = 8,
    ) -> None:
        if warm_window < 1:
            raise MiningError("speculation warm_window must be at least 1")
        if max_staged_levels < 1:
            raise MiningError("max_staged_levels must be at least 1")
        self.model = model
        self.warm_window = int(warm_window)
        self.max_staged_levels = int(max_staged_levels)
        self._lock = threading.Lock()
        self._contexts: dict[str, deque[str]] = {}
        self._predictions: dict[str, str] = {}
        self._progress: dict[str, tuple[int, int, int, int]] = {}
        self._staged: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self._counters = {
            "mined_predictions": 0,
            "mined_hits": 0,
            "mined_misses": 0,
            "progress_reports": 0,
            "speculations_scheduled": 0,
            "speculations_completed": 0,
            "speculation_errors": 0,
            "rows_warmed": 0,
            "levels_staged": 0,
            "staged_level_hits": 0,
        }

    # ------------------------------------------------------------------ #
    # command observation (the mined hit/miss loop)
    # ------------------------------------------------------------------ #
    def observe_command(self, object_name: str, kind: str) -> None:
        """Score the standing prediction and roll the context forward."""
        with self._lock:
            standing = self._predictions.get(object_name)
            if standing is not None:
                if standing == kind:
                    self._counters["mined_hits"] += 1
                else:
                    self._counters["mined_misses"] += 1
            context = self._contexts.get(object_name)
            if context is None:
                context = deque(maxlen=self.model.order)
                self._contexts[object_name] = context
            context.append(kind)
            predicted = self.model.predict(object_name, list(context))
            if predicted is None:
                self._predictions.pop(object_name, None)
            else:
                self._predictions[object_name] = predicted
                self._counters["mined_predictions"] += 1

    def prediction(self, object_name: str) -> str | None:
        """The standing next-gesture prediction for one object."""
        with self._lock:
            return self._predictions.get(object_name)

    # ------------------------------------------------------------------ #
    # gesture progress (reported by the prefetcher, observation only)
    # ------------------------------------------------------------------ #
    def observe_progress(
        self,
        object_name: str,
        rowid: int,
        direction: int,
        stride: int,
        num_tuples: int,
    ) -> None:
        """Record where a gesture currently is, so plans aim their warming."""
        with self._lock:
            self._progress[object_name] = (
                int(rowid),
                int(direction),
                max(1, int(stride)),
                int(num_tuples),
            )
            self._counters["progress_reports"] += 1

    # ------------------------------------------------------------------ #
    # plans and the staging store
    # ------------------------------------------------------------------ #
    def speculation_plan(self, object_name: str) -> SpeculationPlan | None:
        """The next speculative job for one object, or ``None``."""
        with self._lock:
            predicted = self._predictions.get(object_name)
            if predicted is None or predicted not in WARMABLE_KINDS:
                return None
            rowid, direction, stride, num_tuples = self._progress.get(
                object_name, (-1, 0, 1, 0)
            )
            return SpeculationPlan(
                object_name=object_name,
                predicted_kind=predicted,
                rowid=rowid,
                direction=direction,
                stride=stride,
                num_tuples=num_tuples,
            )

    def stage_level(self, object_name: str, stride: int, values: np.ndarray) -> None:
        """Remember one speculatively materialized sample level (LRU-capped)."""
        key = (object_name, max(1, int(stride)))
        with self._lock:
            self._staged.pop(key, None)
            self._staged[key] = values
            self._counters["levels_staged"] += 1
            while len(self._staged) > self.max_staged_levels:
                self._staged.popitem(last=False)

    def staged_level(self, object_name: str, stride: int) -> np.ndarray | None:
        """Fetch a staged level, counting the hit; ``None`` when absent."""
        key = (object_name, max(1, int(stride)))
        with self._lock:
            values = self._staged.get(key)
            if values is not None:
                self._staged.move_to_end(key)
                self._counters["staged_level_hits"] += 1
            return values

    # ------------------------------------------------------------------ #
    # job accounting (called by the executing service layer)
    # ------------------------------------------------------------------ #
    def note_scheduled(self) -> None:
        with self._lock:
            self._counters["speculations_scheduled"] += 1

    def note_completed(self, rows_warmed: int) -> None:
        with self._lock:
            self._counters["speculations_completed"] += 1
            self._counters["rows_warmed"] += int(rows_warmed)

    def note_error(self) -> None:
        with self._lock:
            self._counters["speculation_errors"] += 1

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats_snapshot(self) -> dict[str, int]:
        """Point-in-time counters plus model shape, for stats/telemetry.

        Load-dependent observability — like the index and storage
        snapshots, never part of the counter-parity surface.
        """
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["staged_levels"] = len(self._staged)
            snapshot["tracked_objects"] = len(self._contexts)
        snapshot["model_order"] = self.model.order
        snapshot["model_transitions"] = self.model.transitions_observed
        return snapshot

    @property
    def hit_rate(self) -> float:
        """Mined-prediction hit fraction so far (0.0 before any scoring)."""
        with self._lock:
            hits = self._counters["mined_hits"]
            misses = self._counters["mined_misses"]
        total = hits + misses
        return hits / total if total else 0.0

    def reset_runtime(self) -> None:
        """Forget per-object runtime state; counters and model survive."""
        with self._lock:
            self._contexts.clear()
            self._predictions.clear()
            self._progress.clear()
            self._staged.clear()
