"""Trace mining: learn gesture policies from recorded session corpora.

The fleet-scale adaptive loop.  :class:`TraceCorpus` stores recorded
traces as append-only JSONL; :func:`mine_corpus` folds a corpus into a
per-object order-k Markov :class:`GestureTransitionModel` (a versioned
JSON checkpoint artifact); :class:`SpeculativePolicy` ships the mined
model back into serving, predicting each object's next gesture and
driving speculative background warm-ups — without ever changing gesture
results (see :mod:`repro.mining.policy`).
"""

from repro.mining.corpus import (
    CorpusReadReport,
    CorpusRecord,
    TraceCorpus,
    decode_record,
    encode_record,
)
from repro.mining.model import (
    GestureTransitionModel,
    HitRateReport,
    MiningReport,
    heldout_hit_rate,
    mine_corpus,
    persistence_hit_rate,
    scope_streams,
)
from repro.mining.policy import SpeculationPlan, SpeculativePolicy, WARMABLE_KINDS

__all__ = [
    "CorpusReadReport",
    "CorpusRecord",
    "GestureTransitionModel",
    "HitRateReport",
    "MiningReport",
    "SpeculationPlan",
    "SpeculativePolicy",
    "TraceCorpus",
    "WARMABLE_KINDS",
    "decode_record",
    "encode_record",
    "heldout_hit_rate",
    "mine_corpus",
    "persistence_hit_rate",
    "scope_streams",
]
