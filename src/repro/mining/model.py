"""Mining recorded traces into an order-k gesture-transition model.

The model is deliberately simple — per-object Markov count matrices over
command kinds — because that is what a fleet can actually learn from
millions of sessions: after a user slid over ``sensor``, how often did the
next gesture zoom out versus keep sliding?  Counts are kept for every
context order from 0 (the unconditional kind distribution) up to ``order``,
so prediction backs off gracefully: an unseen order-k context falls back
to shorter suffixes, and an unseen object falls back to the fleet-global
stream.  Ties break deterministically from a seed, so equal corpora always
yield equal policies (the same bit-identical contract the cracker's
stochastic knob honors).

The trained model is a JSON checkpoint artifact
(:meth:`GestureTransitionModel.save` / :meth:`~GestureTransitionModel.load`)
with a version tag and an exact round-trip, in the offline
batch-analysis → synthesis → checkpoint idiom of FeedForward's explorer
pipeline; :func:`mine_corpus` is the batch pass, with the corpus's
partial-failure accounting carried onto the :class:`MiningReport`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.commands import (
    AppendCommand,
    ChooseAction,
    DragColumnOut,
    GestureCommand,
    GroupColumns,
    Pan,
    Rotate,
    ShowColumn,
    ShowTable,
    Slide,
    SlidePath,
    Tap,
    TimedCommand,
    UngroupTable,
    ZoomIn,
    ZoomOut,
)
from repro.errors import MiningError, ModelCheckpointError
from repro.mining.corpus import CorpusReadReport, TraceCorpus

#: Context padding token: "the stream started fewer than k gestures ago".
START = "^"

#: Scope holding the fleet-global stream every trace also folds into.
GLOBAL_SCOPE = "*"

#: Separator joining context tokens into checkpoint keys (command kinds
#: are kebab-case identifiers, so the unit separator can never collide).
_KEY_SEP = "\x1f"

#: Checkpoint format tag and version.
CHECKPOINT_FORMAT = "gesture-transition-model"
CHECKPOINT_VERSION = 1


def object_scope_of(command: GestureCommand, view_map: dict[str, str]) -> str | None:
    """Attribute one command to the data object it touches, if any.

    ``view_map`` accumulates the view-name → object-name bindings that
    show commands establish (mirroring the kernel's default view naming),
    so later gestures addressed at a view resolve to their object.
    """
    if isinstance(command, ShowColumn):
        view = command.view_name or f"{command.object_name}-view"
        view_map[view] = command.object_name
        return command.object_name
    if isinstance(command, ShowTable):
        view = command.view_name or f"{command.table_name}-view"
        view_map[view] = command.table_name
        return command.table_name
    if isinstance(command, (ChooseAction, Slide, SlidePath, Tap, ZoomIn, ZoomOut, Rotate, Pan)):
        return view_map.get(command.view)
    if isinstance(command, (DragColumnOut, UngroupTable)):
        return view_map.get(command.table_view)
    if isinstance(command, GroupColumns):
        return command.table_name
    if isinstance(command, AppendCommand):
        return command.object_name
    return None


def _as_commands(trace: Iterable[TimedCommand | GestureCommand]) -> list[GestureCommand]:
    return [item.command if isinstance(item, TimedCommand) else item for item in trace]


def scope_streams(
    trace: Iterable[TimedCommand | GestureCommand],
) -> dict[str, list[str]]:
    """Split one trace into per-object kind streams plus the global stream."""
    streams: dict[str, list[str]] = {GLOBAL_SCOPE: []}
    view_map: dict[str, str] = {}
    for command in _as_commands(trace):
        scope = object_scope_of(command, view_map)
        streams[GLOBAL_SCOPE].append(command.kind)
        if scope is not None:
            streams.setdefault(scope, []).append(command.kind)
    return streams


def _padded_context(tokens: Sequence[str], position: int, length: int) -> tuple[str, ...]:
    """The length-``length`` context preceding ``position``, START-padded."""
    start = max(0, position - length)
    window = list(tokens[start:position])
    return tuple([START] * (length - len(window)) + window)


class GestureTransitionModel:
    """Per-object order-k Markov counts over gesture kinds.

    Parameters
    ----------
    order:
        Longest context length maintained; counts for every shorter order
        are kept too, nesting consistently (summing an order-j table over
        its oldest context slot reproduces the order-(j-1) table exactly).
    seed:
        Deterministic tie-breaking seed for :meth:`predict`.
    """

    def __init__(self, order: int = 2, seed: int = 0) -> None:
        if order < 1:
            raise MiningError("transition-model order must be at least 1")
        self.order = int(order)
        self.seed = int(seed)
        #: scope → context tuple (length 0..order) → next kind → count
        self._counts: dict[str, dict[tuple[str, ...], dict[str, int]]] = {}
        self.traces_observed = 0
        self.transitions_observed = 0

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def observe_trace(self, trace: Iterable[TimedCommand | GestureCommand]) -> None:
        """Fold one recorded trace into the count matrices."""
        for scope, tokens in scope_streams(trace).items():
            table = self._counts.setdefault(scope, {})
            for position, token in enumerate(tokens):
                for length in range(self.order + 1):
                    context = _padded_context(tokens, position, length)
                    bucket = table.setdefault(context, {})
                    bucket[token] = bucket.get(token, 0) + 1
                if scope == GLOBAL_SCOPE:
                    self.transitions_observed += 1
        self.traces_observed += 1

    # ------------------------------------------------------------------ #
    # inspection (the property-test surface)
    # ------------------------------------------------------------------ #
    @property
    def scopes(self) -> list[str]:
        """Every scope with counts (objects plus the global stream)."""
        return sorted(self._counts)

    def context_counts(self, scope: str, context: Sequence[str]) -> dict[str, int]:
        """Raw next-kind counts for one exact context (no back-off)."""
        table = self._counts.get(scope, {})
        return dict(table.get(tuple(context), {}))

    def contexts(self, scope: str, length: int | None = None) -> list[tuple[str, ...]]:
        """Every context key of one scope, optionally filtered by length."""
        table = self._counts.get(scope, {})
        keys = table.keys()
        if length is not None:
            keys = (key for key in keys if len(key) == length)
        return sorted(keys)

    def distribution(self, scope: str, context: Sequence[str]) -> dict[str, float]:
        """The context's next-kind distribution, normalized to sum to 1.

        Uses the same suffix back-off as :meth:`predict`; empty when the
        scope has no counts at all.
        """
        bucket = self._backoff_bucket(scope, context)
        total = sum(bucket.values())
        if total <= 0:
            return {}
        return {kind: count / total for kind, count in sorted(bucket.items())}

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def _backoff_bucket(
        self, scope: str, context: Sequence[str]
    ) -> dict[str, int]:
        recent = list(context)[-self.order :]
        for table_scope in (scope, GLOBAL_SCOPE):
            table = self._counts.get(table_scope)
            if not table:
                continue
            for length in range(min(self.order, len(recent)), -1, -1):
                key = _padded_context(recent, len(recent), length)
                bucket = table.get(key)
                if bucket:
                    return bucket
        return {}

    def predict(self, scope: str, context: Sequence[str]) -> str | None:
        """The most likely next gesture kind after ``context`` on ``scope``.

        Backs off from the full order-k context through shorter suffixes
        to the unconditional distribution, then from the object scope to
        the global stream.  Ties break deterministically from the seed
        and the context, never from dict order.
        """
        bucket = self._backoff_bucket(scope, context)
        if not bucket:
            return None
        best = max(bucket.values())
        candidates = sorted(kind for kind, count in bucket.items() if count == best)
        if len(candidates) == 1:
            return candidates[0]
        key = f"{self.seed}|{scope}|{_KEY_SEP.join(list(context)[-self.order:])}"
        return candidates[zlib.crc32(key.encode("utf-8")) % len(candidates)]

    # ------------------------------------------------------------------ #
    # the checkpoint artifact
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Encode the model as a plain-data checkpoint payload."""
        counts = {
            scope: {
                _KEY_SEP.join(context): dict(sorted(bucket.items()))
                for context, bucket in sorted(table.items())
            }
            for scope, table in sorted(self._counts.items())
        }
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "order": self.order,
            "seed": self.seed,
            "traces_observed": self.traces_observed,
            "transitions_observed": self.transitions_observed,
            "counts": counts,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GestureTransitionModel":
        """Rebuild a model from :meth:`to_dict` output (exact round-trip)."""
        if not isinstance(payload, Mapping):
            raise ModelCheckpointError(
                f"checkpoint must be a mapping, got {type(payload).__name__}"
            )
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ModelCheckpointError(
                f"checkpoint format {payload.get('format')!r} is not {CHECKPOINT_FORMAT!r}"
            )
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ModelCheckpointError(
                f"checkpoint version {payload.get('version')!r} is not the "
                f"supported {CHECKPOINT_VERSION}"
            )
        try:
            model = cls(order=int(payload["order"]), seed=int(payload["seed"]))
            model.traces_observed = int(payload["traces_observed"])
            model.transitions_observed = int(payload["transitions_observed"])
            counts = payload["counts"]
            if not isinstance(counts, Mapping):
                raise TypeError("counts must be a mapping")
            for scope, table in counts.items():
                decoded: dict[tuple[str, ...], dict[str, int]] = {}
                for key, bucket in table.items():
                    context = tuple(key.split(_KEY_SEP)) if key else ()
                    decoded[context] = {
                        str(kind): int(count) for kind, count in bucket.items()
                    }
                    if any(count < 0 for count in decoded[context].values()):
                        raise ValueError("negative count")
                model._counts[str(scope)] = decoded
        except MiningError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ModelCheckpointError(f"malformed checkpoint payload: {exc}") from exc
        return model

    def save(self, path: str | Path) -> Path:
        """Write the checkpoint artifact as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "GestureTransitionModel":
        """Load a checkpoint artifact, raising :class:`ModelCheckpointError`."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ModelCheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise ModelCheckpointError(f"checkpoint {path} is not UTF-8: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelCheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


# --------------------------------------------------------------------- #
# the offline mining pass
# --------------------------------------------------------------------- #


@dataclass
class MiningReport:
    """What one corpus-mining pass produced, failures included."""

    model: GestureTransitionModel
    traces: int = 0
    files: int = 0
    records: int = 0
    skipped: int = 0
    errors: list[str] = field(default_factory=list)


def mine_corpus(
    corpus: TraceCorpus | str | Path,
    order: int = 2,
    seed: int = 0,
    strict: bool = False,
) -> MiningReport:
    """Fold a whole trace corpus into a transition model.

    The default tolerant mode skips corrupt records and reports them on
    the returned :class:`MiningReport` (fleet corpora always contain torn
    writes); ``strict=True`` raises the typed corpus error instead.
    """
    if not isinstance(corpus, TraceCorpus):
        corpus = TraceCorpus(corpus)
    traces, read_report = corpus.read_traces(strict=strict)
    model = GestureTransitionModel(order=order, seed=seed)
    for commands in traces.values():
        model.observe_trace(commands)
    return MiningReport(
        model=model,
        traces=len(traces),
        files=read_report.files,
        records=read_report.records,
        skipped=read_report.skipped,
        errors=list(read_report.errors),
    )


# --------------------------------------------------------------------- #
# held-out scoring
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class HitRateReport:
    """Next-gesture prediction accuracy over a held-out trace set."""

    hits: int
    total: int

    @property
    def rate(self) -> float:
        """Hit fraction; 0.0 when nothing was scorable."""
        return self.hits / self.total if self.total else 0.0


def _scorable_events(
    traces: Iterable[Sequence[TimedCommand | GestureCommand]],
) -> Iterator[tuple[str, list[str], str]]:
    """Yield (scope, context-so-far, actual-next) per-object scoring events.

    Only events with at least one preceding gesture on the same object
    are scored, so the mined model and the persistence baseline answer
    the identical question on identical denominators.
    """
    for trace in traces:
        streams = scope_streams(trace)
        for scope, tokens in streams.items():
            if scope == GLOBAL_SCOPE:
                continue
            for position in range(1, len(tokens)):
                yield scope, tokens[:position], tokens[position]


def heldout_hit_rate(
    model: GestureTransitionModel,
    traces: Iterable[Sequence[TimedCommand | GestureCommand]],
) -> HitRateReport:
    """Score the mined model's next-gesture predictions on held-out traces."""
    hits = total = 0
    for scope, context, actual in _scorable_events(traces):
        total += 1
        if model.predict(scope, context) == actual:
            hits += 1
    return HitRateReport(hits=hits, total=total)


def persistence_hit_rate(
    traces: Iterable[Sequence[TimedCommand | GestureCommand]],
) -> HitRateReport:
    """The unmined baseline: predict that the last gesture kind repeats.

    This is exactly the assumption the live-session prefetcher embodies —
    extrapolate the current gesture — so the lift of the mined model over
    this baseline is the value the fleet's corpus added.
    """
    hits = total = 0
    for _, context, actual in _scorable_events(traces):
        total += 1
        if context[-1] == actual:
            hits += 1
    return HitRateReport(hits=hits, total=total)
