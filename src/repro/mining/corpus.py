"""The trace corpus: durable JSONL storage for recorded gesture traces.

A :class:`TraceCorpus` is a directory of append-only ``*.jsonl`` files.
Each line is one serialized :class:`repro.core.commands.TimedCommand`
wrapped in a small versioned record envelope::

    {"version": 1, "trace": "t0", "seq": 3, "think_s": 0.12, "command": {...}}

Traces recorded by :meth:`repro.core.session.ExplorationSession.record_trace`
append directly; the offline miner (:mod:`repro.mining.model`) folds the
whole corpus back into a gesture-transition model.  Fleet deployments
append from many processes, so real corpora accumulate torn writes,
foreign versions and plain garbage — every decode failure maps to the
typed :class:`repro.errors.TraceCorpusError`, and the tolerant read mode
skips bad records while accounting for them instead of dying
(:class:`CorpusReadReport`), in the batch-analysis idiom of the
FeedForward explorer pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.commands import TimedCommand
from repro.errors import CommandError, TraceCorpusError

#: Version tag stamped into every corpus record; foreign versions are
#: refused (strict mode) or skipped-and-counted (tolerant mode).
RECORD_VERSION = 1

#: Default file new traces append to when no filename is given.
DEFAULT_FILE = "traces.jsonl"


@dataclass(frozen=True)
class CorpusRecord:
    """One decoded corpus line: a timed command plus its trace coordinates."""

    trace_id: str
    seq: int
    timed: TimedCommand


@dataclass
class CorpusReadReport:
    """Partial-failure accounting for one corpus read.

    ``skipped`` counts records dropped by the tolerant read mode;
    ``errors`` keeps one short human-readable reason per skipped record
    (bounded by ``max_errors`` so a rotten file cannot balloon the
    report).
    """

    files: int = 0
    records: int = 0
    skipped: int = 0
    max_errors: int = 32
    errors: list[str] = field(default_factory=list)

    def note_skip(self, reason: str) -> None:
        """Count one skipped record, retaining a bounded error sample."""
        self.skipped += 1
        if len(self.errors) < self.max_errors:
            self.errors.append(reason)


def encode_record(trace_id: str, seq: int, timed: TimedCommand) -> str:
    """Encode one timed command as a single corpus JSONL line."""
    payload = timed.to_dict()
    record = {
        "version": RECORD_VERSION,
        "trace": trace_id,
        "seq": seq,
        "think_s": payload["think_s"],
        "command": payload["command"],
    }
    return json.dumps(record, separators=(",", ":"))


def decode_record(line: bytes | str) -> CorpusRecord:
    """Decode one corpus line, raising :class:`TraceCorpusError` on any defect."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceCorpusError(f"corpus line is not valid UTF-8: {exc}") from exc
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceCorpusError(f"corpus line is not valid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise TraceCorpusError(
            f"corpus record must be a JSON object, got {type(record).__name__}"
        )
    version = record.get("version")
    if version != RECORD_VERSION:
        raise TraceCorpusError(
            f"corpus record version {version!r} is not the supported {RECORD_VERSION}"
        )
    trace_id = record.get("trace")
    if not isinstance(trace_id, str) or not trace_id:
        raise TraceCorpusError(f"corpus record has a bad trace id {trace_id!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise TraceCorpusError(f"corpus record has a bad sequence number {seq!r}")
    try:
        timed = TimedCommand.from_dict(
            {"command": record.get("command"), "think_s": record.get("think_s")}
        )
    except CommandError as exc:
        raise TraceCorpusError(f"corpus record carries a bad command: {exc}") from exc
    return CorpusRecord(trace_id=trace_id, seq=seq, timed=timed)


class TraceCorpus:
    """A directory of append-only JSONL gesture-trace files.

    Parameters
    ----------
    root:
        Corpus directory; created on first append.  Reads over a missing
        directory raise :class:`TraceCorpusError` — an empty corpus is a
        directory with no ``*.jsonl`` files, not a missing one.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._next_trace: int | None = None

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append_trace(
        self,
        commands: Sequence[TimedCommand],
        trace_id: str | None = None,
        filename: str = DEFAULT_FILE,
    ) -> str:
        """Append one recorded trace; returns the trace id used.

        ``commands`` is what :meth:`ExplorationSession.stop_trace` hands
        back.  Records are written with their in-trace sequence numbers,
        so a torn tail write corrupts at most the last trace's suffix.
        """
        if trace_id is None:
            trace_id = f"t{self._allocate_trace_number()}"
        path = self.root / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            encode_record(trace_id, seq, timed) for seq, timed in enumerate(commands)
        ]
        with path.open("a", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return trace_id

    def _allocate_trace_number(self) -> int:
        """Monotonic default trace numbering, resumed by scanning once."""
        if self._next_trace is None:
            highest = -1
            records = (
                self.iter_records(strict=False)[0] if self.root.is_dir() else ()
            )
            for record in records:
                tid = record.trace_id
                if tid.startswith("t") and tid[1:].isdigit():
                    highest = max(highest, int(tid[1:]))
            self._next_trace = highest + 1
        number = self._next_trace
        self._next_trace += 1
        return number

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def files(self) -> list[Path]:
        """The corpus's trace files, in stable sorted order."""
        if not self.root.is_dir():
            raise TraceCorpusError(f"no corpus directory at {self.root}")
        return sorted(self.root.glob("*.jsonl"))

    def iter_records(
        self, strict: bool = True
    ) -> tuple[Iterator[CorpusRecord], CorpusReadReport]:
        """Iterate every record with its accounting report.

        In strict mode any bad line raises :class:`TraceCorpusError`; in
        tolerant mode bad lines are skipped and counted on the report
        (which is filled in as the iterator is consumed).
        """
        report = CorpusReadReport()

        def generate() -> Iterator[CorpusRecord]:
            for path in self.files():
                report.files += 1
                with path.open("rb") as handle:
                    for line_no, raw in enumerate(handle, start=1):
                        raw = raw.strip()
                        if not raw:
                            continue
                        try:
                            record = decode_record(raw)
                        except TraceCorpusError as exc:
                            if strict:
                                raise TraceCorpusError(
                                    f"{path.name}:{line_no}: {exc}"
                                ) from exc
                            report.note_skip(f"{path.name}:{line_no}: {exc}")
                            continue
                        report.records += 1
                        yield record

        return generate(), report

    def read_traces(
        self, strict: bool = True
    ) -> tuple[dict[str, list[TimedCommand]], CorpusReadReport]:
        """Group the corpus back into per-trace command lists.

        Records are ordered by their sequence numbers within each trace
        (so interleaved appends from many writers still reassemble), and
        trace ids keep their first-seen order.
        """
        records, report = self.iter_records(strict=strict)
        grouped: dict[str, list[CorpusRecord]] = {}
        for record in records:
            grouped.setdefault(record.trace_id, []).append(record)
        traces = {
            trace_id: [rec.timed for rec in sorted(parts, key=lambda rec: rec.seq)]
            for trace_id, parts in grouped.items()
        }
        return traces, report

    def __len__(self) -> int:
        """Number of distinct traces readable in tolerant mode."""
        traces, _ = self.read_traces(strict=False)
        return len(traces)
