"""The remote side of a split dbTouch deployment.

The server holds the base data and the full sample hierarchies.  It answers
two kinds of requests: point/window reads at a given granularity (to refine
what the device showed from its local sample) and summary reads over a
rowid range.  Responses are sized in bytes so the network model can charge
transfer time.

A single :class:`RemoteServer` may back many device sessions at once (the
multi-session serving engine hands one shared server to every
remote-backed service), so hosting and request handling are guarded by a
lock: column registration is atomic, and the request counter never loses
increments under concurrent touches.  The hosted columns themselves are
read-only, so actual data reads need no synchronization beyond the
registry lookup.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import RemoteError
from repro.storage.column import Column
from repro.storage.sample import SampleHierarchy


@dataclass(frozen=True)
class RemoteResponse:
    """A server response: the values plus their wire size in bytes."""

    values: np.ndarray
    payload_bytes: int
    served_from_level: int


class RemoteServer:
    """Holds base columns and serves granular reads to remote clients."""

    def __init__(self, sample_factor: int = 4):
        if sample_factor < 2:
            raise RemoteError("sample_factor must be at least 2")
        self._lock = threading.RLock()
        self._columns: dict[str, Column] = {}
        self._hierarchies: dict[str, SampleHierarchy] = {}
        self._sample_factor = sample_factor
        self.requests_served = 0

    # ------------------------------------------------------------------ #
    # data management
    # ------------------------------------------------------------------ #
    def host_column(self, column: Column, replace: bool = False) -> None:
        """Store a column (and build its sample hierarchy) on the server.

        With ``replace``, an already-hosted column of the same name is
        swapped for the new data and its sample hierarchy rebuilt.
        """
        hierarchy = SampleHierarchy(column, factor=self._sample_factor)
        with self._lock:
            if column.name in self._columns and not replace:
                raise RemoteError(f"column {column.name!r} is already hosted")
            self._columns[column.name] = column
            self._hierarchies[column.name] = hierarchy

    def ensure_hosted(self, column: Column) -> Column:
        """Host ``column`` unless a column of that name is already hosted.

        The idempotent variant used when many sessions share one server:
        the first session pays the hierarchy build, later sessions reuse
        the hosted data.  Returns the column actually hosted.  The lock is
        held across the check *and* the host (it is reentrant), so two
        sessions racing on the same name can never trip each other.
        """
        with self._lock:
            existing = self._columns.get(column.name)
            if existing is not None:
                return existing
            self.host_column(column)
            return column

    def column(self, name: str) -> Column:
        """Return a hosted column."""
        with self._lock:
            if name not in self._columns:
                raise RemoteError(f"server does not host a column named {name!r}")
            return self._columns[name]

    def hosts(self, name: str) -> bool:
        """Whether the server hosts a column named ``name``."""
        with self._lock:
            return name in self._columns

    @property
    def hosted_columns(self) -> list[str]:
        """Names of hosted columns."""
        with self._lock:
            return sorted(self._columns)

    def small_sample(self, name: str, max_rows: int = 4096) -> Column:
        """Produce the small sample a device keeps locally for ``name``.

        The sample is an evenly strided subset of at most ``max_rows`` rows.
        """
        if max_rows <= 0:
            raise RemoteError("max_rows must be positive")
        column = self.column(name)
        stride = max(1, len(column) // max_rows)
        return column.take_every(stride)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _hierarchy(self, name: str) -> SampleHierarchy:
        with self._lock:
            hierarchy = self._hierarchies.get(name)
            if hierarchy is None:
                raise RemoteError(f"server does not host a column named {name!r}")
            return hierarchy

    def _count_request(self) -> None:
        with self._lock:
            self.requests_served += 1

    def read_window(
        self,
        name: str,
        base_rowid: int,
        half_window: int,
        stride_hint: int = 1,
    ) -> RemoteResponse:
        """Serve a window read at the granularity matching ``stride_hint``."""
        hierarchy = self._hierarchy(name)
        values, level = hierarchy.read_window(base_rowid, half_window, stride_hint)
        self._count_request()
        payload = int(values.size) * self.column(name).dtype.width_bytes
        return RemoteResponse(
            values=np.asarray(values),
            payload_bytes=payload,
            served_from_level=level.level,
        )

    def read_value(self, name: str, base_rowid: int, stride_hint: int = 1) -> RemoteResponse:
        """Serve a single-value read (one touch's worth of detail)."""
        hierarchy = self._hierarchy(name)
        value, level = hierarchy.read_at(base_rowid, stride_hint)
        self._count_request()
        payload = self.column(name).dtype.width_bytes
        return RemoteResponse(
            values=np.asarray([value]),
            payload_bytes=payload,
            served_from_level=level.level,
        )
