"""Remote processing: device-local samples backed by a simulated server.

This package provides the building blocks (server, link, per-rowid client);
:class:`repro.service.RemoteExplorationService` composes them into a full
gesture-speaking backend behind the exploration-service protocol.
"""

from repro.remote.client import (
    ClientStats,
    LOCAL_READ_SECONDS,
    RemoteExplorationClient,
    RemotePolicy,
    TouchAnswer,
)
from repro.remote.network import (
    LAN,
    MOBILE,
    WAN,
    WIFI,
    NetworkProfile,
    NetworkStats,
    SimulatedLink,
)
from repro.remote.server import RemoteResponse, RemoteServer

__all__ = [
    "LAN",
    "LOCAL_READ_SECONDS",
    "MOBILE",
    "WAN",
    "WIFI",
    "ClientStats",
    "NetworkProfile",
    "NetworkStats",
    "RemoteExplorationClient",
    "RemotePolicy",
    "RemoteResponse",
    "RemoteServer",
    "SimulatedLink",
    "TouchAnswer",
]
