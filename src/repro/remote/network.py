"""A simple network model for remote-processing simulations.

The remote-processing direction in the paper puts the base data (and the
large samples) on a server while the touch device keeps only small samples.
Whether that split keeps response times interactive depends on the network:
every remote request pays a round-trip latency plus a transfer cost.  The
model below is deliberately simple — fixed round-trip latency plus
bytes/bandwidth — because that is all the benchmarks need to show the
trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkTimeoutError, RemoteError


@dataclass(frozen=True)
class NetworkProfile:
    """Latency/bandwidth characteristics of the device ↔ server link.

    Attributes
    ----------
    round_trip_s:
        Fixed round-trip time per request, in seconds.
    bandwidth_bytes_per_s:
        Sustained transfer rate for response payloads.
    name:
        Label used in benchmark output.
    """

    round_trip_s: float
    bandwidth_bytes_per_s: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.round_trip_s < 0:
            raise RemoteError("round_trip_s cannot be negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise RemoteError("bandwidth must be positive")

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds needed to move ``payload_bytes`` over the link."""
        if payload_bytes < 0:
            raise RemoteError("payload size cannot be negative")
        return self.round_trip_s + payload_bytes / self.bandwidth_bytes_per_s


#: A wired local network between the tablet and a nearby server.
LAN = NetworkProfile(round_trip_s=0.002, bandwidth_bytes_per_s=100e6, name="lan")
#: A good home/office WiFi connection.
WIFI = NetworkProfile(round_trip_s=0.010, bandwidth_bytes_per_s=20e6, name="wifi")
#: A cloud server reached over the public internet.
WAN = NetworkProfile(round_trip_s=0.060, bandwidth_bytes_per_s=5e6, name="wan")
#: A congested mobile connection.
MOBILE = NetworkProfile(round_trip_s=0.150, bandwidth_bytes_per_s=1e6, name="mobile")


@dataclass
class NetworkStats:
    """Accounting for all traffic that crossed the simulated link."""

    requests: int = 0
    bytes_transferred: int = 0
    simulated_seconds: float = 0.0
    timeouts: int = 0


class SimulatedLink:
    """Tracks requests over a network profile using simulated time.

    The link never sleeps; it accumulates the time requests *would* take so
    experiments over slow networks still run instantly.
    """

    def __init__(self, profile: NetworkProfile, timeout_s: float | None = None):
        if timeout_s is not None and timeout_s <= 0:
            raise RemoteError("timeout must be positive when provided")
        self.profile = profile
        self.timeout_s = timeout_s
        self.stats = NetworkStats()

    def reset(self) -> None:
        """Zero the traffic accounting (used when a service is recycled)."""
        self.stats = NetworkStats()

    def request(self, payload_bytes: int) -> float:
        """Account for one request returning ``payload_bytes`` of data.

        Returns the simulated seconds the request took.

        Raises
        ------
        NetworkTimeoutError
            If the request would exceed the configured timeout.
        """
        elapsed = self.profile.transfer_time(payload_bytes)
        if self.timeout_s is not None and elapsed > self.timeout_s:
            self.stats.timeouts += 1
            raise NetworkTimeoutError(
                f"request of {payload_bytes} bytes needs {elapsed:.3f}s over "
                f"{self.profile.name}, exceeding the {self.timeout_s:.3f}s timeout"
            )
        self.stats.requests += 1
        self.stats.bytes_transferred += payload_bytes
        self.stats.simulated_seconds += elapsed
        return elapsed
