"""The device side of a split dbTouch deployment.

The client keeps only a small local sample of each explored column.  Every
touch is answered *immediately* from the local sample (a partial answer);
when the gesture's granularity demands more detail than the local sample
holds, the client also issues a remote request and accounts for the network
time it would take for the refined answer to arrive.  The benchmark
compares three policies:

* ``local-only`` — never talk to the server (coarse answers only);
* ``remote-every-touch`` — ship every touch to the server (the naive policy
  the paper warns about);
* ``hybrid`` — answer locally, refine remotely only when needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.errors import RemoteError
from repro.remote.network import NetworkStats, SimulatedLink
from repro.remote.server import RemoteServer
from repro.storage.column import Column


class RemotePolicy(Enum):
    """How the client balances local samples against remote requests."""

    LOCAL_ONLY = "local-only"
    REMOTE_EVERY_TOUCH = "remote-every-touch"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class TouchAnswer:
    """What the client produced for one touch.

    Attributes
    ----------
    immediate_value:
        The value shown immediately (from the local sample, or from the
        remote response when the policy ships every touch).
    refined_value:
        The refined value once the remote answer arrives (None when no
        remote request was made).
    response_time_s:
        Simulated time until *something* was on screen.
    refinement_time_s:
        Simulated time until the refined value arrived (0 if no request).
    went_remote:
        Whether a remote request was issued for this touch.
    """

    immediate_value: float
    refined_value: float | None
    response_time_s: float
    refinement_time_s: float
    went_remote: bool


@dataclass
class ClientStats:
    """Per-session accounting for a remote exploration client."""

    touches: int = 0
    remote_requests: int = 0
    local_answers: int = 0
    total_response_s: float = 0.0
    max_response_s: float = 0.0

    @property
    def mean_response_s(self) -> float:
        """Mean immediate response time per touch."""
        if not self.touches:
            return 0.0
        return self.total_response_s / self.touches


#: Simulated cost of reading a value from device-local memory.
LOCAL_READ_SECONDS = 0.0002


class RemoteExplorationClient:
    """A tablet-side client exploring a column hosted on a remote server."""

    def __init__(
        self,
        server: RemoteServer,
        link: SimulatedLink,
        column_name: str,
        policy: RemotePolicy = RemotePolicy.HYBRID,
        local_sample_rows: int = 4096,
    ) -> None:
        if local_sample_rows <= 0:
            raise RemoteError("local_sample_rows must be positive")
        self.server = server
        self.link = link
        self.column_name = column_name
        self.policy = policy
        self._local_sample: Column = server.small_sample(column_name, local_sample_rows)
        self._base_rows = len(server.column(column_name))
        self._local_stride = max(1, self._base_rows // len(self._local_sample))
        self.stats = ClientStats()

    @property
    def local_sample(self) -> Column:
        """The small sample stored on the device."""
        return self._local_sample

    @property
    def local_stride(self) -> int:
        """Base-rowid stride between consecutive local-sample entries."""
        return self._local_stride

    def _local_value(self, base_rowid: int) -> float:
        sample_rowid = min(len(self._local_sample) - 1, base_rowid // self._local_stride)
        return float(self._local_sample.value_at(sample_rowid))

    def touch(self, base_rowid: int, stride_hint: int = 1) -> TouchAnswer:
        """Answer one touch at ``base_rowid`` under the configured policy.

        ``stride_hint`` is the gesture's current granularity; a hybrid
        client only goes remote when the requested granularity is finer
        than what the local sample resolves.
        """
        if not 0 <= base_rowid < self._base_rows:
            raise RemoteError(
                f"rowid {base_rowid} out of range for column of {self._base_rows} rows"
            )
        self.stats.touches += 1
        needs_detail = stride_hint < self._local_stride
        go_remote = self.policy is RemotePolicy.REMOTE_EVERY_TOUCH or (
            self.policy is RemotePolicy.HYBRID and needs_detail
        )
        local_value = self._local_value(base_rowid)

        if self.policy is RemotePolicy.REMOTE_EVERY_TOUCH:
            response = self.server.read_value(self.column_name, base_rowid, stride_hint)
            elapsed = self.link.request(response.payload_bytes)
            answer = TouchAnswer(
                immediate_value=float(response.values[0]),
                refined_value=None,
                response_time_s=elapsed,
                refinement_time_s=0.0,
                went_remote=True,
            )
            self.stats.remote_requests += 1
        elif go_remote:
            response = self.server.read_value(self.column_name, base_rowid, stride_hint)
            refine_time = self.link.request(response.payload_bytes)
            answer = TouchAnswer(
                immediate_value=local_value,
                refined_value=float(response.values[0]),
                response_time_s=LOCAL_READ_SECONDS,
                refinement_time_s=refine_time,
                went_remote=True,
            )
            self.stats.remote_requests += 1
            self.stats.local_answers += 1
        else:
            answer = TouchAnswer(
                immediate_value=local_value,
                refined_value=None,
                response_time_s=LOCAL_READ_SECONDS,
                refinement_time_s=0.0,
                went_remote=False,
            )
            self.stats.local_answers += 1

        self._observe_response(answer.response_time_s)
        return answer

    def summary_touch(
        self,
        base_rowid: int,
        half_window: int,
        stride_hint: int,
        reduce_fn: Callable[[np.ndarray], float],
    ) -> tuple[float, int, float]:
        """One interactive-summary touch under the configured policy.

        The immediate answer reduces the local sample's window around
        ``base_rowid`` with ``reduce_fn``; when the policy ships the touch,
        the refined answer reduces the server's window read instead.
        Returns ``(value, values_examined, immediate_response_seconds)``.
        """
        if not 0 <= base_rowid < self._base_rows:
            raise RemoteError(
                f"rowid {base_rowid} out of range for column of {self._base_rows} rows"
            )
        self.stats.touches += 1
        sample = self._local_sample
        hi = max(0, min(len(sample) - 1, (base_rowid + half_window) // self._local_stride))
        lo = max(0, min(hi, (base_rowid - half_window) // self._local_stride))
        window = sample.slice(lo, hi + 1)
        local_value = reduce_fn(np.asarray(window, dtype=np.float64))
        go_remote = self.policy is RemotePolicy.REMOTE_EVERY_TOUCH or (
            self.policy is RemotePolicy.HYBRID and stride_hint < self._local_stride
        )
        if not go_remote:
            self.stats.local_answers += 1
            self._observe_response(LOCAL_READ_SECONDS)
            return local_value, int(window.size), LOCAL_READ_SECONDS
        response = self.server.read_window(
            self.column_name, base_rowid, half_window, stride_hint
        )
        elapsed = self.link.request(response.payload_bytes)
        refined = reduce_fn(np.asarray(response.values, dtype=np.float64))
        self.stats.remote_requests += 1
        if self.policy is RemotePolicy.REMOTE_EVERY_TOUCH:
            response_s = elapsed
        else:
            self.stats.local_answers += 1
            response_s = LOCAL_READ_SECONDS
        self._observe_response(response_s)
        return refined, int(response.values.size), response_s

    def _observe_response(self, response_s: float) -> None:
        self.stats.total_response_s += response_s
        self.stats.max_response_s = max(self.stats.max_response_s, response_s)

    def slide(self, rowids: list[int], stride_hint: int | None = None) -> list[TouchAnswer]:
        """Answer a whole slide's worth of touches."""
        if stride_hint is None:
            stride_hint = self._stride_from_rowids(rowids)
        return [self.touch(rowid, stride_hint) for rowid in rowids]

    @staticmethod
    def _stride_from_rowids(rowids: list[int]) -> int:
        if len(rowids) < 2:
            return 1
        diffs = [abs(b - a) for a, b in zip(rowids, rowids[1:]) if b != a]
        if not diffs:
            return 1
        return max(1, int(np.median(diffs)))

    @property
    def network_stats(self) -> NetworkStats:
        """Traffic statistics of the underlying link."""
        return self.link.stats
