"""Structured per-gesture tracing: span trees across threads and processes.

The tracing model is deliberately small.  A **trace** is the story of one
gesture (or one script) identified by a ``trace_id``; a **span** is one
timed step of that story (``queue_wait``, ``kernel_exec``, ``chunk_fault``,
``crack``, ``cache_lookup``, ``tail_scan``, ...) linked to its parent by
id.  Three pieces make it work end to end:

* :class:`Tracer` owns the policy — on/off, a deterministic
  ``sample_rate`` knob, a span cap per trace — and opens **root spans**
  with :meth:`Tracer.begin` / :meth:`Tracer.gesture`.  Finished traces go
  to a :class:`repro.obs.recorder.FlightRecorder`.
* Deep layers (kernel, indexing, paged storage) never see the tracer.
  They call the module-level :func:`trace_span` / :func:`trace_event`
  helpers, which look up the ambient active trace in a
  :class:`contextvars.ContextVar`.  With no active trace the helpers
  return a shared no-op context manager — the disabled cost is one
  context-variable read per call site, which is why instrumentation sits
  at gesture/fault/crack granularity and never inside per-touch loops.
* :class:`TraceContext` is the propagation capsule: ``(trace_id,
  parent_id, sampled)``.  It crosses scheduler threads explicitly (the
  submitting thread captures it, the worker thunk re-activates it) and
  crosses the wire as a plain dict under the ``trace`` key of request
  envelopes and pipe messages.  Each process records its own *partial*
  trace; :func:`stitch_traces` merges partials by ``trace_id`` back into
  one distributed span tree.

Nothing here touches ``GestureOutcome.counters`` or
``SessionMetrics.counters_snapshot()`` — traces measure wall time, which
is load-dependent by nature, while the parity contracts stay bit-exact.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "Span",
    "Trace",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "active_trace_id",
    "current_trace_context",
    "stitch_traces",
    "trace_event",
    "trace_span",
]

_span_counter = itertools.count(1)


def _new_span_id() -> str:
    """A process-unique span id (pid-qualified so fleets never collide)."""
    return f"{os.getpid():x}.{next(_span_counter):x}"


def _new_trace_id() -> str:
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceConfig:
    """Policy knobs of one :class:`Tracer`.

    Attributes
    ----------
    enabled:
        Master switch.  A disabled tracer opens no spans and allocates
        nothing per gesture.
    sample_rate:
        Fraction of locally-originated traces to record, applied with a
        deterministic error-accumulator (no randomness): ``0.25`` records
        exactly every 4th root.  Remote contexts carry their own sampling
        decision and bypass this knob.
    max_spans_per_trace:
        Cap on recorded spans per trace; extra spans are counted as
        dropped instead of growing without bound.
    slow_threshold_s:
        Root spans at least this slow also land in the flight recorder's
        slow-gesture log (``None`` disables the slow log).
    flight_recorder_capacity / slow_log_capacity:
        Ring-buffer sizes of the recorder a :class:`Tracer` builds for
        itself when none is supplied.
    site:
        Label stamped on every span this tracer records (``front-door``,
        ``worker-0``, ...) so stitched fleet traces say where each span
        ran.
    """

    enabled: bool = True
    sample_rate: float = 1.0
    max_spans_per_trace: int = 512
    slow_threshold_s: float | None = None
    flight_recorder_capacity: int = 64
    slow_log_capacity: int = 32
    site: str = "local"


@dataclass(frozen=True)
class TraceContext:
    """The propagation capsule: everything a trace needs to continue
    in another thread or process."""

    trace_id: str
    parent_id: str | None = None
    sampled: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "sampled": self.sampled,
        }

    @staticmethod
    def from_dict(data: Any) -> "TraceContext | None":
        """Rehydrate a context from the wire; tolerant by design.

        Peers that predate tracing send nothing; hostile or mangled
        ``trace`` fields must degrade to "untraced", never to an error —
        observability can't be allowed to fail a gesture.
        """
        if not isinstance(data, Mapping):
            return None
        trace_id = data.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent_id = data.get("parent_id")
        if not isinstance(parent_id, str):
            parent_id = None
        return TraceContext(
            trace_id=trace_id,
            parent_id=parent_id,
            sampled=bool(data.get("sampled", True)),
        )


@dataclass
class Span:
    """One timed step of a trace, linked to its parent by id."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    site: str
    start_unix_s: float
    duration_s: float
    tags: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "site": self.site,
            "start_unix_s": self.start_unix_s,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Span":
        tags = data.get("tags")
        return Span(
            name=str(data.get("name", "")),
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            parent_id=(
                str(data["parent_id"]) if isinstance(data.get("parent_id"), str) else None
            ),
            site=str(data.get("site", "")),
            start_unix_s=float(data.get("start_unix_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            tags=dict(tags) if isinstance(tags, Mapping) else {},
        )


@dataclass
class Trace:
    """A (possibly partial) span tree sharing one ``trace_id``."""

    trace_id: str
    spans: list[Span] = field(default_factory=list)
    site: str = "local"

    @property
    def root(self) -> Span | None:
        """The span with no recorded parent (``None`` on headless partials)."""
        ids = {span.span_id for span in self.spans}
        for span in self.spans:
            if span.parent_id is None or span.parent_id not in ids:
                return span
        return None

    @property
    def duration_s(self) -> float:
        root = self.root
        return root.duration_s if root is not None else 0.0

    def find(self, name: str) -> list[Span]:
        """Every span named ``name``, in recorded order."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span_id: str) -> list[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def tree(self) -> list[dict[str, Any]]:
        """The span forest as nested ``{"span", "children"}`` dicts."""
        ids = {span.span_id for span in self.spans}
        by_parent: dict[str | None, list[Span]] = {}
        for span in self.spans:
            parent = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(parent, []).append(span)

        def build(span: Span) -> dict[str, Any]:
            children = sorted(
                by_parent.get(span.span_id, []), key=lambda s: s.start_unix_s
            )
            return {"span": span, "children": [build(child) for child in children]}

        roots = sorted(by_parent.get(None, []), key=lambda s: s.start_unix_s)
        return [build(span) for span in roots]

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "site": self.site,
            "spans": [span.to_dict() for span in self.spans],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Trace":
        spans_data = data.get("spans")
        spans = [
            Span.from_dict(entry)
            for entry in (spans_data if isinstance(spans_data, list) else [])
            if isinstance(entry, Mapping)
        ]
        return Trace(
            trace_id=str(data.get("trace_id", "")),
            spans=spans,
            site=str(data.get("site", "local")),
        )


def stitch_traces(parts: Iterable["Trace | Mapping[str, Any]"]) -> list[Trace]:
    """Merge partial traces (one per process/lane) by ``trace_id``.

    Each site in a fleet records only the spans it executed; draining
    every flight recorder and stitching reassembles the distributed span
    tree — parent links survive because span ids are pid-qualified and
    cross the wire inside :class:`TraceContext`.  Spans are ordered by
    wall-clock start; order between hosts is as good as their clocks.
    """
    merged: dict[str, Trace] = {}
    for part in parts:
        trace = part if isinstance(part, Trace) else Trace.from_dict(part)
        if not trace.trace_id:
            continue
        into = merged.setdefault(trace.trace_id, Trace(trace.trace_id, [], "stitched"))
        into.spans.extend(trace.spans)
    for trace in merged.values():
        trace.spans.sort(key=lambda span: span.start_unix_s)
    return list(merged.values())


# --------------------------------------------------------------------- #
# the ambient active trace
# --------------------------------------------------------------------- #

_CURRENT: ContextVar["_ActiveTrace | None"] = ContextVar(
    "repro_obs_active_trace", default=None
)


class _ActiveTrace:
    """Collection state of one sampled activation.

    Owned by exactly one thread (the scheduler hands each activation to a
    single worker; cross-thread continuation goes through a fresh
    activation via :class:`TraceContext`), so span bookkeeping needs no
    lock.
    """

    __slots__ = ("tracer", "trace_id", "site", "spans", "stack", "dropped", "limit")

    def __init__(
        self, tracer: "Tracer", trace_id: str, site: str, parent_id: str | None, limit: int
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.site = site
        self.spans: list[Span] = []
        # stack[-1] is the id new spans attach under; the bottom entry is
        # the remote parent (None for a locally-rooted trace)
        self.stack: list[str | None] = [parent_id]
        self.dropped = 0
        self.limit = limit

    def open_span(self, name: str, tags: dict[str, Any]) -> Span:
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_new_span_id(),
            parent_id=self.stack[-1],
            site=self.site,
            start_unix_s=time.time(),
            duration_s=0.0,
            tags=tags,
        )
        self.stack.append(span.span_id)
        return span

    def close_span(self, span: Span) -> None:
        self.stack.pop()
        if len(self.spans) < self.limit:
            self.spans.append(span)
        else:
            self.dropped += 1

    def record_completed(
        self, name: str, duration_s: float, tags: dict[str, Any] | None = None
    ) -> None:
        """Record an already-finished child span (e.g. ``queue_wait``)."""
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_new_span_id(),
            parent_id=self.stack[-1],
            site=self.site,
            start_unix_s=time.time() - duration_s,
            duration_s=duration_s,
            tags=tags or {},
        )
        if len(self.spans) < self.limit:
            self.spans.append(span)
        else:
            self.dropped += 1


class _NullSpanContext:
    """The shared no-op returned when no trace is active (or tracing is
    off): entering yields ``None`` and records nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager for one child span of the ambient active trace."""

    __slots__ = ("_active", "_name", "_tags", "_span", "_started")

    def __init__(self, active: _ActiveTrace, name: str, tags: dict[str, Any]) -> None:
        self._active = active
        self._name = name
        self._tags = tags
        self._span: Span | None = None
        self._started = 0.0

    def __enter__(self) -> Span:
        # the span opens on __enter__, not construction, so an un-entered
        # trace_span(...) expression can never unbalance the parent stack
        self._span = self._active.open_span(self._name, self._tags)
        self._started = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration_s = time.perf_counter() - self._started
        if exc_type is not None:
            self._span.tags["error"] = exc_type.__name__
        self._active.close_span(self._span)
        return False


def trace_span(name: str, **tags: Any) -> "_SpanContext | _NullSpanContext":
    """Open a child span under the ambient trace (no-op when untraced).

    This is the only tracing API deep layers use; tag values must be
    JSON-encodable scalars because spans cross the wire.
    """
    active = _CURRENT.get()
    if active is None:
        return _NULL_SPAN
    return _SpanContext(active, name, tags)


def trace_event(name: str, duration_s: float = 0.0, **tags: Any) -> None:
    """Record an instant (or pre-timed) annotation span, if traced."""
    active = _CURRENT.get()
    if active is not None:
        active.record_completed(name, duration_s, tags)


def current_trace_context() -> TraceContext | None:
    """The ambient trace as a propagation capsule (``None`` if untraced).

    Capture this on the submitting side of any thread/process hop and
    hand it to :meth:`Tracer.begin` (or put it on the wire) on the other
    side; the continued spans attach under the currently-open span.
    """
    active = _CURRENT.get()
    if active is None:
        return None
    return TraceContext(trace_id=active.trace_id, parent_id=active.stack[-1], sampled=True)


def active_trace_id() -> str | None:
    """The ambient trace id, for log correlation (``None`` if untraced)."""
    active = _CURRENT.get()
    return active.trace_id if active is not None else None


class RootSpan:
    """An explicitly-managed root span: :meth:`start`, then :meth:`finish`.

    The front door drives this directly (begin on submit, finish in a
    completion callback); everyone else uses the :meth:`Tracer.gesture`
    context manager, which wraps start/finish in try/finally.
    """

    __slots__ = ("_tracer", "_active", "_span", "_started", "_token", "_finished")

    def __init__(self, tracer: "Tracer", active: _ActiveTrace, name: str, tags: dict) -> None:
        self._tracer = tracer
        self._active = active
        self._span = active.open_span(name, tags)
        self._started = time.perf_counter()
        self._token = None
        self._finished = False

    @property
    def span_id(self) -> str:
        return self._span.span_id

    @property
    def trace_id(self) -> str:
        return self._active.trace_id

    def context(self) -> TraceContext:
        """A capsule continuing this trace under the root span."""
        return TraceContext(
            trace_id=self._active.trace_id, parent_id=self._span.span_id, sampled=True
        )

    def activate(self) -> None:
        """Install this trace as the thread's ambient active trace."""
        self._token = _CURRENT.set(self._active)

    def add_tags(self, **tags: Any) -> None:
        self._span.tags.update(tags)

    def record_child(self, name: str, duration_s: float, **tags: Any) -> None:
        self._active.record_completed(name, duration_s, tags)

    def finish(self, error: BaseException | None = None) -> Trace:
        """Close the root, deactivate, and deliver the finished trace."""
        if self._finished:  # idempotent: callbacks and finally blocks race
            return Trace(self._active.trace_id, self._active.spans, self._active.site)
        self._finished = True
        self._span.duration_s = time.perf_counter() - self._started
        if error is not None:
            self._span.tags["error"] = type(error).__name__
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._active.close_span(self._span)
        return self._tracer._finalize(self._active)


class Tracer:
    """Opens root spans per the configured policy and records finished
    traces into a flight recorder.

    Parameters
    ----------
    config:
        The :class:`TraceConfig` policy (defaults to enabled, sample-all).
    recorder:
        Destination for finished traces.  When omitted and tracing is
        enabled, the tracer builds its own
        :class:`repro.obs.recorder.FlightRecorder` from the config's
        capacity knobs.
    registry:
        Optional :class:`repro.obs.registry.TelemetryRegistry`; when
        given, the tracer keeps a histogram of root-span durations and
        registers its own counters as a scrape-time collector.
    """

    def __init__(self, config: TraceConfig | None = None, recorder=None, registry=None):
        self.config = config if config is not None else TraceConfig()
        if recorder is None and self.config.enabled:
            from repro.obs.recorder import FlightRecorder  # local: avoids module cycle

            recorder = FlightRecorder(
                capacity=self.config.flight_recorder_capacity,
                slow_threshold_s=self.config.slow_threshold_s,
                slow_capacity=self.config.slow_log_capacity,
            )
        self.recorder = recorder
        self.registry = registry
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self._started = 0
        self._finished = 0
        self._sampled_out = 0
        self._spans_dropped = 0
        self._histogram = None
        if registry is not None:
            self._histogram = registry.histogram(
                "trace_root_seconds", help_="Duration of completed root spans."
            )
            registry.register_collector("tracer", self.stats_snapshot)

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @staticmethod
    def disabled() -> "Tracer":
        """A permanently-off tracer (every ``begin`` returns ``None``)."""
        return Tracer(TraceConfig(enabled=False))

    def sample(self) -> bool:
        """The deterministic sampling decision for a locally-rooted trace."""
        if not self.config.enabled:
            return False
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        with self._lock:
            self._accumulator += rate
            if self._accumulator >= 1.0:
                self._accumulator -= 1.0
                return True
            return False

    def begin(
        self,
        name: str,
        ctx: TraceContext | None = None,
        queue_wait_s: float | None = None,
        activate: bool = True,
        **tags: Any,
    ) -> RootSpan | None:
        """Open (and activate) a root span; ``None`` when not sampled.

        A remote ``ctx`` carries the fleet's sampling decision and is
        honored as-is; without one, the local ``sample_rate`` decides and
        a fresh ``trace_id`` is minted.  ``queue_wait_s`` records the
        pre-execution scheduler wait as an already-completed child span.
        ``activate=False`` skips installing the ambient context variable —
        for callers like the front door that begin a root on one thread
        and finish it from a completion callback on another (a
        ``ContextVar`` token cannot be reset across threads).
        """
        if not self.config.enabled:
            return None
        if ctx is not None:
            if not ctx.sampled:
                return None
            trace_id, parent_id = ctx.trace_id, ctx.parent_id
        else:
            if not self.sample():
                with self._lock:
                    self._sampled_out += 1
                return None
            trace_id, parent_id = _new_trace_id(), None
        with self._lock:
            self._started += 1
        active = _ActiveTrace(
            self, trace_id, self.config.site, parent_id, self.config.max_spans_per_trace
        )
        root = RootSpan(self, active, name, tags)
        if activate:
            root.activate()
        if queue_wait_s is not None and queue_wait_s > 0.0:
            root.record_child("queue_wait", queue_wait_s)
        return root

    @contextmanager
    def gesture(
        self,
        name: str,
        ctx: TraceContext | None = None,
        queue_wait_s: float | None = None,
        **tags: Any,
    ) -> Iterator[RootSpan | None]:
        """Context-manager form of :meth:`begin`; always finishes the root
        (tagging the error type on exceptions), never swallows."""
        root = self.begin(name, ctx=ctx, queue_wait_s=queue_wait_s, **tags)
        if root is None:
            yield None
            return
        try:
            yield root
        except BaseException as exc:
            root.finish(error=exc)
            raise
        else:
            root.finish()

    def _finalize(self, active: _ActiveTrace) -> Trace:
        trace = Trace(trace_id=active.trace_id, spans=active.spans, site=active.site)
        with self._lock:
            self._finished += 1
            self._spans_dropped += active.dropped
        if self._histogram is not None:
            self._histogram.observe(trace.duration_s)
        if self.recorder is not None:
            self.recorder.record(trace)
        return trace

    def stats_snapshot(self) -> dict[str, int]:
        """The tracer's own counters (a telemetry collector)."""
        with self._lock:
            return {
                "traces_started": self._started,
                "traces_finished": self._finished,
                "traces_sampled_out": self._sampled_out,
                "spans_dropped": self._spans_dropped,
            }
