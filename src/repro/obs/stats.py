"""Shared statistical helpers of the telemetry plane.

One quantile rule for the whole codebase.  Per-session metrics
(:class:`repro.service.SessionMetrics`), the server-wide aggregate, and
the per-touch latency summaries (:class:`repro.metrics.collectors.LatencyStats`)
all report percentiles; before this module each carried its own
implementation (nearest-rank in one, linear interpolation in another),
so "p95" silently meant different things in different reports.  Every
caller now routes through :func:`nearest_rank`.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["nearest_rank"]


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an **already sorted** sequence.

    ``q`` must lie in ``(0, 1]``; the result is always an element of the
    input (rank ``ceil(q * n)``, 1-based), and an empty input yields
    ``0.0`` — absent data reads as zero latency in every report, by
    convention.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be within (0, 1], got {q}")
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]
