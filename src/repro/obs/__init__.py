"""``repro.obs`` — the dependency-free observability plane.

Three pieces, one story per gesture:

* :mod:`repro.obs.trace` — structured tracing.  A :class:`Tracer` opens
  per-gesture root spans; deep layers add children through the ambient
  :func:`trace_span` helper; :class:`TraceContext` carries the trace
  across scheduler threads and the sharded wire, and
  :func:`stitch_traces` reassembles distributed span trees.
* :mod:`repro.obs.registry` — the :class:`TelemetryRegistry` of
  counters/gauges/histograms plus scrape-time collectors wrapping the
  pre-existing stats islands, exported as one merged snapshot and as
  Prometheus text exposition.
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder` ring of the
  last N completed traces with a threshold-triggered slow-gesture log.

Everything here is standard library only and strictly additive: outcome
counters and the parity contracts built on them are untouched.
"""

from repro.obs.recorder import FlightRecorder
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    merge_numeric,
    render_exposition,
)
from repro.obs.stats import nearest_rank
from repro.obs.trace import (
    Span,
    Trace,
    TraceConfig,
    TraceContext,
    Tracer,
    active_trace_id,
    current_trace_context,
    stitch_traces,
    trace_event,
    trace_span,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Span",
    "TelemetryRegistry",
    "Trace",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "active_trace_id",
    "current_trace_context",
    "merge_numeric",
    "nearest_rank",
    "render_exposition",
    "stitch_traces",
    "trace_event",
    "trace_span",
]
