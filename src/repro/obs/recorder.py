"""The flight recorder: the last N completed gesture traces, always on.

Tracing answers "where did this gesture spend its time" only if the trace
is still around when someone asks.  The recorder keeps a bounded ring of
completed traces (oldest evicted silently — the point is a crash-dump-
style tail, not an archive) plus a separate **slow log**: traces whose
root span met the configured threshold, so the interesting outliers
survive longer than the general churn.

``drain()`` empties the ring and returns it — the fleet idiom: each
worker's recorder is drained over the ``telemetry`` verb, and the front
door stitches the partial traces back together by trace id
(:func:`repro.obs.trace.stitch_traces`).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.trace import Trace

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded in-memory store of completed traces (thread-safe).

    Parameters
    ----------
    capacity:
        Ring size of the main buffer; the oldest trace is dropped (and
        counted) when a newer one arrives full.
    slow_threshold_s:
        Root-span duration at which a trace *also* lands in the slow log
        (``None`` disables the slow log entirely).
    slow_capacity:
        Ring size of the slow log.
    """

    def __init__(
        self,
        capacity: int = 64,
        slow_threshold_s: float | None = None,
        slow_capacity: int = 32,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.slow_threshold_s = slow_threshold_s
        self._lock = threading.Lock()
        self._traces: deque[Trace] = deque(maxlen=capacity)
        self._slow: deque[Trace] = deque(maxlen=max(1, slow_capacity))
        self._recorded = 0
        self._dropped = 0
        self._slow_recorded = 0

    def record(self, trace: Trace) -> None:
        """File one completed trace (called by the tracer on root finish)."""
        with self._lock:
            self._recorded += 1
            if len(self._traces) == self._traces.maxlen:
                self._dropped += 1
            self._traces.append(trace)
            threshold = self.slow_threshold_s
            if threshold is not None and trace.duration_s >= threshold:
                self._slow_recorded += 1
                self._slow.append(trace)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def peek(self) -> list[Trace]:
        """The buffered traces, oldest first, without consuming them."""
        with self._lock:
            return list(self._traces)

    def drain(self) -> list[Trace]:
        """Empty the ring and return its traces, oldest first."""
        with self._lock:
            traces = list(self._traces)
            self._traces.clear()
            return traces

    def slow_traces(self) -> list[Trace]:
        """The slow log, oldest first, without consuming it."""
        with self._lock:
            return list(self._slow)

    def drain_slow(self) -> list[Trace]:
        """Empty the slow log and return it, oldest first."""
        with self._lock:
            traces = list(self._slow)
            self._slow.clear()
            return traces

    def stats_snapshot(self) -> dict[str, int]:
        """The recorder's counters (a telemetry collector)."""
        with self._lock:
            return {
                "traces_recorded": self._recorded,
                "traces_dropped": self._dropped,
                "traces_buffered": len(self._traces),
                "slow_traces_recorded": self._slow_recorded,
                "slow_traces_buffered": len(self._slow),
            }
