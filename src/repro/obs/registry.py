"""The unified telemetry plane: one registry, one merged snapshot.

The system already measures itself in islands — ``SchedulerStats``,
``IndexManager.stats_snapshot()``, ``ChunkCacheStats``, per-session
``SessionMetrics`` — each reachable only by poking the owning object.
:class:`TelemetryRegistry` federates them: components either create
first-class instruments (:class:`Counter` / :class:`Gauge` /
:class:`Histogram`) or register a **collector** — a zero-argument
callable returning a flat-ish mapping of numbers, polled at scrape time.
Collectors are the integration idiom here: the existing snapshot methods
plug in unchanged, keeping the registry free of references into every
subsystem's internals.

``snapshot()`` returns one flat ``{metric_name: value}`` dict (the shape
the ``telemetry`` wire verb ships and :func:`merge_numeric` sums across a
fleet); ``exposition()`` renders the Prometheus text format so any
standard scraper can read a worker, a front door, or a merged fleet
snapshot.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryRegistry",
    "merge_numeric",
    "render_exposition",
]

#: Latency-shaped default buckets (seconds), sub-ms to tens of seconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_METRIC = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary key into a legal Prometheus metric name."""
    cleaned = _NAME_SANITIZER.sub("_", name)
    if not cleaned or not _VALID_METRIC.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


class Counter:
    """A monotonically-increasing count (thread-safe)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help_: str = "") -> None:
        self.name = name
        self.help = help_
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (thread-safe)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help_: str = "") -> None:
        self.name = name
        self.help = help_
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics, thread-safe)."""

    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self, name: str, buckets: Iterable[float] | None = None, help_: str = ""
    ) -> None:
        self.name = name
        self.help = help_
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1

    def snapshot(self) -> dict[str, Any]:
        """``{"count", "sum", "buckets": [(le, cumulative_count), ...]}``."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": list(zip(self.buckets, self._counts)),
            }


class TelemetryRegistry:
    """Create-or-get instruments plus scrape-time collectors.

    Instrument names are unique across kinds: asking for a counter named
    like an existing gauge raises ``ValueError`` — silent shadowing would
    make two subsystems fight over one exposition line.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: dict[str, Callable[[], Mapping[str, Any] | None]] = {}

    # ------------------------------------------------------------------ #
    # instruments
    # ------------------------------------------------------------------ #
    def _instrument(self, kind: type, name: str, **kwargs: Any):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_: str = "") -> Counter:
        return self._instrument(Counter, name, help_=help_)

    def gauge(self, name: str, help_: str = "") -> Gauge:
        return self._instrument(Gauge, name, help_=help_)

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None, help_: str = ""
    ) -> Histogram:
        return self._instrument(Histogram, name, buckets=buckets, help_=help_)

    # ------------------------------------------------------------------ #
    # collectors
    # ------------------------------------------------------------------ #
    def register_collector(
        self, name: str, fn: Callable[[], Mapping[str, Any] | None]
    ) -> None:
        """Poll ``fn`` at scrape time; its keys are prefixed with ``name``.

        ``fn`` may return ``None`` (nothing to report right now), a flat
        mapping of numbers, or a nested mapping — nesting is flattened
        with ``_`` joins and non-numeric leaves are dropped.  Collector
        failures are swallowed at scrape time: a broken subsystem must
        not take the whole telemetry endpoint down with it.
        """
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # ------------------------------------------------------------------ #
    # scraping
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, float]:
        """One flat merged ``{metric_name: value}`` view of everything.

        Histograms contribute ``<name>_count`` and ``<name>_sum`` (bucket
        detail stays in the exposition format, where the schema can say
        what the numbers mean).
        """
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors.items())
        merged: dict[str, float] = {}
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                data = instrument.snapshot()
                merged[f"{instrument.name}_count"] = float(data["count"])
                merged[f"{instrument.name}_sum"] = float(data["sum"])
            else:
                merged[instrument.name] = float(instrument.value)
        for prefix, fn in collectors:
            try:
                values = fn()
            except Exception:  # noqa: BLE001 - a broken island must not kill the scrape
                continue
            if values is None:
                continue
            _flatten_into(merged, prefix, values)
        return merged

    def exposition(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
        lines: list[str] = []
        covered: set[str] = set()
        for instrument in instruments:
            full = f"{self.namespace}_{sanitize_metric_name(instrument.name)}"
            if instrument.help:
                lines.append(f"# HELP {full} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {_format_value(instrument.value)}")
                covered.add(instrument.name)
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {_format_value(instrument.value)}")
                covered.add(instrument.name)
            else:
                data = instrument.snapshot()
                lines.append(f"# TYPE {full} histogram")
                for bound, count in data["buckets"]:  # counts are cumulative
                    lines.append(
                        f'{full}_bucket{{le="{_format_value(bound)}"}} {count}'
                    )
                lines.append(f'{full}_bucket{{le="+Inf"}} {data["count"]}')
                lines.append(f"{full}_sum {_format_value(data['sum'])}")
                lines.append(f"{full}_count {data['count']}")
                covered.add(f"{instrument.name}_count")
                covered.add(f"{instrument.name}_sum")
        collected = {
            name: value for name, value in self.snapshot().items() if name not in covered
        }
        lines.extend(_render_lines(collected, self.namespace))
        return "\n".join(lines) + "\n" if lines else ""


def _flatten_into(merged: dict[str, float], prefix: str, values: Mapping[str, Any]) -> None:
    for key, value in values.items():
        name = f"{prefix}_{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            _flatten_into(merged, name, value)
        elif isinstance(value, bool):
            merged[name] = float(value)
        elif isinstance(value, (int, float)):
            merged[name] = float(value)
        # non-numeric leaves (names, paths) are stats, not metrics: dropped


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _render_lines(values: Mapping[str, float], namespace: str) -> list[str]:
    lines = []
    for name in sorted(values):
        value = values[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        full = f"{namespace}_{sanitize_metric_name(name)}" if namespace else (
            sanitize_metric_name(name)
        )
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_format_value(float(value))}")
    return lines


def render_exposition(values: Mapping[str, float], namespace: str = "repro") -> str:
    """Render any flat numeric mapping (e.g. a merged fleet snapshot) as
    Prometheus text, every metric typed as a gauge."""
    lines = _render_lines(values, namespace)
    return "\n".join(lines) + "\n" if lines else ""


def merge_numeric(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, float]:
    """Key-wise sum of flat numeric snapshots (the fleet merge rule).

    Counters sum naturally; gauges sum too — fleet totals, not averages —
    which is the useful reading for bytes-cached / queue-depth style
    gauges.  Per-worker detail stays available unmerged.
    """
    totals: dict[str, float] = {}
    for snapshot in snapshots:
        if not isinstance(snapshot, Mapping):
            continue
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0.0) + float(value)
    return totals
