"""Exception hierarchy for the dbTouch reproduction.

Every error raised by the library derives from :class:`DbTouchError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate the individual failure modes.
"""

from __future__ import annotations


class DbTouchError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class StorageError(DbTouchError):
    """Problems in the storage layer (columns, tables, layouts, samples)."""


class SchemaError(StorageError):
    """A schema constraint was violated (unknown column, type mismatch...)."""


class CatalogError(StorageError):
    """A catalog lookup or registration failed."""


class LayoutError(StorageError):
    """A physical-layout operation (rotation, projection) failed."""


class SampleError(StorageError):
    """A sample-hierarchy operation failed."""


class LoaderError(StorageError):
    """Input data could not be read or decoded by a loader."""


class IngestError(StorageError):
    """A live append was refused (dtype drift, schema mismatch, read-only data)."""


class PersistError(StorageError):
    """Problems in the out-of-core persistent storage tier."""


class PersistFormatError(PersistError):
    """An on-disk column file is malformed, truncated or of a foreign version."""


class SnapshotError(PersistError):
    """A store-catalog manifest is missing, corrupted or of a foreign version."""


class TouchError(DbTouchError):
    """Problems in the simulated touch OS layer."""


class ViewError(TouchError):
    """A view-hierarchy operation failed (bad geometry, unknown view...)."""


class GestureError(TouchError):
    """A gesture could not be synthesized or recognized."""


class MappingError(DbTouchError):
    """A touch location could not be mapped to a tuple identifier."""


class ExecutionError(DbTouchError):
    """An operator failed while processing touch-driven input."""


class QueryError(ExecutionError):
    """A query action or plan is malformed."""


class OptimizationError(DbTouchError):
    """The adaptive optimizer could not produce a decision."""


class CommandError(DbTouchError):
    """A gesture command or script is malformed or cannot be decoded."""


class ServiceError(DbTouchError):
    """An exploration service could not execute a command or host a session."""


class AdmissionError(ServiceError):
    """The serving engine refused new work (queues full or backpressure timeout)."""


class ProtocolError(DbTouchError):
    """A wire-protocol frame or envelope violated the serving protocol."""


class MalformedFrameError(ProtocolError):
    """A frame could not be decoded (bad JSON, wrong shape, bad envelope)."""


class FrameTooLargeError(ProtocolError):
    """A frame exceeded the protocol's maximum frame size."""


class UnknownVerbError(ProtocolError):
    """A request named a verb the serving protocol does not define."""


class WorkerCrashedError(ServiceError):
    """A shard's worker process died; sessions pinned to it are lost."""


class RemoteError(DbTouchError):
    """The simulated remote-processing layer failed."""


class NetworkTimeoutError(RemoteError):
    """A simulated remote request exceeded its deadline."""


class BaselineError(DbTouchError):
    """The monolithic baseline engine failed (bad SQL, unknown table...)."""


class WorkloadError(DbTouchError):
    """A workload or scenario could not be generated."""


class ContestError(WorkloadError):
    """The exploration-contest harness was misconfigured."""


class MiningError(DbTouchError):
    """The trace-mining tier failed (corpus, model or speculation policy)."""


class TraceCorpusError(MiningError):
    """A trace-corpus file is missing, malformed, truncated or of a foreign version."""


class ModelCheckpointError(MiningError):
    """A mined-model checkpoint artifact is malformed or of a foreign version."""


class VisualizationError(DbTouchError):
    """A visualization object could not be built or rendered."""


class MetricsError(DbTouchError):
    """Metric collection or reporting failed."""
