"""Synthetic data generators with planted, discoverable patterns.

The dbTouch demo loads "alternative data sets with a varying set of
properties and patterns" and asks the audience to discover them by
gesturing.  These generators produce exactly that: columns and tables with
*known*, parameterized patterns (outlier bursts, trends, level shifts,
seasonality, clusters, correlated pairs) so the exploration-contest harness
can check whether an explorer actually found them.

This module also generates *serving traffic*: :func:`make_serving_workload`
builds a deterministic multi-user workload — per-session traces of mixed
slide / zoom / rotate / select-where gesture commands with per-command
think-time — over one shared dataset, for driving a
:class:`repro.service.MultiSessionServer` in either serving mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.core.actions import (
    aggregate_action,
    scan_action,
    select_where_action,
    summary_action,
)
from repro.core.commands import (
    ChooseAction,
    GestureScript,
    Rotate,
    ShowColumn,
    ShowTable,
    Slide,
    Tap,
    TimedCommand,
    ZoomIn,
    ZoomOut,
)
from repro.engine.filter import Comparison, Predicate
from repro.errors import WorkloadError
from repro.storage.column import Column
from repro.storage.table import Table


class PatternKind(Enum):
    """The kinds of planted patterns an explorer can discover."""

    OUTLIER_BURST = "outlier-burst"
    LEVEL_SHIFT = "level-shift"
    TREND = "trend"
    SEASONALITY = "seasonality"
    CLUSTER = "cluster"
    CORRELATION = "correlation"


@dataclass(frozen=True)
class PlantedPattern:
    """Ground truth about one planted pattern.

    Attributes
    ----------
    kind:
        Pattern kind.
    column:
        Name of the column that carries the pattern.
    start_fraction / end_fraction:
        Where the pattern lives, as fractions of the column length (a
        pattern spanning the whole column uses 0.0 and 1.0).
    magnitude:
        How strong the pattern is, in units of the base noise scale.
    """

    kind: PatternKind
    column: str
    start_fraction: float
    end_fraction: float
    magnitude: float

    def covers(self, fraction: float) -> bool:
        """Whether a position (fraction of the column) lies inside the pattern."""
        return self.start_fraction <= fraction <= self.end_fraction


@dataclass
class GeneratedDataset:
    """A generated table together with the ground truth of planted patterns."""

    table: Table
    patterns: list[PlantedPattern] = field(default_factory=list)

    def patterns_in(self, column: str) -> list[PlantedPattern]:
        """The planted patterns carried by ``column``."""
        return [p for p in self.patterns if p.column == column]


def _validate(n: int, base_scale: float) -> None:
    if n <= 0:
        raise WorkloadError("num_rows must be positive")
    if base_scale <= 0:
        raise WorkloadError("base_scale must be positive")


def noisy_baseline(
    n: int, base_level: float, base_scale: float, rng: np.random.Generator
) -> np.ndarray:
    """Gaussian noise around a constant level — the canvas patterns sit on."""
    return rng.normal(base_level, base_scale, size=n)


def plant_outlier_burst(
    values: np.ndarray,
    start_fraction: float,
    width_fraction: float,
    magnitude: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, tuple[float, float]]:
    """Add a burst of extreme values inside a narrow region."""
    n = len(values)
    start = int(start_fraction * n)
    width = max(1, int(width_fraction * n))
    stop = min(n, start + width)
    out = values.copy()
    out[start:stop] += magnitude * np.abs(rng.normal(1.0, 0.25, size=stop - start)) * np.std(values)
    return out, (start / n, stop / n)


def plant_level_shift(
    values: np.ndarray, shift_fraction: float, magnitude: float
) -> tuple[np.ndarray, tuple[float, float]]:
    """Shift the mean of everything after ``shift_fraction``."""
    n = len(values)
    start = int(shift_fraction * n)
    out = values.copy()
    out[start:] += magnitude * np.std(values)
    return out, (start / n, 1.0)


def plant_trend(values: np.ndarray, magnitude: float) -> tuple[np.ndarray, tuple[float, float]]:
    """Add a linear trend over the whole column."""
    n = len(values)
    ramp = np.linspace(0.0, magnitude * np.std(values), n)
    return values + ramp, (0.0, 1.0)


def plant_seasonality(
    values: np.ndarray, cycles: int, magnitude: float
) -> tuple[np.ndarray, tuple[float, float]]:
    """Add a sinusoidal seasonal component with ``cycles`` full periods."""
    if cycles <= 0:
        raise WorkloadError("seasonality needs at least one cycle")
    n = len(values)
    wave = magnitude * np.std(values) * np.sin(np.linspace(0.0, 2 * np.pi * cycles, n))
    return values + wave, (0.0, 1.0)


def make_pattern_column(
    name: str,
    num_rows: int,
    patterns: list[PatternKind],
    base_level: float = 100.0,
    base_scale: float = 10.0,
    seed: int = 17,
) -> tuple[Column, list[PlantedPattern]]:
    """Generate one column carrying the requested patterns, with ground truth."""
    _validate(num_rows, base_scale)
    rng = np.random.default_rng(seed)
    values = noisy_baseline(num_rows, base_level, base_scale, rng)
    planted: list[PlantedPattern] = []
    for i, kind in enumerate(patterns):
        if kind is PatternKind.OUTLIER_BURST:
            start = 0.15 + 0.3 * (i % 3)
            values, (lo, hi) = plant_outlier_burst(values, start, 0.02, 8.0, rng)
            planted.append(PlantedPattern(kind, name, lo, hi, 8.0))
        elif kind is PatternKind.LEVEL_SHIFT:
            values, (lo, hi) = plant_level_shift(values, 0.6, 4.0)
            planted.append(PlantedPattern(kind, name, lo, hi, 4.0))
        elif kind is PatternKind.TREND:
            values, (lo, hi) = plant_trend(values, 5.0)
            planted.append(PlantedPattern(kind, name, lo, hi, 5.0))
        elif kind is PatternKind.SEASONALITY:
            values, (lo, hi) = plant_seasonality(values, 6, 3.0)
            planted.append(PlantedPattern(kind, name, lo, hi, 3.0))
        else:
            raise WorkloadError(f"pattern {kind} needs a multi-column generator")
    return Column(name, values), planted


def make_clustered_column(
    name: str,
    num_rows: int,
    num_clusters: int = 4,
    separation: float = 6.0,
    base_scale: float = 1.0,
    seed: int = 23,
) -> tuple[Column, list[PlantedPattern]]:
    """A column whose values fall into well-separated clusters."""
    _validate(num_rows, base_scale)
    if num_clusters < 2:
        raise WorkloadError("clustered column needs at least 2 clusters")
    rng = np.random.default_rng(seed)
    assignments = rng.integers(0, num_clusters, size=num_rows)
    centers = np.arange(num_clusters) * separation * base_scale
    values = centers[assignments] + rng.normal(0.0, base_scale, size=num_rows)
    pattern = PlantedPattern(PatternKind.CLUSTER, name, 0.0, 1.0, separation)
    return Column(name, values), [pattern]


def make_correlated_pair(
    name_x: str,
    name_y: str,
    num_rows: int,
    correlation: float = 0.9,
    seed: int = 29,
) -> tuple[Column, Column, PlantedPattern]:
    """Two columns with a planted linear correlation."""
    if not -1.0 <= correlation <= 1.0:
        raise WorkloadError("correlation must be within [-1, 1]")
    _validate(num_rows, 1.0)
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 1.0, size=num_rows)
    noise = rng.normal(0.0, 1.0, size=num_rows)
    y = correlation * x + np.sqrt(max(0.0, 1.0 - correlation**2)) * noise
    pattern = PlantedPattern(PatternKind.CORRELATION, name_y, 0.0, 1.0, correlation)
    return Column(name_x, x), Column(name_y, y), pattern


def make_contest_dataset(
    name: str = "contest",
    num_rows: int = 200_000,
    seed: int = 31,
) -> GeneratedDataset:
    """The default exploration-contest dataset: several columns, several patterns."""
    burst_col, burst_patterns = make_pattern_column(
        "sensor_a", num_rows, [PatternKind.OUTLIER_BURST], seed=seed
    )
    shift_col, shift_patterns = make_pattern_column(
        "sensor_b", num_rows, [PatternKind.LEVEL_SHIFT], seed=seed + 1
    )
    trend_col, trend_patterns = make_pattern_column(
        "sensor_c", num_rows, [PatternKind.TREND], seed=seed + 2
    )
    plain_col, _ = make_pattern_column("sensor_d", num_rows, [], seed=seed + 3)
    table = Table(name, [burst_col, shift_col, trend_col, plain_col])
    return GeneratedDataset(
        table=table,
        patterns=[*burst_patterns, *shift_patterns, *trend_patterns],
    )


# --------------------------------------------------------------------- #
# multi-user serving traffic
# --------------------------------------------------------------------- #


@dataclass
class MultiUserWorkload:
    """A multi-user serving workload: shared data plus per-session traces.

    ``traces`` maps a session identifier to the ordered
    :class:`repro.core.commands.TimedCommand` sequence that session issues;
    ``shared_columns`` / ``shared_tables`` hold the base data every session
    explores (registered once on the server, attached by reference to each
    session — never copied per session).
    """

    name: str
    traces: dict[str, list[TimedCommand]]
    shared_columns: dict[str, Column] = field(default_factory=dict)
    shared_tables: dict[str, Table] = field(default_factory=dict)

    @property
    def num_sessions(self) -> int:
        """How many user sessions the workload drives."""
        return len(self.traces)

    @property
    def total_commands(self) -> int:
        """Total gesture commands across every session."""
        return sum(len(trace) for trace in self.traces.values())

    @property
    def total_think_s(self) -> float:
        """Total user think-time across every session.

        A serial server must wait this entire amount out inline; a
        concurrent scheduler overlaps it across sessions.
        """
        return sum(timed.think_s for trace in self.traces.values() for timed in trace)

    def script_for(self, session_id: str) -> GestureScript:
        """One session's commands as a plain (unpaced) gesture script."""
        if session_id not in self.traces:
            raise WorkloadError(f"workload has no session {session_id!r}")
        return GestureScript(
            name=f"{self.name}:{session_id}",
            commands=[timed.command for timed in self.traces[session_id]],
        )

    def without_think(self) -> "MultiUserWorkload":
        """The same command sequences with every think-time zeroed.

        Shares the data objects; used by stress tests that want maximum
        contention rather than realistic pacing.
        """
        return MultiUserWorkload(
            name=f"{self.name}-nothink",
            traces={
                sid: [TimedCommand(command=t.command, think_s=0.0) for t in trace]
                for sid, trace in self.traces.items()
            },
            shared_columns=self.shared_columns,
            shared_tables=self.shared_tables,
        )

    def install(self, server) -> list[str]:
        """Register the shared data on ``server`` and open every session.

        ``server`` is a :class:`repro.service.MultiSessionServer` (typed
        loosely to keep the workload layer free of service imports).
        Returns the opened session identifiers in trace order.
        """
        for name, column in self.shared_columns.items():
            server.load_shared_column(name, column)
        for name, table in self.shared_tables.items():
            server.load_shared_table(name, table)
        return [server.open_session(sid) for sid in self.traces]


def make_serving_workload(
    num_sessions: int = 8,
    gestures_per_session: int = 12,
    num_rows: int = 200_000,
    mean_think_s: float = 0.02,
    seed: int = 47,
    column_name: str = "telemetry",
    table_name: str = "sensor_grid",
) -> MultiUserWorkload:
    """Mixed multi-user gesture traffic over one shared dataset.

    Every session shows the shared ``column_name`` column (attaching a
    scan / running-aggregate / interactive-summary action) and the shared
    ``table_name`` table (attaching a select-where plan), then issues
    ``gestures_per_session`` weighted-random gestures: column slides,
    select-where table slides, taps, zooms and table rotations.  Each
    command carries a think-time drawn uniformly from
    ``[0.5, 1.5] * mean_think_s`` (the pause before the user issues it).

    Fully deterministic for a given ``seed``: session ``i`` derives its
    own :func:`numpy.random.default_rng` stream from ``(seed, i)``, so the
    same workload can be replayed serially and concurrently and the
    per-session outcome counters compared bit-for-bit.
    """
    if num_sessions < 1:
        raise WorkloadError("a serving workload needs at least one session")
    if gestures_per_session < 1:
        raise WorkloadError("each session needs at least one gesture")
    if mean_think_s < 0:
        raise WorkloadError("mean_think_s cannot be negative")
    _validate(num_rows, 1.0)

    telemetry, _ = make_pattern_column(
        column_name, num_rows, [PatternKind.TREND], seed=seed
    )
    sensor_a, _ = make_pattern_column(
        "sensor_a", num_rows, [PatternKind.OUTLIER_BURST], seed=seed + 1
    )
    sensor_b, _ = make_pattern_column(
        "sensor_b", num_rows, [PatternKind.LEVEL_SHIFT], seed=seed + 2
    )
    sensor_c, _ = make_pattern_column("sensor_c", num_rows, [], seed=seed + 3)
    grid = Table(table_name, [sensor_a, sensor_b, sensor_c])

    col_view = "col-view"
    tab_view = "tab-view"
    where = select_where_action(
        "sensor_a",
        Predicate(Comparison.GT, 100.0),
        ("sensor_b", "sensor_c"),
    )

    traces: dict[str, list[TimedCommand]] = {}
    for i in range(num_sessions):
        rng = np.random.default_rng([seed, i])

        def think() -> float:
            return float(rng.uniform(0.5, 1.5) * mean_think_s)

        column_action = [
            scan_action(),
            aggregate_action("avg"),
            summary_action(k=8),
        ][int(rng.integers(0, 3))]
        trace = [
            TimedCommand(ShowColumn(object_name=column_name, view_name=col_view)),
            TimedCommand(ChooseAction(view=col_view, action=column_action), think()),
            TimedCommand(ShowTable(table_name=table_name, view_name=tab_view), think()),
            TimedCommand(ChooseAction(view=tab_view, action=where), think()),
        ]
        # zoom state machine: one zoom-in, later one zoom-out, then no more.
        # Zoom factors are asymmetric (in x4, out /16), so a second cycle
        # would shrink the view below the two-finger synthesizer's minimum
        # spread and the gesture could no longer be recognized.
        zoom_state = "base"
        for _ in range(gestures_per_session):
            roll = float(rng.random())
            if roll < 0.40:
                start = float(rng.uniform(0.0, 0.55))
                command = Slide(
                    view=col_view,
                    duration=float(rng.uniform(0.3, 0.8)),
                    start_fraction=start,
                    end_fraction=start + float(rng.uniform(0.15, 0.4)),
                )
            elif roll < 0.65:
                start = float(rng.uniform(0.0, 0.5))
                command = Slide(
                    view=tab_view,
                    duration=float(rng.uniform(0.3, 0.7)),
                    start_fraction=start,
                    end_fraction=start + float(rng.uniform(0.2, 0.45)),
                )
            elif roll < 0.80:
                command = Tap(view=col_view, fraction=float(rng.uniform(0.05, 0.95)))
            elif roll < 0.92:
                if zoom_state == "base":
                    command = ZoomIn(view=col_view)
                    zoom_state = "in"
                elif zoom_state == "in":
                    command = ZoomOut(view=col_view)
                    zoom_state = "spent"
                else:
                    command = Tap(view=col_view, fraction=float(rng.uniform(0.05, 0.95)))
            else:
                command = Rotate(view=tab_view)
            trace.append(TimedCommand(command, think()))
        traces[f"user-{i:02d}"] = trace

    return MultiUserWorkload(
        name="serving-mixed",
        traces=traces,
        shared_columns={column_name: telemetry},
        shared_tables={table_name: grid},
    )
