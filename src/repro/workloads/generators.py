"""Synthetic data generators with planted, discoverable patterns.

The dbTouch demo loads "alternative data sets with a varying set of
properties and patterns" and asks the audience to discover them by
gesturing.  These generators produce exactly that: columns and tables with
*known*, parameterized patterns (outlier bursts, trends, level shifts,
seasonality, clusters, correlated pairs) so the exploration-contest harness
can check whether an explorer actually found them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import WorkloadError
from repro.storage.column import Column
from repro.storage.table import Table


class PatternKind(Enum):
    """The kinds of planted patterns an explorer can discover."""

    OUTLIER_BURST = "outlier-burst"
    LEVEL_SHIFT = "level-shift"
    TREND = "trend"
    SEASONALITY = "seasonality"
    CLUSTER = "cluster"
    CORRELATION = "correlation"


@dataclass(frozen=True)
class PlantedPattern:
    """Ground truth about one planted pattern.

    Attributes
    ----------
    kind:
        Pattern kind.
    column:
        Name of the column that carries the pattern.
    start_fraction / end_fraction:
        Where the pattern lives, as fractions of the column length (a
        pattern spanning the whole column uses 0.0 and 1.0).
    magnitude:
        How strong the pattern is, in units of the base noise scale.
    """

    kind: PatternKind
    column: str
    start_fraction: float
    end_fraction: float
    magnitude: float

    def covers(self, fraction: float) -> bool:
        """Whether a position (fraction of the column) lies inside the pattern."""
        return self.start_fraction <= fraction <= self.end_fraction


@dataclass
class GeneratedDataset:
    """A generated table together with the ground truth of planted patterns."""

    table: Table
    patterns: list[PlantedPattern] = field(default_factory=list)

    def patterns_in(self, column: str) -> list[PlantedPattern]:
        """The planted patterns carried by ``column``."""
        return [p for p in self.patterns if p.column == column]


def _validate(n: int, base_scale: float) -> None:
    if n <= 0:
        raise WorkloadError("num_rows must be positive")
    if base_scale <= 0:
        raise WorkloadError("base_scale must be positive")


def noisy_baseline(n: int, base_level: float, base_scale: float, rng: np.random.Generator) -> np.ndarray:
    """Gaussian noise around a constant level — the canvas patterns sit on."""
    return rng.normal(base_level, base_scale, size=n)


def plant_outlier_burst(
    values: np.ndarray,
    start_fraction: float,
    width_fraction: float,
    magnitude: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, tuple[float, float]]:
    """Add a burst of extreme values inside a narrow region."""
    n = len(values)
    start = int(start_fraction * n)
    width = max(1, int(width_fraction * n))
    stop = min(n, start + width)
    out = values.copy()
    out[start:stop] += magnitude * np.abs(rng.normal(1.0, 0.25, size=stop - start)) * np.std(values)
    return out, (start / n, stop / n)


def plant_level_shift(
    values: np.ndarray, shift_fraction: float, magnitude: float
) -> tuple[np.ndarray, tuple[float, float]]:
    """Shift the mean of everything after ``shift_fraction``."""
    n = len(values)
    start = int(shift_fraction * n)
    out = values.copy()
    out[start:] += magnitude * np.std(values)
    return out, (start / n, 1.0)


def plant_trend(values: np.ndarray, magnitude: float) -> tuple[np.ndarray, tuple[float, float]]:
    """Add a linear trend over the whole column."""
    n = len(values)
    ramp = np.linspace(0.0, magnitude * np.std(values), n)
    return values + ramp, (0.0, 1.0)


def plant_seasonality(
    values: np.ndarray, cycles: int, magnitude: float
) -> tuple[np.ndarray, tuple[float, float]]:
    """Add a sinusoidal seasonal component with ``cycles`` full periods."""
    if cycles <= 0:
        raise WorkloadError("seasonality needs at least one cycle")
    n = len(values)
    wave = magnitude * np.std(values) * np.sin(np.linspace(0.0, 2 * np.pi * cycles, n))
    return values + wave, (0.0, 1.0)


def make_pattern_column(
    name: str,
    num_rows: int,
    patterns: list[PatternKind],
    base_level: float = 100.0,
    base_scale: float = 10.0,
    seed: int = 17,
) -> tuple[Column, list[PlantedPattern]]:
    """Generate one column carrying the requested patterns, with ground truth."""
    _validate(num_rows, base_scale)
    rng = np.random.default_rng(seed)
    values = noisy_baseline(num_rows, base_level, base_scale, rng)
    planted: list[PlantedPattern] = []
    for i, kind in enumerate(patterns):
        if kind is PatternKind.OUTLIER_BURST:
            start = 0.15 + 0.3 * (i % 3)
            values, (lo, hi) = plant_outlier_burst(values, start, 0.02, 8.0, rng)
            planted.append(PlantedPattern(kind, name, lo, hi, 8.0))
        elif kind is PatternKind.LEVEL_SHIFT:
            values, (lo, hi) = plant_level_shift(values, 0.6, 4.0)
            planted.append(PlantedPattern(kind, name, lo, hi, 4.0))
        elif kind is PatternKind.TREND:
            values, (lo, hi) = plant_trend(values, 5.0)
            planted.append(PlantedPattern(kind, name, lo, hi, 5.0))
        elif kind is PatternKind.SEASONALITY:
            values, (lo, hi) = plant_seasonality(values, 6, 3.0)
            planted.append(PlantedPattern(kind, name, lo, hi, 3.0))
        else:
            raise WorkloadError(f"pattern {kind} needs a multi-column generator")
    return Column(name, values), planted


def make_clustered_column(
    name: str,
    num_rows: int,
    num_clusters: int = 4,
    separation: float = 6.0,
    base_scale: float = 1.0,
    seed: int = 23,
) -> tuple[Column, list[PlantedPattern]]:
    """A column whose values fall into well-separated clusters."""
    _validate(num_rows, base_scale)
    if num_clusters < 2:
        raise WorkloadError("clustered column needs at least 2 clusters")
    rng = np.random.default_rng(seed)
    assignments = rng.integers(0, num_clusters, size=num_rows)
    centers = np.arange(num_clusters) * separation * base_scale
    values = centers[assignments] + rng.normal(0.0, base_scale, size=num_rows)
    pattern = PlantedPattern(PatternKind.CLUSTER, name, 0.0, 1.0, separation)
    return Column(name, values), [pattern]


def make_correlated_pair(
    name_x: str,
    name_y: str,
    num_rows: int,
    correlation: float = 0.9,
    seed: int = 29,
) -> tuple[Column, Column, PlantedPattern]:
    """Two columns with a planted linear correlation."""
    if not -1.0 <= correlation <= 1.0:
        raise WorkloadError("correlation must be within [-1, 1]")
    _validate(num_rows, 1.0)
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 1.0, size=num_rows)
    noise = rng.normal(0.0, 1.0, size=num_rows)
    y = correlation * x + np.sqrt(max(0.0, 1.0 - correlation**2)) * noise
    pattern = PlantedPattern(PatternKind.CORRELATION, name_y, 0.0, 1.0, correlation)
    return Column(name_x, x), Column(name_y, y), pattern


def make_contest_dataset(
    name: str = "contest",
    num_rows: int = 200_000,
    seed: int = 31,
) -> GeneratedDataset:
    """The default exploration-contest dataset: several columns, several patterns."""
    burst_col, burst_patterns = make_pattern_column(
        "sensor_a", num_rows, [PatternKind.OUTLIER_BURST], seed=seed
    )
    shift_col, shift_patterns = make_pattern_column(
        "sensor_b", num_rows, [PatternKind.LEVEL_SHIFT], seed=seed + 1
    )
    trend_col, trend_patterns = make_pattern_column(
        "sensor_c", num_rows, [PatternKind.TREND], seed=seed + 2
    )
    plain_col, _ = make_pattern_column("sensor_d", num_rows, [], seed=seed + 3)
    table = Table(name, [burst_col, shift_col, trend_col, plain_col])
    return GeneratedDataset(
        table=table,
        patterns=[*burst_patterns, *shift_patterns, *trend_patterns],
    )
