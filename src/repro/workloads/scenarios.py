"""Domain scenarios from the paper's introduction.

The paper motivates dbTouch with two running examples: an astronomer who
browses parts of the sky looking for interesting effects, and a data
analyst at an IT business who browses daily monitoring streams to figure
out user-behaviour patterns.  Both produce a daily stream of big data and
both need to "observe something interesting" rather than run precise,
pre-planned queries.  This module builds scaled-down but structurally
faithful versions of those datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.commands import (
    ChooseAction,
    GestureScript,
    ShowColumn,
    Slide,
    Tap,
    ZoomIn,
)
from repro.core.actions import summary_action
from repro.errors import WorkloadError
from repro.storage.column import Column
from repro.storage.table import Table
from repro.workloads.generators import PatternKind, PlantedPattern


@dataclass
class Scenario:
    """A named dataset plus the ground-truth patterns hidden inside it."""

    name: str
    table: Table
    patterns: list[PlantedPattern]
    description: str

    def load_into(self, service) -> None:
        """Load the scenario's columns as standalone objects on a service.

        Works against any backend exposing ``load_column`` (both
        :class:`repro.service.LocalExplorationService` and
        :class:`repro.service.RemoteExplorationService` do), which is what
        lets the scenario scripts below run locally or remotely unchanged.
        """
        for column in self.table.columns:
            service.load_column(column.name, column.copy())


def sky_survey_scenario(num_objects: int = 500_000, seed: int = 41) -> Scenario:
    """The astronomer's workload: a catalog of observed sky objects.

    Columns: right ascension, declination, apparent magnitude and redshift.
    Planted patterns: a localized cluster of unusually bright objects (a
    "transient event" region in declination) and a magnitude/redshift
    correlation, which is what the astronomer is hoping to spot by sliding
    over the magnitude column and zooming into suspicious regions.
    """
    if num_objects <= 0:
        raise WorkloadError("num_objects must be positive")
    rng = np.random.default_rng(seed)
    right_ascension = rng.uniform(0.0, 360.0, size=num_objects)
    declination = np.sort(rng.uniform(-90.0, 90.0, size=num_objects))
    redshift = np.abs(rng.normal(0.5, 0.3, size=num_objects))
    magnitude = 18.0 + 2.5 * redshift + rng.normal(0.0, 0.6, size=num_objects)

    # transient event: objects between declination fractions 0.42 and 0.45
    # are several magnitudes brighter than the background population
    start = int(0.42 * num_objects)
    stop = int(0.45 * num_objects)
    magnitude[start:stop] -= 4.0
    patterns = [
        PlantedPattern(
            kind=PatternKind.OUTLIER_BURST,
            column="magnitude",
            start_fraction=0.42,
            end_fraction=0.45,
            magnitude=4.0,
        ),
        PlantedPattern(
            kind=PatternKind.CORRELATION,
            column="redshift",
            start_fraction=0.0,
            end_fraction=1.0,
            magnitude=0.8,
        ),
    ]
    table = Table(
        "sky_survey",
        [
            Column("right_ascension", right_ascension),
            Column("declination", declination),
            Column("magnitude", magnitude),
            Column("redshift", redshift),
        ],
    )
    return Scenario(
        name="sky-survey",
        table=table,
        patterns=patterns,
        description=(
            "An astronomer browses a sky-object catalog looking for a bright "
            "transient region and for the magnitude/redshift relation."
        ),
    )


def it_monitoring_scenario(num_events: int = 500_000, seed: int = 43) -> Scenario:
    """The IT analyst's workload: a day of request-monitoring events.

    Columns: timestamp (seconds since midnight), response time in
    milliseconds, bytes served and an integer service identifier.  Planted
    patterns: a latency spike during a deployment window, a daily
    seasonality in traffic volume, and one misbehaving service whose
    response times are systematically higher.
    """
    if num_events <= 0:
        raise WorkloadError("num_events must be positive")
    rng = np.random.default_rng(seed)
    timestamps = np.sort(rng.uniform(0.0, 86_400.0, size=num_events))
    service_ids = rng.integers(0, 8, size=num_events)
    base_latency = rng.lognormal(mean=3.0, sigma=0.4, size=num_events)
    # daily seasonality: traffic volume (bytes) follows a day/night cycle
    bytes_served = (
        5_000.0
        + 4_000.0 * np.sin(2 * np.pi * timestamps / 86_400.0 - np.pi / 2)
        + rng.normal(0.0, 500.0, size=num_events)
    ).clip(min=100.0)
    # deployment window: latencies triple between fractions 0.55 and 0.60
    start = int(0.55 * num_events)
    stop = int(0.60 * num_events)
    latency = base_latency.copy()
    latency[start:stop] *= 3.0
    # misbehaving service 5: +50% latency everywhere
    latency[service_ids == 5] *= 1.5

    patterns = [
        PlantedPattern(
            kind=PatternKind.OUTLIER_BURST,
            column="latency_ms",
            start_fraction=0.55,
            end_fraction=0.60,
            magnitude=3.0,
        ),
        PlantedPattern(
            kind=PatternKind.SEASONALITY,
            column="bytes_served",
            start_fraction=0.0,
            end_fraction=1.0,
            magnitude=4.0,
        ),
        PlantedPattern(
            kind=PatternKind.CLUSTER,
            column="service_id",
            start_fraction=0.0,
            end_fraction=1.0,
            magnitude=1.5,
        ),
    ]
    table = Table(
        "it_monitoring",
        [
            Column("timestamp", timestamps),
            Column("latency_ms", latency),
            Column("bytes_served", bytes_served),
            Column("service_id", service_ids),
        ],
    )
    return Scenario(
        name="it-monitoring",
        table=table,
        patterns=patterns,
        description=(
            "An IT analyst browses a day of monitoring events looking for a "
            "deployment-window latency spike, the daily traffic cycle and a "
            "misbehaving service."
        ),
    )


# --------------------------------------------------------------------- #
# the scenarios as gesture scripts
# --------------------------------------------------------------------- #


def _browse_column_script(
    name: str,
    column: str,
    suspicious_start: float,
    suspicious_end: float,
    summary_k: int = 10,
) -> GestureScript:
    """The canonical browse: coarse summary slide, zoom in, inspect a region.

    This is the exploration loop both running examples in the paper's
    introduction describe — slide over the whole column to get the lay of
    the land, zoom into the suspicious region, slide slowly across it, and
    tap to reveal an exact value.
    """
    view = f"{column}-view"
    margin = 0.02
    start = max(0.0, suspicious_start - margin)
    end = min(1.0, suspicious_end + margin)
    return GestureScript(
        name=name,
        commands=[
            ShowColumn(object_name=column, view_name=view, height_cm=10.0),
            ChooseAction(view=view, action=summary_action(k=summary_k, aggregate="avg")),
            Slide(view=view, duration=2.0),
            ZoomIn(view=view),
            Slide(view=view, duration=1.5, start_fraction=start, end_fraction=end),
            Tap(view=view, fraction=(suspicious_start + suspicious_end) / 2.0),
        ],
    )


def sky_survey_script(summary_k: int = 10) -> GestureScript:
    """The astronomer's exploration of :func:`sky_survey_scenario` as data.

    Browses the magnitude column and drills into the planted transient
    region (declination fractions 0.42–0.45).  Load the scenario's columns
    first (``scenario.load_into(service)``), then run the script on any
    :class:`repro.service.ExplorationService`.
    """
    return _browse_column_script(
        "sky-survey-browse", "magnitude", 0.42, 0.45, summary_k=summary_k
    )


def it_monitoring_script(summary_k: int = 10) -> GestureScript:
    """The IT analyst's exploration of :func:`it_monitoring_scenario` as data.

    Browses the latency column and drills into the planted deployment
    window (event fractions 0.55–0.60).
    """
    return _browse_column_script(
        "it-monitoring-browse", "latency_ms", 0.55, 0.60, summary_k=summary_k
    )
