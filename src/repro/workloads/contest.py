"""The exploration contest (Appendix A of the paper).

Two explorers race to find the properties planted in the same dataset:

* the **dbTouch explorer** uses gestures — coarse summary slides to spot a
  suspicious region, then zoom-in and slower slides to localize it;
* the **SQL explorer** uses the monolithic baseline engine — aggregate
  queries over the whole column and then a bisection of positional ranges,
  every step being a full scan.

The harness scripts both users, applies the same "found it" criterion
(report a positional interval that overlaps the planted pattern and is not
hopelessly wide) and reports how much data each had to read and how many
interactions each needed.  This reproduces the demo's contest in a form a
benchmark can run repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baseline.engine import MonolithicEngine
from repro.baseline.sql import SqlInterface
from repro.core.kernel import KernelConfig
from repro.core.session import ExplorationSession
from repro.errors import ContestError
from repro.storage.column import Column
from repro.storage.table import Table
from repro.touchio.device import DeviceProfile, IPAD1
from repro.workloads.generators import GeneratedDataset, PlantedPattern


@dataclass
class ExplorerReport:
    """What one contestant did and whether they found the pattern.

    Attributes
    ----------
    explorer:
        ``"dbtouch"`` or ``"sql"``.
    found:
        Whether the reported interval overlaps the planted pattern.
    reported_interval:
        The positional interval (fractions of the column) the explorer
        reported as containing the pattern.
    tuples_examined:
        Number of stored values the explorer's system had to read.
    interactions:
        Gestures (dbTouch) or SQL statements (baseline) issued.
    """

    explorer: str
    found: bool
    reported_interval: tuple[float, float]
    tuples_examined: int
    interactions: int


@dataclass
class ContestResult:
    """Outcome of one head-to-head exploration contest."""

    pattern: PlantedPattern
    dbtouch: ExplorerReport
    sql: ExplorerReport

    @property
    def winner(self) -> str:
        """The contestant that found the pattern while reading less data."""
        if self.dbtouch.found and not self.sql.found:
            return "dbtouch"
        if self.sql.found and not self.dbtouch.found:
            return "sql"
        if not self.dbtouch.found and not self.sql.found:
            return "none"
        return (
            "dbtouch"
            if self.dbtouch.tuples_examined <= self.sql.tuples_examined
            else "sql"
        )

    @property
    def data_read_ratio(self) -> float:
        """How many times more data the SQL explorer read than dbTouch."""
        if self.dbtouch.tuples_examined == 0:
            return float("inf")
        return self.sql.tuples_examined / self.dbtouch.tuples_examined


def _interval_overlaps(interval: tuple[float, float], pattern: PlantedPattern) -> bool:
    lo, hi = interval
    return not (hi < pattern.start_fraction or lo > pattern.end_fraction)


class DbTouchExplorer:
    """A scripted dbTouch user hunting for an anomalous region in a column."""

    def __init__(
        self,
        column: Column,
        profile: DeviceProfile = IPAD1,
        deviation_threshold: float = 4.0,
        summary_k: int = 10,
    ) -> None:
        if deviation_threshold <= 0:
            raise ContestError("deviation_threshold must be positive")
        self.column = column
        self.profile = profile
        self.deviation_threshold = deviation_threshold
        self.summary_k = summary_k
        # caching/prefetching are disabled so tuples_examined reflects the data
        # the exploration itself needed, making the comparison with the SQL
        # explorer conservative for dbTouch; the sample hierarchy is disabled
        # so every summary aggregates the full 2k+1 base entries (low-variance
        # summaries are what lets the explorer spot subtle patterns)
        self.session = ExplorationSession(
            profile=profile,
            config=KernelConfig(
                enable_cache=False, enable_prefetch=False, enable_samples=False
            ),
        )
        self.session.load_column(column.name, column)

    def explore(self, coarse_duration: float = 3.0, fine_duration: float = 3.0) -> ExplorerReport:
        """Run the scripted exploration and report what was found."""
        view = self.session.show_column(self.column.name, height_cm=10.0)
        self.session.choose_summary(view, k=self.summary_k, aggregate="avg")

        # phase 1: one coarse slide over the whole object
        coarse = self.session.slide(view, duration=coarse_duration)
        fractions, values = self._result_series(coarse)
        candidate = self._most_deviant_region(fractions, values)
        if candidate is None:
            return ExplorerReport(
                explorer="dbtouch",
                found=False,
                reported_interval=(0.0, 0.0),
                tuples_examined=self._tuples_examined(),
                interactions=len(self.session.history),
            )

        # phase 2: zoom in and re-slide only the suspicious neighbourhood
        self.session.zoom_in(view)
        lo = max(0.0, candidate - 0.1)
        hi = min(1.0, candidate + 0.1)
        fine = self.session.slide(view, duration=fine_duration, start_fraction=lo, end_fraction=hi)
        fine_fracs, fine_values = self._result_series(fine)
        refined = self._most_deviant_region(fine_fracs, fine_values)
        center = refined if refined is not None else candidate
        interval = (max(0.0, center - 0.03), min(1.0, center + 0.03))
        return ExplorerReport(
            explorer="dbtouch",
            found=True,
            reported_interval=interval,
            tuples_examined=self._tuples_examined(),
            interactions=len(self.session.history),
        )

    def _result_series(self, outcome) -> tuple[np.ndarray, np.ndarray]:
        fractions = np.asarray([r.position_fraction for r in outcome.results])
        values = np.asarray(
            [r.value for r in outcome.results if isinstance(r.value, (int, float, np.floating))],
            dtype=np.float64,
        )
        if len(values) != len(fractions):
            fractions = fractions[: len(values)]
        return fractions, values

    def _most_deviant_region(self, fractions: np.ndarray, values: np.ndarray) -> float | None:
        """Pick the position of the most suspicious summary, or None.

        Two signals are considered: the summary that deviates most from the
        (robust) centre of all summaries, and the largest jump between two
        consecutive summaries.  The jump localizes transitions — the start of
        an outlier burst or the boundary of a level shift — which is what a
        human explorer would zoom into; the plain deviation covers isolated
        extreme regions.
        """
        if len(values) < 8:
            return None
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median)))
        # 1.4826 * MAD is a consistent estimator of the standard deviation for
        # Gaussian noise, so the threshold is expressed in sigmas
        scale = 1.4826 * mad if mad > 0 else float(np.std(values)) or 1.0
        deviations = np.abs(values - median) / scale
        worst = int(np.argmax(deviations))
        # the difference of two independent summaries has sqrt(2) times their
        # spread, so jumps are normalized accordingly before thresholding
        jumps = np.abs(np.diff(values)) / (scale * np.sqrt(2.0))
        worst_jump = int(np.argmax(jumps)) if len(jumps) else 0
        max_dev = float(deviations[worst])
        max_jump = float(jumps[worst_jump]) if len(jumps) else 0.0
        if max(max_dev, max_jump) < self.deviation_threshold:
            return None
        if max_jump >= 0.5 * max_dev and max_jump >= self.deviation_threshold:
            # centre the candidate on the transition between the two summaries
            return float((fractions[worst_jump] + fractions[worst_jump + 1]) / 2.0)
        return float(fractions[worst])

    def _tuples_examined(self) -> int:
        return sum(o.tuples_examined for o in self.session.history)


class SqlExplorer:
    """A scripted SQL user hunting for the same region with a monolithic DBMS.

    The script mirrors how an analyst localizes an anomaly without knowing
    where it is: global aggregates first, then a positional bisection using
    ``WHERE position BETWEEN a AND b`` aggregate queries — each of which the
    monolithic engine answers with a full scan of the predicate column.
    """

    def __init__(self, column: Column, deviation_threshold: float = 2.0):
        if deviation_threshold <= 0:
            raise ContestError("deviation_threshold must be positive")
        self.column = column
        self.deviation_threshold = deviation_threshold
        self.engine = MonolithicEngine()
        table = Table(
            "contest",
            [Column("position", np.arange(len(column), dtype=np.int64)), column.copy()],
        )
        self.engine.register(table)
        self.sql = SqlInterface(self.engine)

    def explore(self, max_bisections: int = 12) -> ExplorerReport:
        """Run the scripted SQL exploration and report what was found."""
        name = self.column.name
        n = len(self.column)
        baseline_avg = float(self.sql.execute(f"SELECT AVG({name}) FROM contest").scalar())
        baseline_std = float(self.sql.execute(f"SELECT STD({name}) FROM contest").scalar())
        self.sql.execute(f"SELECT MAX({name}) FROM contest")

        lo, hi = 0, n
        found = False
        for _ in range(max_bisections):
            if hi - lo <= max(1, n // 64):
                found = True
                break
            mid = (lo + hi) // 2
            # an analyst hunting anomalies bisects on the half whose extreme
            # and average deviate most from the global baseline; each probe is
            # a full scan for the monolithic engine
            left_dev = self._range_deviation(name, lo, mid, baseline_avg)
            right_dev = self._range_deviation(name, mid, hi, baseline_avg)
            if max(left_dev, right_dev) < self.deviation_threshold * baseline_std / 10.0:
                # neither half looks interesting; this bisection is going
                # nowhere, keep narrowing on the slightly more deviant half
                pass
            if left_dev >= right_dev:
                hi = mid
            else:
                lo = mid
            found = True
        interval = (lo / n, hi / n)
        return ExplorerReport(
            explorer="sql",
            found=found,
            reported_interval=interval,
            tuples_examined=self.engine.total_cells_read,
            interactions=self.sql.statements_executed,
        )

    def _range_deviation(self, name: str, lo: int, hi: int, baseline_avg: float) -> float:
        """How anomalous the positional range [lo, hi) looks to the SQL user."""
        avg_result = self.sql.execute(
            f"SELECT AVG({name}) FROM contest WHERE position BETWEEN {lo} AND {hi - 1}"
        )
        max_result = self.sql.execute(
            f"SELECT MAX({name}) FROM contest WHERE position BETWEEN {lo} AND {hi - 1}"
        )
        avg_value = avg_result.scalar()
        max_value = max_result.scalar()
        avg_dev = abs(float(avg_value) - baseline_avg) if avg_value is not None else 0.0
        max_dev = abs(float(max_value) - baseline_avg) if max_value is not None else 0.0
        return max(avg_dev, max_dev)


def run_contest(
    dataset: GeneratedDataset,
    column_name: str,
    profile: DeviceProfile = IPAD1,
) -> ContestResult:
    """Run both explorers against one planted pattern and compare them."""
    patterns = dataset.patterns_in(column_name)
    if not patterns:
        raise ContestError(f"dataset has no planted pattern in column {column_name!r}")
    pattern = patterns[0]
    column = dataset.table.column(column_name)

    dbtouch_report = DbTouchExplorer(column, profile=profile).explore()
    sql_report = SqlExplorer(column).explore()

    dbtouch_report.found = dbtouch_report.found and _interval_overlaps(
        dbtouch_report.reported_interval, pattern
    )
    sql_report.found = sql_report.found and _interval_overlaps(
        sql_report.reported_interval, pattern
    )
    return ContestResult(pattern=pattern, dbtouch=dbtouch_report, sql=sql_report)
