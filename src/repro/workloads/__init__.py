"""Workloads: synthetic generators, domain scenarios and the contest harness."""

from repro.workloads.contest import (
    ContestResult,
    DbTouchExplorer,
    ExplorerReport,
    SqlExplorer,
    run_contest,
)
from repro.workloads.generators import (
    GeneratedDataset,
    MultiUserWorkload,
    PatternKind,
    PlantedPattern,
    make_clustered_column,
    make_contest_dataset,
    make_correlated_pair,
    make_pattern_column,
    make_serving_workload,
)
from repro.workloads.scenarios import (
    Scenario,
    it_monitoring_scenario,
    it_monitoring_script,
    sky_survey_scenario,
    sky_survey_script,
)

__all__ = [
    "ContestResult",
    "DbTouchExplorer",
    "ExplorerReport",
    "GeneratedDataset",
    "MultiUserWorkload",
    "PatternKind",
    "PlantedPattern",
    "Scenario",
    "SqlExplorer",
    "it_monitoring_scenario",
    "it_monitoring_script",
    "make_clustered_column",
    "make_contest_dataset",
    "make_correlated_pair",
    "make_pattern_column",
    "make_serving_workload",
    "run_contest",
    "sky_survey_scenario",
    "sky_survey_script",
]
