"""Snapshot catalog: versioned manifests for warm cold-starts.

A :class:`StoreCatalog` pairs a
:class:`repro.persist.diskstore.DiskColumnStore` with a JSON manifest
(``catalog.json`` in the store root) that records *everything a serving
engine needs to resume exploration instantly*:

* table schemas (attribute order, dtypes) and their per-column store
  files;
* standalone columns;
* every materialized :class:`repro.storage.sample.SampleHierarchy` level,
  persisted as its own chunked column file;
* the cracked state of an :class:`repro.indexing.manager.IndexManager`
  (:meth:`StoreCatalog.persist_index` / :meth:`StoreCatalog.attach_index`),
  so the physical organization that gestures adapted keeps paying off
  after a restart instead of being re-learned from scratch.

Cold start then costs a manifest read plus a handful of ``mmap`` calls —
no CSV parsing, no hierarchy re-striding — which is where the >=10x
restart win of ``benchmarks/test_out_of_core.py`` comes from.  The
manifest is versioned and rewritten atomically; a missing, corrupted,
truncated or foreign-version manifest raises
:class:`repro.errors.SnapshotError` instead of crashing the server.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.errors import CatalogError, SnapshotError, StorageError
from repro.indexing.cracking import CrackerState, dirty_ranges_from_log
from repro.persist.diskstore import DiskColumnStore
from repro.persist.format import DEFAULT_CHUNK_ROWS
from repro.persist.paged_column import PagedColumn
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.sample import SampleHierarchy, SampleLevel
from repro.storage.table import Table

#: Version of the manifest schema written by this module.
MANIFEST_VERSION = 1
#: Manifest file name inside the store root.
MANIFEST_NAME = "catalog.json"
#: Caps on one index record's incremental-delta chain; exceeding either
#: compacts the chain with a full cracker-array rewrite.
MAX_INDEX_DELTAS = 8
MAX_DELTA_RANGES = 16


def _hierarchy_key(object_name: str, column_name: str | None) -> tuple[str, str | None]:
    return (object_name, column_name)


class StoreCatalog:
    """The persisted counterpart of :class:`repro.storage.catalog.Catalog`.

    Parameters
    ----------
    store:
        The chunk store holding (or receiving) the column files.
    read_only:
        Refuse every ``persist_*`` mutation.  This is the multi-attach
        mode of the sharded serving tier: one publisher writes the
        snapshot, N worker processes each :meth:`open_read_only` the same
        root and map the same chunk files — safe precisely because no
        attacher can rewrite the manifest out from under its siblings.

    An existing manifest in the store root is loaded and validated on
    construction; otherwise the catalog starts empty.  All ``persist_*``
    methods rewrite the manifest atomically after updating the store, and
    run under an internal lock — a :class:`BackgroundMaterializer`
    persists hierarchies from a scheduler worker while the ingest thread
    may be persisting the next table, and neither may lose the other's
    just-committed records.
    """

    def __init__(self, store: DiskColumnStore, read_only: bool = False) -> None:
        self.store = store
        self.read_only = read_only
        self._lock = threading.RLock()
        self._tables: dict[str, dict] = {}
        self._columns: dict[str, dict] = {}
        self._hierarchies: dict[tuple[str, str | None], dict] = {}
        self._indexes: dict[tuple[str, str | None], dict] = {}
        if self.manifest_path.is_file():
            self._read_manifest()

    @classmethod
    def open_read_only(
        cls,
        root: str | os.PathLike,
        cache_bytes: int | None = None,
        budget=None,
    ) -> "StoreCatalog":
        """Attach an already-published snapshot, immutably.

        Requires an existing manifest — a read-only catalog over an empty
        root would be a typo'd path silently serving nothing, so it raises
        :class:`repro.errors.SnapshotError` instead.  ``cache_bytes`` and
        ``budget`` configure the attacher-private chunk cache (the mapped
        file bytes themselves are shared between attachers by the OS).
        """
        root = Path(root)
        if not (root / MANIFEST_NAME).is_file():
            raise SnapshotError(
                f"no snapshot manifest at {root / MANIFEST_NAME}; "
                "publish the snapshot before attaching read-only"
            )
        kwargs = {} if cache_bytes is None else {"cache_bytes": cache_bytes}
        store = DiskColumnStore(root, budget=budget, **kwargs)
        return cls(store, read_only=True)

    def _ensure_writable(self, operation: str) -> None:
        if self.read_only:
            raise SnapshotError(
                f"{operation} refused: this StoreCatalog is attached read-only"
            )

    @property
    def manifest_path(self) -> Path:
        """Where the catalog manifest lives."""
        return self.store.root / MANIFEST_NAME

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def table_names(self) -> list[str]:
        """Names of every persisted table."""
        with self._lock:
            return sorted(self._tables)

    @property
    def column_names(self) -> list[str]:
        """Names of every persisted standalone column."""
        with self._lock:
            return sorted(self._columns)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tables or name in self._columns

    def table_column_names(self, name: str) -> list[str]:
        """Attribute names of one persisted table, in schema order."""
        with self._lock:
            record = self._tables.get(name)
            if record is None:
                raise SnapshotError(f"no persisted table {name!r}; known: {self.table_names}")
            return [spec["name"] for spec in record["columns"]]

    def hierarchy_steps(self, object_name: str, column_name: str | None = None) -> list[int]:
        """Steps of the persisted sample levels for one column (may be empty)."""
        with self._lock:
            record = self._hierarchies.get(_hierarchy_key(object_name, column_name))
            if record is None:
                return []
            return [int(level["step"]) for level in record["levels"]]

    # ------------------------------------------------------------------ #
    # persisting
    # ------------------------------------------------------------------ #
    def persist_column(
        self,
        column: Column,
        hierarchy: SampleHierarchy | bool = True,
        factor: int = 4,
        min_rows: int = 64,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        replace: bool = False,
    ) -> None:
        """Persist a standalone column (and, by default, its hierarchy).

        ``hierarchy`` may be ``True`` (build one now with ``factor`` /
        ``min_rows``; skipped for non-numeric columns), ``False`` (none —
        e.g. when a :class:`BackgroundMaterializer` will build it later),
        or an existing :class:`SampleHierarchy` to snapshot as-is.
        """
        self._ensure_writable("persist_column")
        with self._lock:
            if column.name in self._tables:
                raise SnapshotError(f"name {column.name!r} already persisted as a table")
            self.store.write_column(column, chunk_rows=chunk_rows, replace=replace)
            self._columns[column.name] = {
                "store_name": column.name,
                "dtype": column.dtype.name,
                "num_rows": len(column),
            }
            self._hierarchies.pop(_hierarchy_key(column.name, None), None)
            # cracked state snapshotted from the previous data is stale now
            self._indexes.pop(_hierarchy_key(column.name, None), None)
            self._persist_hierarchy_levels(
                column, column.name, None, hierarchy, factor, min_rows, chunk_rows
            )
            self._write_manifest()

    def persist_table(
        self,
        table: Table,
        hierarchies: bool = True,
        factor: int = 4,
        min_rows: int = 64,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        replace: bool = False,
    ) -> None:
        """Persist a table: one column file per attribute plus hierarchies.

        With ``hierarchies`` (the default) a sample hierarchy is built and
        snapshotted for every numeric attribute, so reopening the table
        skips both the CSV parse *and* the sample re-striding.
        """
        self._ensure_writable("persist_table")
        with self._lock:
            if table.name in self._columns:
                raise SnapshotError(f"name {table.name!r} already persisted as a column")
            specs = []
            for column in table.columns:
                store_name = f"{table.name}/{column.name}"
                self.store.write_column(
                    column, name=store_name, chunk_rows=chunk_rows, replace=replace
                )
                specs.append(
                    {"name": column.name, "store_name": store_name, "dtype": column.dtype.name}
                )
            self._tables[table.name] = {"num_rows": len(table), "columns": specs}
            for column in table.columns:
                self._hierarchies.pop(_hierarchy_key(table.name, column.name), None)
                self._indexes.pop(_hierarchy_key(table.name, column.name), None)
                self._persist_hierarchy_levels(
                    column,
                    f"{table.name}/{column.name}",
                    (table.name, column.name),
                    hierarchies,
                    factor,
                    min_rows,
                    chunk_rows,
                )
            self._write_manifest()

    def persist_hierarchy(
        self,
        object_name: str,
        column_name: str | None = None,
        factor: int = 4,
        min_rows: int = 64,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> list[int]:
        """Build and snapshot the hierarchy of an already-persisted column.

        This is the deferred-materialization path used by
        :class:`repro.persist.background.BackgroundMaterializer`: the
        levels are strided off the *paged* base column (so building never
        needs the full column in RAM) and appended to the manifest.
        Returns the persisted level steps.
        """
        self._ensure_writable("persist_hierarchy")
        with self._lock:
            base, store_name = self._resolve_base(object_name, column_name)
            if not base.is_numeric:
                return []
            key = (object_name, column_name) if column_name is not None else None
            hierarchy = SampleHierarchy(base, factor=factor, min_rows=min_rows)
            self._persist_hierarchy_levels(
                base, store_name, key, hierarchy, factor, min_rows, chunk_rows
            )
            self._write_manifest()
            return self.hierarchy_steps(object_name, column_name)

    def _resolve_base(
        self, object_name: str, column_name: str | None
    ) -> tuple[PagedColumn, str]:
        if column_name is None:
            record = self._columns.get(object_name)
            if record is None:
                raise SnapshotError(f"no persisted standalone column {object_name!r}")
            return self.store.open_column(record["store_name"]), record["store_name"]
        table = self._tables.get(object_name)
        if table is None:
            raise SnapshotError(f"no persisted table {object_name!r}")
        for spec in table["columns"]:
            if spec["name"] == column_name:
                return (
                    self.store.open_column(spec["store_name"], as_name=column_name),
                    spec["store_name"],
                )
        raise SnapshotError(f"table {object_name!r} has no column {column_name!r}")

    def _persist_hierarchy_levels(
        self,
        column: Column,
        store_name: str,
        key: tuple[str, str] | None,
        hierarchy: SampleHierarchy | bool,
        factor: int,
        min_rows: int,
        chunk_rows: int,
    ) -> None:
        if hierarchy is False:
            return
        if hierarchy is True:
            if not column.is_numeric:
                return
            hierarchy = SampleHierarchy(column, factor=factor, min_rows=min_rows)
        levels = []
        for level in hierarchy.levels:
            if level.step <= 1:
                continue
            level_store_name = f"{store_name}#s{level.step}"
            self.store.write_column(
                level.column, name=level_store_name, chunk_rows=chunk_rows, replace=True
            )
            levels.append({"step": level.step, "store_name": level_store_name})
        object_name, column_name = key if key is not None else (column.name, None)
        self._hierarchies[_hierarchy_key(object_name, column_name)] = {
            "object": object_name,
            "column": column_name,
            "factor": hierarchy.factor,
            "min_rows": hierarchy.min_rows,
            "levels": levels,
        }

    # ------------------------------------------------------------------ #
    # append compaction (live ingestion)
    # ------------------------------------------------------------------ #
    def _compact_store_column(self, store_name: str) -> tuple[int, bool]:
        """Fold one store column's append tail into its chunk file.

        Streams the old chunks plus the in-memory tail through
        ``write_chunks(replace=True)`` — the rewritten file appears
        atomically, the generator reads off the pre-replace memmap, and
        the store's generation bump retires the old mapping so the next
        ``open_column`` serves the grown column tail-free.  Returns
        ``(row_count, whether anything was rewritten)``.
        """
        paged = self.store.open_column(store_name)
        n = len(paged)
        if not int(getattr(paged, "tail_rows", 0)):
            return n, False
        chunk_rows = paged.format.chunk_rows

        def chunks():
            for start in range(0, n, chunk_rows):
                yield np.asarray(paged.raw_slice(start, min(n, start + chunk_rows)))

        self.store.write_chunks(
            store_name, paged.dtype, n, chunks(), chunk_rows=chunk_rows, replace=True
        )
        return n, True

    def compact_appends(self, object_name: str) -> int:
        """Fold appended in-memory tails into ``object_name``'s chunk files.

        The snapshot-side half of live ingestion: appended rows live in a
        :class:`PagedColumn`'s RAM tail until this folds them into the
        chunked on-disk format, so warm re-attaches keep their mmap-speed
        cold start over the *grown* data.  Hierarchy snapshots for the
        object are re-persisted over the new length; persisted cracker
        state is deliberately left alone — appends never permute existing
        rows, so it revives as a valid *prefix* warm start
        (:meth:`repro.indexing.cracking.CrackerIndex.from_state`) whose
        window the index tier advances on the background lane.  Returns
        the object's row count after compaction (a no-op when no column
        has a tail).
        """
        self._ensure_writable("compact_appends")
        with self._lock:
            if object_name in self._tables:
                record = self._tables[object_name]
                new_rows = int(record["num_rows"])
                changed = False
                for spec in record["columns"]:
                    rows, rewritten = self._compact_store_column(spec["store_name"])
                    new_rows = rows
                    changed = changed or rewritten
                record["num_rows"] = new_rows
            elif object_name in self._columns:
                record = self._columns[object_name]
                new_rows, changed = self._compact_store_column(record["store_name"])
                record["num_rows"] = new_rows
            else:
                raise SnapshotError(
                    f"no persisted object {object_name!r} to compact; "
                    f"known: {self.table_names + self.column_names}"
                )
            if changed:
                for (obj, col), record in list(self._hierarchies.items()):
                    if obj == object_name:
                        self.persist_hierarchy(
                            obj,
                            col,
                            factor=int(record["factor"]),
                            min_rows=int(record["min_rows"]),
                        )
                self._write_manifest()
            return new_rows

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def load_column(self, name: str) -> PagedColumn:
        """Open a persisted standalone column (shared mapping per store)."""
        with self._lock:
            record = self._columns.get(name)
            if record is None:
                raise SnapshotError(
                    f"no persisted standalone column {name!r}; known: {self.column_names}"
                )
            return self.store.open_column(record["store_name"], as_name=name)

    def load_table(self, name: str) -> Table:
        """Open a persisted table as paged columns (no data read yet)."""
        with self._lock:
            record = self._tables.get(name)
            if record is None:
                raise SnapshotError(f"no persisted table {name!r}; known: {self.table_names}")
            columns = [
                self.store.open_column(spec["store_name"], as_name=spec["name"])
                for spec in record["columns"]
            ]
            return Table(name, columns)

    def load_hierarchy(
        self, object_name: str, column_name: str | None = None
    ) -> SampleHierarchy | None:
        """Reassemble a persisted sample hierarchy, or ``None`` if absent.

        The base and every level are paged columns over their snapshot
        files, so the hierarchy is ready before any data page is faulted.
        """
        with self._lock:
            record = self._hierarchies.get(_hierarchy_key(object_name, column_name))
            if record is None:
                return None
            base, _ = self._resolve_base(object_name, column_name)
            as_name = column_name if column_name is not None else object_name
            levels = [
                SampleLevel(
                    level=i + 1,
                    step=int(spec["step"]),
                    column=self.store.open_column(spec["store_name"], as_name=as_name),
                )
                for i, spec in enumerate(record["levels"])
            ]
            return SampleHierarchy.from_levels(
                base,
                levels,
                factor=int(record["factor"]),
                min_rows=int(record["min_rows"]),
            )

    def attach(self, catalog: Catalog) -> list[str]:
        """Register every persisted object (plus hierarchies) into ``catalog``.

        The single-call warm start for a
        :class:`repro.service.LocalExplorationService`-style backend:
        tables and columns are registered as paged objects and the
        snapshot hierarchies adopted, so the kernel's first gesture skips
        both ingest and sample builds.  Returns the registered names.
        """
        with self._lock:
            names = []
            for name in self.table_names:
                catalog.register_table(self.load_table(name))
                names.append(name)
            for name in self.column_names:
                catalog.register_column(self.load_column(name))
                names.append(name)
            for object_name, column_name in self._hierarchies:
                hierarchy = self.load_hierarchy(object_name, column_name)
                if hierarchy is not None:
                    catalog.adopt_hierarchy(object_name, column_name, hierarchy)
            return names

    def iter_hierarchy_keys(self) -> Iterable[tuple[str, str | None]]:
        """The ``(object, column)`` pairs with persisted hierarchies."""
        with self._lock:
            return list(self._hierarchies)

    # ------------------------------------------------------------------ #
    # adaptive-index state (cracked organization survives restarts)
    # ------------------------------------------------------------------ #
    def index_keys(self) -> list[tuple[str, str | None]]:
        """The ``(object, column)`` pairs with persisted cracker state."""
        with self._lock:
            return list(self._indexes)

    def _store_name_for(self, object_name: str, column_name: str | None) -> str:
        """The store file name backing one persisted (object, column) pair."""
        if column_name is None:
            record = self._columns.get(object_name)
            if record is None:
                raise SnapshotError(f"no persisted standalone column {object_name!r}")
            return record["store_name"]
        table = self._tables.get(object_name)
        if table is None:
            raise SnapshotError(f"no persisted table {object_name!r}")
        for spec in table["columns"]:
            if spec["name"] == column_name:
                return spec["store_name"]
        raise SnapshotError(f"table {object_name!r} has no column {column_name!r}")

    def persist_index(self, manager, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> list:
        """Snapshot every live cracker of an :class:`IndexManager`.

        The expensive part of a cracker — the reordered value copy and the
        rowid permutation — is written as two chunked store columns
        (``<store>#crk-v`` / ``<store>#crk-r``) *once per cracker epoch*;
        re-snapshotting the same cracker writes **incremental piece-level
        deltas** instead (``<store>#crk-d<n>-v`` / ``-r``): only the
        regions its mutation log says were permuted since the persisted
        generation, applied in order on load.  The chain compacts back to
        a full rewrite when it grows past :data:`MAX_INDEX_DELTAS` entries,
        the dirty set exceeds half the column, or the cracker's log no
        longer reaches the persisted generation.  The piece structure
        (pivots, bounds) always rides in the manifest.  Only crackers
        whose ``(object, column)`` pair is already persisted in this
        catalog are snapshotted (state for unknown objects is skipped —
        there is nothing to warm-start it against).  Returns the persisted
        keys, including up-to-date records that needed no write.
        """
        self._ensure_writable("persist_index")
        persisted = []
        with self._lock:
            changed = False
            for (object_name, column_name), state in manager.cracked_states():
                try:
                    base_store = self._store_name_for(object_name, column_name)
                except SnapshotError:
                    continue
                key = _hierarchy_key(object_name, column_name)
                record = self._indexes.get(key)
                if (
                    record is not None
                    and state.epoch
                    and record.get("epoch") == state.epoch
                ):
                    if int(record["generation"]) == int(state.generation):
                        persisted.append(key)  # already current: no write
                        continue
                    if self._persist_index_delta(record, base_store, state, chunk_rows):
                        persisted.append(key)
                        changed = True
                        continue
                self._persist_index_full(
                    key, base_store, object_name, column_name, state, chunk_rows
                )
                persisted.append(key)
                changed = True
            if changed:
                self._write_manifest()
        return persisted

    def _persist_index_full(
        self,
        key: tuple[str, str | None],
        base_store: str,
        object_name: str,
        column_name: str | None,
        state: CrackerState,
        chunk_rows: int,
    ) -> None:
        """Write the full cracker arrays and reset the record's delta chain."""
        old = self._indexes.get(key)
        values_store = f"{base_store}#crk-v"
        rowids_store = f"{base_store}#crk-r"
        self.store.write_column(
            Column(values_store, state.values),
            name=values_store,
            chunk_rows=chunk_rows,
            replace=True,
        )
        self.store.write_column(
            Column(rowids_store, state.rowids),
            name=rowids_store,
            chunk_rows=chunk_rows,
            replace=True,
        )
        if old is not None:
            self._drop_delta_stores(old)
        self._indexes[key] = {
            "object": object_name,
            "column": column_name,
            "num_rows": int(state.values.shape[0]),
            "num_valid": int(state.num_valid),
            "cracks_performed": int(state.cracks_performed),
            "pivots": [float(p) for p in state.pivots],
            "bounds": [int(b) for b in state.bounds],
            "values_store": values_store,
            "rowids_store": rowids_store,
            "epoch": state.epoch,
            "generation": int(state.generation),
            "deltas": [],
        }

    def _persist_index_delta(
        self, record: dict, base_store: str, state: CrackerState, chunk_rows: int
    ) -> bool:
        """Extend the record's delta chain to ``state``'s generation.

        Returns ``False`` when a delta write is not worthwhile or not
        possible (log collapsed, dirty set too large, chain too long) —
        the caller then compacts with a full rewrite.
        """
        since = int(record["generation"])
        ranges = dirty_ranges_from_log(state.mutation_log, state.log_floor, since)
        if ranges is None or len(ranges) > MAX_DELTA_RANGES:
            return False
        deltas = list(record.get("deltas", []))
        if len(deltas) + len(ranges) > MAX_INDEX_DELTAS:
            return False
        n = int(state.values.shape[0])
        if n and sum(stop - start for start, stop in ranges) > n // 2:
            return False
        for start, stop in ranges:
            seq = len(deltas)
            delta_values = f"{base_store}#crk-d{seq}-v"
            delta_rowids = f"{base_store}#crk-d{seq}-r"
            rows = stop - start
            self.store.write_column(
                Column(delta_values, state.values[start:stop]),
                name=delta_values,
                chunk_rows=max(1, min(chunk_rows, rows)),
                replace=True,
            )
            self.store.write_column(
                Column(delta_rowids, state.rowids[start:stop]),
                name=delta_rowids,
                chunk_rows=max(1, min(chunk_rows, rows)),
                replace=True,
            )
            deltas.append(
                {
                    "offset": int(start),
                    "rows": int(rows),
                    "values_store": delta_values,
                    "rowids_store": delta_rowids,
                }
            )
        # a generation bump with no permuted range (pivot-only cracks,
        # coalesces) still lands here: the refreshed piece structure below
        # is the whole delta
        record["deltas"] = deltas
        record["generation"] = int(state.generation)
        record["cracks_performed"] = int(state.cracks_performed)
        record["num_valid"] = int(state.num_valid)
        record["pivots"] = [float(p) for p in state.pivots]
        record["bounds"] = [int(b) for b in state.bounds]
        return True

    def _drop_delta_stores(self, record: dict) -> None:
        """Delete a record's superseded delta columns (best effort)."""
        for delta in record.get("deltas", []):
            for name in (delta["values_store"], delta["rowids_store"]):
                try:
                    self.store.delete_column(name)
                except StorageError:
                    pass

    def attach_index(self, manager, catalog: Catalog) -> list:
        """Warm-start an :class:`IndexManager` from persisted cracker state.

        For every snapshotted index whose object is registered in
        ``catalog`` (typically right after :meth:`attach`), the cracked
        arrays are loaded and adopted, so the first range selection after
        a restart scans cracked pieces instead of the whole column.  This
        also gives *paged* columns cracker-grade lookups — the adopted
        arrays live in RAM (16 bytes/row), which is the explicit,
        opt-in trade the warm start makes.  State that no longer fits the
        registered data (a reload between snapshot and restart) is
        skipped; returns the adopted keys.
        """
        with self._lock:
            records = list(self._indexes.values())
        adopted = []
        for record in records:
            object_name = record["object"]
            column_name = record["column"]
            try:
                base = catalog.resolve_column(object_name, column_name)
            except CatalogError:
                continue
            try:
                # native dtype: the stored column file knows what the
                # cracker arrays were (legacy float64 snapshots load as
                # float64 and are cast — losslessly or not at all — by
                # CrackerIndex.from_state)
                values = np.array(self.store.open_column(record["values_store"]).values)
                rowids = np.array(
                    self.store.open_column(record["rowids_store"]).values,
                    dtype=np.int64,
                )
                self._apply_index_deltas(record, values, rowids)
                state = CrackerState(
                    values=values,
                    rowids=rowids,
                    pivots=tuple(record["pivots"]),
                    bounds=tuple(record["bounds"]),
                    num_valid=int(record["num_valid"]),
                    cracks_performed=int(record["cracks_performed"]),
                    epoch=str(record.get("epoch", "")),
                    generation=int(record.get("generation", record["cracks_performed"])),
                )
                manager.adopt_cracker(object_name, column_name, base, state)
            except StorageError:
                continue  # stale or malformed state: start cold for this column
            adopted.append(_hierarchy_key(object_name, column_name))
        return adopted

    def _apply_index_deltas(
        self, record: dict, values: np.ndarray, rowids: np.ndarray
    ) -> None:
        """Splice a record's delta chain into the base arrays, in order."""
        for delta in record.get("deltas", []):
            offset = int(delta["offset"])
            rows = int(delta["rows"])
            delta_values = np.asarray(
                self.store.open_column(delta["values_store"]).values
            )
            delta_rowids = np.asarray(
                self.store.open_column(delta["rowids_store"]).values
            )
            if (
                delta_values.shape[0] != rows
                or delta_rowids.shape[0] != rows
                or offset < 0
                or offset + rows > values.shape[0]
                or delta_values.dtype != values.dtype
            ):
                raise StorageError(
                    f"index delta {delta['values_store']!r} does not fit its "
                    f"base arrays (offset {offset}, rows {rows})"
                )
            values[offset : offset + rows] = delta_values
            rowids[offset : offset + rows] = delta_rowids.astype(np.int64)

    # ------------------------------------------------------------------ #
    # the manifest
    # ------------------------------------------------------------------ #
    def _write_manifest(self) -> None:
        payload = {
            "format_version": MANIFEST_VERSION,
            "tables": self._tables,
            "columns": self._columns,
            "hierarchies": [
                self._hierarchies[key]
                for key in sorted(self._hierarchies, key=lambda k: (k[0], k[1] or ""))
            ],
            "indexes": [
                self._indexes[key]
                for key in sorted(self._indexes, key=lambda k: (k[0], k[1] or ""))
            ],
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)

    def _read_manifest(self) -> None:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(
                f"store manifest {self.manifest_path} is unreadable or corrupted: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise SnapshotError(f"store manifest {self.manifest_path} is not an object")
        version = payload.get("format_version")
        if version != MANIFEST_VERSION:
            raise SnapshotError(
                f"store manifest version {version!r} is not supported "
                f"(supported: {MANIFEST_VERSION})"
            )
        tables = payload.get("tables")
        columns = payload.get("columns")
        hierarchies = payload.get("hierarchies")
        # "indexes" is optional: manifests written before the adaptive
        # indexing tier simply have no cracked state to warm-start
        indexes = payload.get("indexes", [])
        if (
            not isinstance(tables, dict)
            or not isinstance(columns, dict)
            or not isinstance(hierarchies, list)
            or not isinstance(indexes, list)
        ):
            raise SnapshotError(
                f"store manifest {self.manifest_path} is missing required sections"
            )
        try:
            self._tables = {
                str(name): {
                    "num_rows": int(record["num_rows"]),
                    "columns": [
                        {
                            "name": str(spec["name"]),
                            "store_name": str(spec["store_name"]),
                            "dtype": str(spec["dtype"]),
                        }
                        for spec in record["columns"]
                    ],
                }
                for name, record in tables.items()
            }
            self._columns = {
                str(name): {
                    "store_name": str(record["store_name"]),
                    "dtype": str(record["dtype"]),
                    "num_rows": int(record["num_rows"]),
                }
                for name, record in columns.items()
            }
            self._hierarchies = {
                _hierarchy_key(str(record["object"]), record.get("column")): {
                    "object": str(record["object"]),
                    "column": record.get("column"),
                    "factor": int(record["factor"]),
                    "min_rows": int(record["min_rows"]),
                    "levels": [
                        {
                            "step": int(level["step"]),
                            "store_name": str(level["store_name"]),
                        }
                        for level in record["levels"]
                    ],
                }
                for record in hierarchies
            }
            self._indexes = {
                _hierarchy_key(str(record["object"]), record.get("column")): {
                    "object": str(record["object"]),
                    "column": record.get("column"),
                    "num_rows": int(record["num_rows"]),
                    "num_valid": int(record["num_valid"]),
                    "cracks_performed": int(record["cracks_performed"]),
                    "pivots": [float(p) for p in record["pivots"]],
                    "bounds": [int(b) for b in record["bounds"]],
                    "values_store": str(record["values_store"]),
                    "rowids_store": str(record["rowids_store"]),
                    # epoch/generation/deltas are absent from pre-delta
                    # manifests: default to a full-array record
                    "epoch": str(record.get("epoch", "")),
                    "generation": int(
                        record.get("generation", record["cracks_performed"])
                    ),
                    "deltas": [
                        {
                            "offset": int(delta["offset"]),
                            "rows": int(delta["rows"]),
                            "values_store": str(delta["values_store"]),
                            "rowids_store": str(delta["rowids_store"]),
                        }
                        for delta in record.get("deltas", [])
                    ],
                }
                for record in indexes
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"store manifest {self.manifest_path} has a malformed record: {exc}"
            ) from exc
