"""The on-disk chunked column format of the persistent storage tier.

One column lives in one file::

    +------------------+---------------------------+---------------------+
    | header (128 B)   | data: num_rows values     | zonemap: per-chunk  |
    | magic, version,  | in the column's fixed-    | min then max arrays |
    | row/chunk counts,| width dtype, contiguous   | (num_chunks values  |
    | dtype name,      | (chunk i = rows           | each, column dtype) |
    | region offsets   | [i*chunk_rows, ...))      |                     |
    +------------------+---------------------------+---------------------+

Fixed-width values and a fixed chunk size mean the chunk directory needs
no stored offsets: chunk ``i`` starts at ``data_offset + i * chunk_rows *
itemsize`` — the same Rule-of-Three arithmetic that maps touches to
rowids maps rowids to disk pages.  The data region is laid out so a
single read-only ``np.memmap`` over it *is* the column: the OS pages in
only what a gesture touches, and N serving sessions share one mapping.

The per-chunk min/max zonemap is written behind the data so statistics
survive restarts: :class:`repro.persist.paged_column.PagedColumn` answers
``min()``/``max()`` from it without faulting a single data page, and
predicate scans can skip chunks whose range cannot match.

:class:`ColumnFormat` is the codec for the header plus the layout
arithmetic; malformed, truncated or foreign-version files raise
:class:`repro.errors.PersistFormatError`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import PersistFormatError
from repro.storage.dtypes import FixedWidthType, type_from_name

#: File magic: identifies a dbTouch persistent column file.
MAGIC = b"DBTCOL01"
#: Version of the physical layout described in this module.
FORMAT_VERSION = 1
#: Fixed byte size of the header region (struct + zero padding).
HEADER_SIZE = 128
#: Default number of rows per chunk (512 KiB of int64 values).
DEFAULT_CHUNK_ROWS = 65_536

# magic, version, header size, num_rows, chunk_rows, data offset,
# stats offset, dtype name (utf-8, NUL padded)
_HEADER = struct.Struct("<8sIIQQQQ32s")


@dataclass(frozen=True)
class ColumnFormat:
    """Layout description of one on-disk column: the decoded header.

    Attributes
    ----------
    dtype_name:
        Name of the column's :class:`repro.storage.dtypes.FixedWidthType`
        (``"int64"``, ``"float64"``, ``"str12"``, ...).
    num_rows:
        Total values stored in the data region.
    chunk_rows:
        Rows per chunk; the last chunk may be shorter.
    """

    dtype_name: str
    num_rows: int
    chunk_rows: int

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise PersistFormatError("num_rows cannot be negative")
        if self.chunk_rows <= 0:
            raise PersistFormatError("chunk_rows must be positive")

    # ------------------------------------------------------------------ #
    # layout arithmetic
    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> FixedWidthType:
        """The column's fixed-width type (resolved from the stored name)."""
        return type_from_name(self.dtype_name)

    @property
    def itemsize(self) -> int:
        """Bytes per stored value."""
        return self.dtype.width_bytes

    @property
    def num_chunks(self) -> int:
        """How many chunks the data region is divided into."""
        return (self.num_rows + self.chunk_rows - 1) // self.chunk_rows

    @property
    def data_offset(self) -> int:
        """Byte offset of the data region."""
        return HEADER_SIZE

    @property
    def data_bytes(self) -> int:
        """Total bytes of the data region."""
        return self.num_rows * self.itemsize

    @property
    def stats_offset(self) -> int:
        """Byte offset of the zonemap region (min array, then max array)."""
        return self.data_offset + self.data_bytes

    @property
    def stats_bytes(self) -> int:
        """Total bytes of the zonemap region."""
        return 2 * self.num_chunks * self.itemsize

    @property
    def file_size(self) -> int:
        """Expected total file size for this layout."""
        return self.stats_offset + self.stats_bytes

    def chunk_bounds(self, index: int) -> tuple[int, int]:
        """Half-open row range ``[start, stop)`` of chunk ``index``."""
        if not 0 <= index < self.num_chunks:
            raise PersistFormatError(
                f"chunk {index} out of range; column has {self.num_chunks} chunks"
            )
        start = index * self.chunk_rows
        return start, min(self.num_rows, start + self.chunk_rows)

    def chunk_of(self, rowid: int) -> int:
        """Index of the chunk holding ``rowid``."""
        return rowid // self.chunk_rows

    # ------------------------------------------------------------------ #
    # header codec
    # ------------------------------------------------------------------ #
    def to_header(self) -> bytes:
        """Encode this layout as the fixed :data:`HEADER_SIZE`-byte header."""
        name = self.dtype_name.encode("utf-8")
        if len(name) > 32:
            raise PersistFormatError(f"dtype name too long to store: {self.dtype_name!r}")
        packed = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            HEADER_SIZE,
            self.num_rows,
            self.chunk_rows,
            self.data_offset,
            self.stats_offset,
            name,
        )
        return packed.ljust(HEADER_SIZE, b"\0")

    @classmethod
    def from_header(cls, raw: bytes) -> "ColumnFormat":
        """Decode a header; raises :class:`PersistFormatError` when invalid."""
        if len(raw) < HEADER_SIZE:
            raise PersistFormatError(
                f"truncated header: {len(raw)} bytes, expected {HEADER_SIZE}"
            )
        magic, version, header_size, num_rows, chunk_rows, data_off, stats_off, name_raw = (
            _HEADER.unpack_from(raw)
        )
        if magic != MAGIC:
            raise PersistFormatError(f"bad magic {magic!r}; not a dbTouch column file")
        if version != FORMAT_VERSION:
            raise PersistFormatError(
                f"unsupported column format version {version} (supported: {FORMAT_VERSION})"
            )
        if header_size != HEADER_SIZE:
            raise PersistFormatError(f"unexpected header size {header_size}")
        fmt = cls(
            dtype_name=name_raw.rstrip(b"\0").decode("utf-8"),
            num_rows=int(num_rows),
            chunk_rows=int(chunk_rows),
        )
        try:
            fmt.dtype
        except Exception as exc:
            raise PersistFormatError(f"unknown stored dtype {fmt.dtype_name!r}") from exc
        if data_off != fmt.data_offset or stats_off != fmt.stats_offset:
            raise PersistFormatError(
                "header offsets disagree with the declared layout "
                f"(data {data_off} != {fmt.data_offset} or stats {stats_off} != "
                f"{fmt.stats_offset})"
            )
        return fmt


def read_format(path: str | Path) -> ColumnFormat:
    """Read and validate the header of a column file (truncation-checked)."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise PersistFormatError(f"cannot read column file {path}: {exc}") from exc
    fmt = ColumnFormat.from_header(raw)
    actual = path.stat().st_size
    if actual < fmt.file_size:
        raise PersistFormatError(
            f"column file {path} is truncated: {actual} bytes, expected {fmt.file_size}"
        )
    return fmt


def chunk_min_max(values: np.ndarray) -> tuple[object, object]:
    """Min and max of one chunk, tolerating fixed-width string dtypes.

    numpy's ``min``/``max`` ufuncs have no unicode loop, so string chunks
    reduce through Python's ordering (same lexicographic result).
    """
    if values.dtype.kind in ("U", "S"):
        as_list = values.tolist()
        return min(as_list), max(as_list)
    return values.min(), values.max()


def compute_zonemap(values: np.ndarray, fmt: ColumnFormat) -> tuple[np.ndarray, np.ndarray]:
    """Per-chunk minima and maxima of ``values`` under ``fmt``'s chunking."""
    if len(values) != fmt.num_rows:
        raise PersistFormatError(
            f"zonemap input has {len(values)} rows, format declares {fmt.num_rows}"
        )
    mins = np.empty(fmt.num_chunks, dtype=values.dtype)
    maxs = np.empty(fmt.num_chunks, dtype=values.dtype)
    for index in range(fmt.num_chunks):
        start, stop = fmt.chunk_bounds(index)
        mins[index], maxs[index] = chunk_min_max(values[start:stop])
    return mins, maxs


def read_zonemap(path: str | Path, fmt: ColumnFormat) -> tuple[np.ndarray, np.ndarray]:
    """Read the (min, max) zonemap arrays from a column file."""
    np_dtype = fmt.dtype.numpy_dtype
    if fmt.num_chunks == 0:
        empty = np.empty(0, dtype=np_dtype)
        return empty, empty.copy()
    with open(path, "rb") as handle:
        handle.seek(fmt.stats_offset)
        raw = handle.read(fmt.stats_bytes)
    if len(raw) < fmt.stats_bytes:
        raise PersistFormatError(f"column file {path} has a truncated zonemap region")
    stats = np.frombuffer(raw, dtype=np_dtype)
    return stats[: fmt.num_chunks].copy(), stats[fmt.num_chunks :].copy()
