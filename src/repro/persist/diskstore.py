"""The disk column store: mmap-backed columns behind an LRU chunk cache.

:class:`DiskColumnStore` owns a directory of on-disk columns in the
:mod:`repro.persist.format` layout and hands out
:class:`repro.persist.paged_column.PagedColumn` objects over them.  Two
properties make it the serving engine's out-of-core tier:

* **One mapping per column.**  ``open_column`` memoizes the opened
  ``PagedColumn`` per name, so every session exploring a dataset reads
  through the same read-only ``np.memmap`` — the zero-copy sharing
  :meth:`repro.service.MultiSessionServer.load_shared_column` relies on.
* **A byte-budgeted chunk cache.**  All columns of one store share a
  :class:`ChunkCache`: materialized chunks are kept LRU under
  ``cache_bytes``, with hit/miss/eviction counters, so memory use is
  bounded by the budget, not by dataset size.  Hand the store the same
  :class:`repro.core.caching.MemoryBudget` as
  :class:`repro.core.kernel.KernelConfig.memory_budget` and the chunk
  cache and the kernel's touched-range cache evict against one shared
  allowance.

Writing is streaming-friendly: :meth:`DiskColumnStore.write_chunks`
consumes chunks from any iterator (the
:class:`repro.storage.loader.AdaptiveLoader` persistence path), computing
the zonemap as it goes, and commits atomically via a temp-file rename.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator
from urllib.parse import quote, unquote

import numpy as np

from repro.core.caching import MemoryBudget
from repro.errors import PersistError
from repro.persist.format import (
    DEFAULT_CHUNK_ROWS,
    ColumnFormat,
    chunk_min_max,
    read_format,
    read_zonemap,
)
from repro.persist.paged_column import PagedColumn
from repro.storage.column import Column
from repro.storage.dtypes import FixedWidthType

#: File extension of persistent column files.
COLUMN_SUFFIX = ".dbtc"
#: Distinguishes concurrent writers' temp files (same name, same process).
_TMP_COUNTER = itertools.count()
#: Default chunk-cache byte budget (64 MiB).
DEFAULT_CACHE_BYTES = 64 << 20


@dataclass
class ChunkCacheStats:
    """Hit/miss/eviction accounting for a :class:`ChunkCache`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_cached: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from resident chunks."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class ChunkCache:
    """LRU cache of materialized column chunks under a byte budget.

    Keys are ``(column_key, chunk_index)`` pairs — ``column_key`` is any
    hashable namespace (:class:`DiskColumnStore` uses ``(name,
    generation)`` tuples so a replaced column's stale chunks can never be
    served to readers of the new data); values are the materialized numpy
    chunks.  Eviction is LRU by bytes: inserting past
    ``capacity_bytes`` drops least-recently-used chunks until the budget
    holds again (a single chunk larger than the whole budget is admitted
    alone rather than rejected, so serving stays correct).  With a shared
    :class:`repro.core.caching.MemoryBudget` attached, every residency
    change is charged/released against it, and the budget may reclaim
    chunks when its *other* participants (the kernel touch cache) need
    room.

    One chunk cache is shared by every session of a
    :class:`repro.service.MultiSessionServer` exploring the same store,
    and those sessions execute on parallel scheduler workers — so all
    state lives under an internal lock.  Budget calls are made only while
    that lock is *not* held (the deadlock-freedom rule documented on
    :class:`repro.core.caching.MemoryBudget`).
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        budget: MemoryBudget | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise PersistError("chunk cache capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.stats = ChunkCacheStats()
        self._lock = threading.RLock()
        self._chunks: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._budget = budget
        self._budget_key = f"chunk-cache-{id(self):x}"
        if budget is not None:
            budget.register(self._budget_key, self._reclaim_bytes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._chunks)

    @property
    def current_bytes(self) -> int:
        """Bytes of chunk data currently resident."""
        return self.stats.bytes_cached

    def get(self, column_key, chunk_index: int) -> np.ndarray | None:
        """Return a resident chunk (refreshing its recency), or ``None``."""
        key = (column_key, chunk_index)
        with self._lock:
            chunk = self._chunks.get(key)
            if chunk is not None:
                self._chunks.move_to_end(key)
                self.stats.hits += 1
                return chunk
            self.stats.misses += 1
            return None

    def put(self, column_key, chunk_index: int, chunk: np.ndarray) -> None:
        """Insert a materialized chunk, evicting LRU chunks past the budget."""
        key = (column_key, chunk_index)
        nbytes = int(chunk.nbytes)
        if self._budget is not None:
            # charge BEFORE inserting: a concurrent invalidate/clear that
            # removes the chunk right after insertion releases bytes that
            # must already be on the books, or usage drifts upward forever
            self._budget.charge(self._budget_key, nbytes)
        with self._lock:
            # two workers may race to materialize the same chunk; the
            # second insert replaces the first (a swap, not an eviction)
            replaced = self._remove_locked(key) if key in self._chunks else 0
            self._chunks[key] = chunk
            self.stats.insertions += 1
            self.stats.bytes_cached += nbytes
        if replaced and self._budget is not None:
            self._budget.release(self._budget_key, replaced)
        freed = 0
        with self._lock:
            while self.stats.bytes_cached > self.capacity_bytes and len(self._chunks) > 1:
                freed += self._evict_lru_locked()
        if freed and self._budget is not None:
            self._budget.release(self._budget_key, freed)

    def _remove_locked(self, key: tuple) -> int:
        chunk = self._chunks.pop(key)
        self.stats.bytes_cached -= int(chunk.nbytes)
        return int(chunk.nbytes)

    def _evict_lru_locked(self) -> int:
        key = next(iter(self._chunks))
        freed = self._remove_locked(key)
        self.stats.evictions += 1
        return freed

    def _reclaim_bytes(self, nbytes: int) -> int:
        """Shared-budget eviction hook (the budget adjusts accounting)."""
        freed = 0
        with self._lock:
            while freed < nbytes and len(self._chunks) > 1:
                freed += self._evict_lru_locked()
        return freed

    def invalidate_column(self, column_key) -> int:
        """Drop every resident chunk of one column; returns bytes freed."""
        with self._lock:
            doomed = [key for key in self._chunks if key[0] == column_key]
            freed = sum(self._remove_locked(key) for key in doomed)
        if self._budget is not None and freed:
            self._budget.release(self._budget_key, freed)
        return freed

    def clear(self) -> None:
        """Drop every resident chunk and reset statistics."""
        with self._lock:
            freed = self.stats.bytes_cached
            self._chunks.clear()
            self.stats = ChunkCacheStats()
        if self._budget is not None and freed:
            self._budget.release(self._budget_key, freed)


class DiskColumnStore:
    """A directory of persistent columns served through one chunk cache.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).  Column files
        live under ``<root>/columns/``; the snapshot manifest of
        :class:`repro.persist.snapshot.StoreCatalog` sits next to them.
    cache_bytes:
        Byte budget of the shared :class:`ChunkCache`.
    budget:
        Optional :class:`repro.core.caching.MemoryBudget` shared with the
        kernel's touch cache (see :mod:`repro.persist.diskstore` docs).
    """

    def __init__(
        self,
        root: str | Path,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        budget: MemoryBudget | None = None,
    ) -> None:
        self.root = Path(root)
        self._columns_dir = self.root / "columns"
        self._columns_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ChunkCache(cache_bytes, budget=budget)
        # open_column/_forget run concurrently (gesture workers vs the
        # background materialization lane); the lock keeps the
        # one-mapping-per-column contract, and the per-name generation
        # keeps a replaced column's stale chunks out of new readers
        self._lock = threading.RLock()
        self._open_columns: dict[str, PagedColumn] = {}
        self._generations: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # naming
    # ------------------------------------------------------------------ #
    def column_path(self, name: str) -> Path:
        """The on-disk path of column ``name`` (name-safe quoted)."""
        return self._columns_dir / (quote(name, safe="") + COLUMN_SUFFIX)

    def has_column(self, name: str) -> bool:
        """Whether a column named ``name`` is stored."""
        return self.column_path(name).is_file()

    @property
    def column_names(self) -> list[str]:
        """Names of every stored column."""
        return sorted(
            unquote(path.name[: -len(COLUMN_SUFFIX)])
            for path in self._columns_dir.glob(f"*{COLUMN_SUFFIX}")
        )

    def on_disk_bytes(self, name: str | None = None) -> int:
        """Total stored bytes of one column (or of the whole store)."""
        if name is not None:
            return self.column_path(name).stat().st_size
        return sum(
            path.stat().st_size for path in self._columns_dir.glob(f"*{COLUMN_SUFFIX}")
        )

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def write_column(
        self,
        column: Column,
        name: str | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        replace: bool = False,
    ) -> Path:
        """Persist a column's values; returns the file written.

        ``name`` defaults to the column's own name.  Writing an existing
        name requires ``replace`` and drops the stale mapping and chunks.
        """
        target = name if name is not None else column.name
        values = column.values

        def chunks() -> Iterator[np.ndarray]:
            for start in range(0, len(values), chunk_rows):
                yield values[start : start + chunk_rows]

        return self.write_chunks(
            target,
            column.dtype,
            len(column),
            chunks(),
            chunk_rows=chunk_rows,
            replace=replace,
        )

    def write_chunks(
        self,
        name: str,
        dtype: FixedWidthType,
        num_rows: int,
        chunks: Iterable[np.ndarray],
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        replace: bool = False,
    ) -> Path:
        """Stream a column to disk chunk by chunk (the adaptive-load path).

        ``chunks`` must yield ``ceil(num_rows / chunk_rows)`` arrays of
        exactly ``chunk_rows`` values each (last one shorter); the zonemap
        is computed on the fly so the column is never fully resident.  The
        file appears atomically (temp file + rename).
        """
        path = self.column_path(name)
        if path.exists() and not replace:
            raise PersistError(f"column {name!r} already stored; pass replace=True")
        fmt = ColumnFormat(
            dtype_name=dtype.name, num_rows=int(num_rows), chunk_rows=int(chunk_rows)
        )
        mins: list = []
        maxs: list = []
        # per-writer temp file: concurrent writers of one name must not
        # interleave into a shared tmp — each commits atomically, last
        # os.replace wins with a complete file
        tmp = path.with_suffix(f"{path.suffix}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
        written = 0
        try:
            with open(tmp, "wb") as handle:
                handle.write(fmt.to_header())
                for chunk in chunks:
                    source = np.asarray(chunk)
                    # strings demand "safe" (a narrowing U-cast silently
                    # truncates); numerics use "same_kind" so int chunks
                    # may land in a float column but never the reverse
                    casting = "safe" if source.dtype.kind in ("U", "S") else "same_kind"
                    if source.size and not np.can_cast(
                        source.dtype, dtype.numpy_dtype, casting=casting
                    ):
                        raise PersistError(
                            f"chunk of dtype {source.dtype} cannot be stored "
                            f"losslessly in column {name!r} of type {dtype.name}"
                        )
                    arr = dtype.cast(source)
                    if arr.ndim != 1:
                        raise PersistError(
                            f"chunk for column {name!r} must be 1-D, got shape {arr.shape}"
                        )
                    expected = min(chunk_rows, num_rows - written)
                    if len(arr) != expected:
                        raise PersistError(
                            f"chunk for column {name!r} has {len(arr)} rows, "
                            f"expected {expected}"
                        )
                    handle.write(np.ascontiguousarray(arr).tobytes())
                    if len(arr):
                        low, high = chunk_min_max(arr)
                        mins.append(low)
                        maxs.append(high)
                    written += len(arr)
                if written != num_rows:
                    raise PersistError(
                        f"column {name!r} received {written} rows, declared {num_rows}"
                    )
                np_dtype = dtype.numpy_dtype
                handle.write(np.asarray(mins, dtype=np_dtype).tobytes())
                handle.write(np.asarray(maxs, dtype=np_dtype).tobytes())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._forget(name)
        return path

    # ------------------------------------------------------------------ #
    # opening
    # ------------------------------------------------------------------ #
    def open_column(self, name: str, as_name: str | None = None) -> PagedColumn:
        """Open a stored column as a :class:`PagedColumn` (memoized).

        Every caller of the same ``name`` receives the same object, hence
        the same read-only memmap — the zero-copy sharing contract.
        ``as_name`` renames the returned column (e.g. a table-qualified
        store name back to its attribute name) without re-mapping.
        """
        with self._lock:
            if name not in self._open_columns:
                path = self.column_path(name)
                if not path.is_file():
                    raise PersistError(
                        f"no stored column named {name!r}; stored: {self.column_names}"
                    )
                fmt = read_format(path)
                if fmt.num_rows:
                    data = np.memmap(
                        path,
                        mode="r",
                        dtype=fmt.dtype.numpy_dtype,
                        offset=fmt.data_offset,
                        shape=(fmt.num_rows,),
                    )
                else:
                    data = np.empty(0, dtype=fmt.dtype.numpy_dtype)
                mins, maxs = read_zonemap(path, fmt)
                self._open_columns[name] = PagedColumn(
                    name=name,
                    data=data,
                    fmt=fmt,
                    cache=self.cache,
                    cache_key=(name, self._generations.get(name, 0)),
                    chunk_mins=mins,
                    chunk_maxs=maxs,
                )
            column = self._open_columns[name]
        if as_name is not None and as_name != column.name:
            column.name = as_name
        return column

    def delete_column(self, name: str) -> None:
        """Remove a stored column file and its resident chunks."""
        path = self.column_path(name)
        if not path.is_file():
            raise PersistError(f"no stored column named {name!r}")
        self._forget(name)
        path.unlink()

    def _forget(self, name: str) -> None:
        """Retire a column's mapping after its file was (re)written.

        The generation bump gives the next ``open_column`` a fresh chunk
        namespace: a reader still holding the old :class:`PagedColumn`
        keeps its consistent pre-replace view (POSIX keeps the unlinked
        mapping alive), and its in-flight chunk inserts can never be
        served to readers of the new data.
        """
        with self._lock:
            generation = self._generations.get(name, 0)
            self._generations[name] = generation + 1
            self._open_columns.pop(name, None)
        self.cache.invalidate_column((name, generation))
