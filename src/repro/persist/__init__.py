"""Out-of-core persistent storage: mmap-backed columns, snapshots, budgets.

Everything in :mod:`repro.storage` lives in process RAM; this subpackage
is the durable tier beneath it, built for the paper's core access
pattern — gestures touch only the data under the finger, which is exactly
what an out-of-core store exploits:

* :mod:`repro.persist.format` — the chunked on-disk column layout: fixed
  header, contiguous fixed-width data region (the chunk directory is pure
  arithmetic), per-chunk min/max zonemap;
* :mod:`repro.persist.diskstore` — :class:`DiskColumnStore` writing and
  mapping those files, with one byte-budgeted LRU :class:`ChunkCache`
  shared by all of a store's columns (optionally sharing a
  :class:`repro.core.caching.MemoryBudget` with the kernel touch cache);
* :mod:`repro.persist.paged_column` — :class:`PagedColumn`, the
  ``Column`` read surface over a read-only memmap with chunk-granular
  faulting, so every existing kernel/service layer explores
  larger-than-memory data unchanged and bit-identically;
* :mod:`repro.persist.snapshot` — :class:`StoreCatalog`, the versioned
  JSON manifest snapshotting table schemas *and* materialized sample
  hierarchies for near-instant warm cold-starts;
* :mod:`repro.persist.background` — :class:`BackgroundMaterializer`,
  building hierarchies on the gesture scheduler's background lane so
  ingest never blocks gesture traffic.

>>> import tempfile
>>> from repro import Column, DiskColumnStore, StoreCatalog
>>> store = DiskColumnStore(tempfile.mkdtemp(), cache_bytes=1 << 20)
>>> catalog = StoreCatalog(store)
>>> catalog.persist_column(Column("m", range(100_000)))
>>> reopened = catalog.load_column("m")        # mmap, no data read yet
>>> int(reopened.value_at(42_000))             # faults in one chunk
42000
"""

from repro.persist.background import BackgroundMaterializer
from repro.persist.diskstore import (
    DEFAULT_CACHE_BYTES,
    ChunkCache,
    ChunkCacheStats,
    DiskColumnStore,
)
from repro.persist.format import DEFAULT_CHUNK_ROWS, ColumnFormat, read_format
from repro.persist.paged_column import PagedColumn
from repro.persist.snapshot import StoreCatalog

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CHUNK_ROWS",
    "BackgroundMaterializer",
    "ChunkCache",
    "ChunkCacheStats",
    "ColumnFormat",
    "DiskColumnStore",
    "PagedColumn",
    "StoreCatalog",
    "read_format",
]
