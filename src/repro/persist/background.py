"""Background materialization of sample levels for persisted objects.

Ingesting a large dataset wants to return control to the user immediately
— dbTouch's "no initialization before you can touch" promise — but the
sample hierarchies that make coarse gestures cheap still have to be built
and snapshotted at some point.  :class:`BackgroundMaterializer` defers
exactly that: tables and columns are persisted *without* hierarchies
(``hierarchies=False``), exploration starts at base granularity right
away, and the hierarchy build + snapshot runs on the
:data:`repro.core.scheduler.BACKGROUND_LANE` of a
:class:`repro.core.scheduler.GestureScheduler`, where it can occupy at
most one worker while gesture traffic keeps flowing on the others.

Without a scheduler the same work runs synchronously (the futures are
returned already resolved), so tooling and tests share one code path.
"""

from __future__ import annotations

from concurrent.futures import Future

from repro.core.scheduler import GestureScheduler
from repro.persist.snapshot import StoreCatalog


class BackgroundMaterializer:
    """Build + snapshot sample hierarchies without blocking gestures.

    Parameters
    ----------
    catalog:
        The snapshot catalog whose persisted objects get hierarchies.
    scheduler:
        The serving engine's scheduler; its background lane executes the
        builds.  ``None`` runs each build synchronously on the caller.
    """

    def __init__(
        self, catalog: StoreCatalog, scheduler: GestureScheduler | None = None
    ) -> None:
        self.catalog = catalog
        self.scheduler = scheduler

    def _run(self, work) -> Future:
        if self.scheduler is not None:
            return self.scheduler.submit_background(work)
        future: Future = Future()
        try:
            future.set_result(work())
        except Exception as exc:  # delivered through the future, like the lane
            future.set_exception(exc)
        return future

    def schedule_column(
        self,
        object_name: str,
        column_name: str | None = None,
        factor: int = 4,
        min_rows: int = 64,
    ) -> Future:
        """Queue one column's hierarchy build; resolves to its level steps."""
        return self._run(
            lambda: self.catalog.persist_hierarchy(
                object_name, column_name, factor=factor, min_rows=min_rows
            )
        )

    def schedule_table(
        self, table_name: str, factor: int = 4, min_rows: int = 64
    ) -> dict[str, Future]:
        """Queue hierarchy builds for every attribute of a persisted table.

        Returns one future per attribute name; non-numeric attributes
        resolve to an empty step list (nothing to materialize).
        """
        return {
            column_name: self.schedule_column(
                table_name, column_name, factor=factor, min_rows=min_rows
            )
            for column_name in self.catalog.table_column_names(table_name)
        }
