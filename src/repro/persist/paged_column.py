"""Paged columns: the ``Column`` read surface over an mmap-backed file.

A :class:`PagedColumn` satisfies everything the kernel expects of a
:class:`repro.storage.column.Column` — ``values``, ``value_at``,
``slice``, ``gather``, ``read_batch``, ``take_every``, statistics — while
its data lives on disk:

* :attr:`values` is a *read-only* ``np.memmap`` over the file's data
  region.  Touching it faults in only the pages actually read, and every
  session opening the same column through one
  :class:`repro.persist.diskstore.DiskColumnStore` shares the single
  mapping — N users over one dataset cost one copy of nothing.
* The scalar/batched read methods route through the store's
  :class:`repro.persist.diskstore.ChunkCache` at *chunk* granularity:
  the chunk under the finger is materialized once, revisits are cache
  hits, and the cache's byte budget bounds how much of the column is ever
  resident regardless of on-disk size.
* ``min()``/``max()`` answer from the persisted per-chunk zonemap without
  faulting any data page, and :meth:`chunk_range` exposes the zonemap so
  scans can skip chunks whose ``[min, max]`` cannot satisfy a predicate.

Because a ``PagedColumn`` *is* a ``Column``, everything downstream —
catalogs, sample hierarchies, the batch slide executor, gesture services,
the multi-session server — explores out-of-core data unchanged, with
bit-identical gesture outcomes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.errors import StorageError
from repro.persist.format import ColumnFormat, chunk_min_max
from repro.storage.column import Column

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.persist.diskstore import ChunkCache


class PagedColumn(Column):
    """A named, typed column whose values are faulted in chunk by chunk.

    Built by :meth:`repro.persist.diskstore.DiskColumnStore.open_column`;
    not constructed directly.  ``data`` is the read-only memmap (or a
    plain array for zero-row columns), ``fmt`` the decoded
    :class:`repro.persist.format.ColumnFormat`, ``cache`` the store's
    shared chunk cache and ``cache_key`` the column's namespace within it;
    ``chunk_mins``/``chunk_maxs`` are the persisted zonemap arrays.
    """

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        fmt: ColumnFormat,
        cache: "ChunkCache",
        cache_key: Hashable,
        chunk_mins: np.ndarray,
        chunk_maxs: np.ndarray,
    ) -> None:
        self.name = name
        self.dtype = fmt.dtype
        self._data = data
        self._format = fmt
        self._cache = cache
        self._cache_key = cache_key
        self._chunk_mins = chunk_mins
        self._chunk_maxs = chunk_maxs
        self._touched_chunks: set[int] = set()

    # ------------------------------------------------------------------ #
    # chunk plumbing
    # ------------------------------------------------------------------ #
    @property
    def format(self) -> ColumnFormat:
        """The on-disk layout this column is served from."""
        return self._format

    @property
    def num_chunks(self) -> int:
        """How many chunks the column is divided into."""
        return self._format.num_chunks

    @property
    def chunk_rows(self) -> int:
        """Rows per chunk (the last chunk may be shorter)."""
        return self._format.chunk_rows

    @property
    def chunks_touched(self) -> int:
        """Distinct chunks this column has ever faulted in."""
        return len(self._touched_chunks)

    @property
    def fraction_chunks_touched(self) -> float:
        """Fraction of the column's chunks ever faulted in."""
        total = self.num_chunks
        return (len(self._touched_chunks) / total) if total else 1.0

    def chunk_range(self, index: int) -> tuple[object, object]:
        """The persisted zonemap ``(min, max)`` of chunk ``index``."""
        if not 0 <= index < self.num_chunks:
            raise StorageError(
                f"chunk {index} out of range for column {self.name!r} "
                f"with {self.num_chunks} chunks"
            )
        return self._chunk_mins[index], self._chunk_maxs[index]

    def chunks_for_predicate(self, low, high) -> list[int]:
        """Chunk indices whose ``[min, max]`` overlaps ``[low, high]``.

        The zonemap pruning primitive: a select-where over a paged column
        need only fault in the chunks this returns.  Exclusion-form so it
        is conservative under NaN: a float chunk containing NaN has NaN
        zonemap bounds, every comparison on which is False — such a chunk
        is therefore *included*, never wrongly pruned.
        """
        excluded = (self._chunk_maxs < low) | (self._chunk_mins > high)
        return np.nonzero(~excluded)[0].tolist()

    def _chunk(self, index: int) -> np.ndarray:
        """Return chunk ``index``, faulting it into the chunk cache."""
        cached = self._cache.get(self._cache_key, index)
        if cached is not None:
            return cached
        start, stop = self._format.chunk_bounds(index)
        chunk = np.array(self._data[start:stop])
        self._cache.put(self._cache_key, index, chunk)
        self._touched_chunks.add(index)
        return chunk

    # ------------------------------------------------------------------ #
    # the Column read surface, chunk-granular
    # ------------------------------------------------------------------ #
    def value_at(self, rowid: int):
        """Return the value at ``rowid``, faulting in only its chunk."""
        if not 0 <= rowid < len(self):
            raise StorageError(
                f"rowid {rowid} out of range for column {self.name!r} of length {len(self)}"
            )
        index = self._format.chunk_of(rowid)
        chunk = self._chunk(index)
        return chunk[rowid - index * self.chunk_rows]

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Values in ``[start, stop)``, assembled from the touched chunks."""
        start = max(0, int(start))
        stop = min(len(self), int(stop))
        if stop <= start:
            return self._data[:0]
        first = self._format.chunk_of(start)
        last = self._format.chunk_of(stop - 1)
        parts = []
        for index in range(first, last + 1):
            chunk_start = index * self.chunk_rows
            chunk = self._chunk(index)
            lo = max(0, start - chunk_start)
            hi = min(len(chunk), stop - chunk_start)
            parts.append(chunk[lo:hi])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def read_batch(self, rowids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Gather rowids with one chunk fault per distinct touched chunk."""
        idx = np.asarray(rowids, dtype=np.int64)
        out = np.empty(idx.size, dtype=self._data.dtype)
        if not idx.size:
            return out
        chunk_ids = idx // self.chunk_rows
        for index in np.unique(chunk_ids):
            mask = chunk_ids == index
            chunk = self._chunk(int(index))
            out[mask] = chunk[idx[mask] - int(index) * self.chunk_rows]
        return out

    def gather(self, rowids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Bounds-checked :meth:`read_batch` (the ``Column.gather`` contract)."""
        idx = np.asarray(rowids, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self)):
            raise StorageError(
                f"rowids out of range for column {self.name!r} of length {len(self)}"
            )
        return self.read_batch(idx)

    def head(self, n: int = 10) -> np.ndarray:
        """First ``n`` values, served through the chunk cache."""
        return self.slice(0, max(0, n))

    # ------------------------------------------------------------------ #
    # statistics from the zonemap (no data pages faulted)
    # ------------------------------------------------------------------ #
    def min(self):
        """Column minimum, answered from the persisted zonemap."""
        if not len(self):
            return None
        return chunk_min_max(self._chunk_mins)[0]

    def max(self):
        """Column maximum, answered from the persisted zonemap."""
        if not len(self):
            return None
        return chunk_min_max(self._chunk_maxs)[1]
