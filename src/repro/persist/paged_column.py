"""Paged columns: the ``Column`` read surface over an mmap-backed file.

A :class:`PagedColumn` satisfies everything the kernel expects of a
:class:`repro.storage.column.Column` — ``values``, ``value_at``,
``slice``, ``gather``, ``read_batch``, ``take_every``, statistics — while
its data lives on disk:

* :attr:`values` is a *read-only* ``np.memmap`` over the file's data
  region.  Touching it faults in only the pages actually read, and every
  session opening the same column through one
  :class:`repro.persist.diskstore.DiskColumnStore` shares the single
  mapping — N users over one dataset cost one copy of nothing.
* The scalar/batched read methods route through the store's
  :class:`repro.persist.diskstore.ChunkCache` at *chunk* granularity:
  the chunk under the finger is materialized once, revisits are cache
  hits, and the cache's byte budget bounds how much of the column is ever
  resident regardless of on-disk size.
* ``min()``/``max()`` answer from the persisted per-chunk zonemap without
  faulting any data page, and :meth:`chunk_range` exposes the zonemap so
  scans can skip chunks whose ``[min, max]`` cannot satisfy a predicate.

Because a ``PagedColumn`` *is* a ``Column``, everything downstream —
catalogs, sample hierarchies, the batch slide executor, gesture services,
the multi-session server — explores out-of-core data unchanged, with
bit-identical gesture outcomes.

**Live appends.**  The on-disk file is immutable, so
:meth:`append_batch` lands rows in an in-memory *tail* buffer behind the
memmap.  The whole read surface is tail-aware (``values`` concatenates,
``slice``/``read_batch``/``value_at`` assemble across the boundary) and
the chunk surface extends logically: the tail's rows belong to logical
chunks past (or straddling) the disk chunks, with zone envelopes
maintained incrementally on every append — the straddling chunk's
envelope is the union of its persisted disk zone and its tail rows, so
no data page is faulted to keep pruning exact.  The tail stays hot until
:meth:`repro.persist.snapshot.StoreCatalog.compact_column` folds it into
the chunked file and reopens the column tail-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.errors import StorageError
from repro.obs.trace import trace_span
from repro.persist.format import ColumnFormat, chunk_min_max
from repro.storage.column import Column

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.persist.diskstore import ChunkCache


class PagedColumn(Column):
    """A named, typed column whose values are faulted in chunk by chunk.

    Built by :meth:`repro.persist.diskstore.DiskColumnStore.open_column`;
    not constructed directly.  ``data`` is the read-only memmap (or a
    plain array for zero-row columns), ``fmt`` the decoded
    :class:`repro.persist.format.ColumnFormat`, ``cache`` the store's
    shared chunk cache and ``cache_key`` the column's namespace within it;
    ``chunk_mins``/``chunk_maxs`` are the persisted zonemap arrays.
    """

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        fmt: ColumnFormat,
        cache: "ChunkCache",
        cache_key: Hashable,
        chunk_mins: np.ndarray,
        chunk_maxs: np.ndarray,
    ) -> None:
        self.name = name
        self.dtype = fmt.dtype
        self._data = data
        self._format = fmt
        self._cache = cache
        self._cache_key = cache_key
        self._chunk_mins = chunk_mins
        self._chunk_maxs = chunk_maxs
        self._touched_chunks: set[int] = set()
        # live-append tail: rows past the immutable memmap.  The zone
        # arrays start as the persisted ones and are extended per append.
        self._tail = np.empty(0, dtype=data.dtype)
        self._zone_mins = chunk_mins
        self._zone_maxs = chunk_maxs
        self._values_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # basic protocol, tail-aware
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._data.shape[0]) + int(self._tail.shape[0])

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, item):
        return self.values[item]

    @property
    def base_rows(self) -> int:
        """Rows in the immutable on-disk region (the memmap)."""
        return int(self._data.shape[0])

    @property
    def tail_rows(self) -> int:
        """Rows appended since the column was opened (in-memory tail)."""
        return int(self._tail.shape[0])

    @property
    def values(self) -> np.ndarray:
        """The full logical column.

        Without a tail this is the zero-copy read-only memmap.  With one,
        the memmap and tail are concatenated (cached until the next
        append) — a transient materialization that compaction removes.
        """
        if not self._tail.shape[0]:
            return self._data
        cached = self._values_cache
        if cached is not None and cached.shape[0] == len(self):
            return cached
        joined = np.concatenate([np.asarray(self._data), self._tail])
        self._values_cache = joined
        return joined

    def append_batch(self, values) -> int:
        """Append values to the in-memory tail; returns the new length.

        The on-disk file is untouched; the logical chunk surface and zone
        envelopes extend incrementally (only chunks containing tail rows
        are recomputed, and the straddling chunk's envelope unions its
        persisted zone with the new rows — no disk reads).
        """
        tail = self._cast_append_values(values)
        if tail.size == 0:
            return len(self)
        self._tail = (
            np.concatenate([self._tail, tail]) if self._tail.shape[0] else tail
        )
        self._extend_zones()
        return len(self)

    def _extend_zones(self) -> None:
        """Recompute zone envelopes for the logical chunks the tail spans."""
        chunk_rows = self.chunk_rows
        base = self.base_rows
        n = len(self)
        first = base // chunk_rows
        total = -(-n // chunk_rows)
        mins = list(self._chunk_mins[:first])
        maxs = list(self._chunk_maxs[:first])
        for index in range(first, total):
            start = index * chunk_rows
            stop = min(n, start + chunk_rows)
            part = self._tail[max(0, start - base) : stop - base]
            # NaN tails poison the envelope on purpose: an unknown zone is
            # never pruned (np.minimum/maximum propagate NaN)
            lo, hi = part.min(), part.max()
            if start < base:
                lo = np.minimum(lo, self._chunk_mins[index])
                hi = np.maximum(hi, self._chunk_maxs[index])
            mins.append(lo)
            maxs.append(hi)
        self._zone_mins = np.asarray(mins)
        self._zone_maxs = np.asarray(maxs)

    # ------------------------------------------------------------------ #
    # chunk plumbing
    # ------------------------------------------------------------------ #
    @property
    def format(self) -> ColumnFormat:
        """The on-disk layout this column is served from."""
        return self._format

    @property
    def num_chunks(self) -> int:
        """How many logical chunks the column spans (tail included)."""
        if not self._tail.shape[0]:
            return self._format.num_chunks
        return -(-len(self) // self.chunk_rows)

    @property
    def chunk_rows(self) -> int:
        """Rows per chunk (the last chunk may be shorter)."""
        return self._format.chunk_rows

    @property
    def chunks_touched(self) -> int:
        """Distinct chunks this column has ever faulted in."""
        return len(self._touched_chunks)

    @property
    def fraction_chunks_touched(self) -> float:
        """Fraction of the column's chunks ever faulted in."""
        total = self.num_chunks
        return (len(self._touched_chunks) / total) if total else 1.0

    def chunk_range(self, index: int) -> tuple[object, object]:
        """The zonemap ``(min, max)`` of logical chunk ``index``.

        Persisted zones for on-disk chunks; incrementally maintained ones
        for chunks holding (or straddling into) appended tail rows.
        """
        if not 0 <= index < self.num_chunks:
            raise StorageError(
                f"chunk {index} out of range for column {self.name!r} "
                f"with {self.num_chunks} chunks"
            )
        return self._zone_mins[index], self._zone_maxs[index]

    def chunks_for_predicate(self, low, high) -> list[int]:
        """Chunk indices whose ``[min, max]`` overlaps ``[low, high]``.

        The zonemap pruning primitive: a select-where over a paged column
        need only fault in the chunks this returns.  Exclusion-form so it
        is conservative under NaN: a float chunk containing NaN has NaN
        zonemap bounds, every comparison on which is False — such a chunk
        is therefore *included*, never wrongly pruned.  Appended tail rows
        participate through their incrementally extended zones.
        """
        excluded = (self._zone_maxs < low) | (self._zone_mins > high)
        return np.nonzero(~excluded)[0].tolist()

    def _chunk(self, index: int) -> np.ndarray:
        """Return logical chunk ``index``, faulting it into the chunk cache.

        Chunks containing appended tail rows are assembled on the fly and
        *not* cached — the tail grows under the cache's feet, and
        compaction (which reopens the column tail-free) restores cached
        service for them.
        """
        base = self.base_rows
        start = index * self.chunk_rows
        stop = min(len(self), start + self.chunk_rows)
        if stop <= base:
            cached = self._cache.get(self._cache_key, index)
            if cached is not None:
                return cached
            # a miss materializes the chunk from the mapped file: the one
            # disk-shaped step of the read path, so it gets its own span
            with trace_span("chunk_fault", column=self.name, chunk=index):
                chunk = np.array(self._data[start:stop])
                self._cache.put(self._cache_key, index, chunk)
            self._touched_chunks.add(index)
            return chunk
        tail_part = self._tail[max(0, start - base) : stop - base]
        if start >= base:
            return tail_part
        self._touched_chunks.add(index)
        return np.concatenate([np.asarray(self._data[start:base]), tail_part])

    # ------------------------------------------------------------------ #
    # the Column read surface, chunk-granular
    # ------------------------------------------------------------------ #
    def value_at(self, rowid: int):
        """Return the value at ``rowid``, faulting in only its chunk."""
        if not 0 <= rowid < len(self):
            raise StorageError(
                f"rowid {rowid} out of range for column {self.name!r} of length {len(self)}"
            )
        base = self.base_rows
        if rowid >= base:
            return self._tail[rowid - base]
        index = rowid // self.chunk_rows
        chunk = self._chunk(index)
        return chunk[rowid - index * self.chunk_rows]

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Values in ``[start, stop)``, assembled from the touched chunks."""
        start = max(0, int(start))
        stop = min(len(self), int(stop))
        if stop <= start:
            return self._data[:0]
        first = start // self.chunk_rows
        last = (stop - 1) // self.chunk_rows
        parts = []
        for index in range(first, last + 1):
            chunk_start = index * self.chunk_rows
            chunk = self._chunk(index)
            lo = max(0, start - chunk_start)
            hi = min(len(chunk), stop - chunk_start)
            parts.append(chunk[lo:hi])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def raw_slice(self, start: int, stop: int) -> np.ndarray:
        """Values in ``[start, stop)`` straight off the memmap and tail.

        Bypasses the budget-charging chunk cache entirely, which makes it
        safe to call while index-tier column locks are held (the budget
        must never be charged under one — see the paged-cracker module
        docstring).  Pure-tail ranges cost no I/O at all.
        """
        start = max(0, int(start))
        stop = min(len(self), int(stop))
        if stop <= start:
            return self._data[:0]
        base = self.base_rows
        if start >= base:
            return self._tail[start - base : stop - base]
        if stop <= base:
            return self._data[start:stop]
        return np.concatenate(
            [np.asarray(self._data[start:base]), self._tail[: stop - base]]
        )

    def read_batch(self, rowids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Gather rowids with one chunk fault per distinct touched chunk."""
        idx = np.asarray(rowids, dtype=np.int64)
        out = np.empty(idx.size, dtype=self._data.dtype)
        if not idx.size:
            return out
        chunk_ids = idx // self.chunk_rows
        for index in np.unique(chunk_ids):
            mask = chunk_ids == index
            chunk = self._chunk(int(index))
            out[mask] = chunk[idx[mask] - int(index) * self.chunk_rows]
        return out

    def gather(self, rowids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Bounds-checked :meth:`read_batch` (the ``Column.gather`` contract)."""
        idx = np.asarray(rowids, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self)):
            raise StorageError(
                f"rowids out of range for column {self.name!r} of length {len(self)}"
            )
        return self.read_batch(idx)

    def head(self, n: int = 10) -> np.ndarray:
        """First ``n`` values, served through the chunk cache."""
        return self.slice(0, max(0, n))

    # ------------------------------------------------------------------ #
    # statistics from the zonemap (no data pages faulted)
    # ------------------------------------------------------------------ #
    def min(self):
        """Column minimum, answered from the (tail-extended) zonemap."""
        if not len(self):
            return None
        return chunk_min_max(self._zone_mins)[0]

    def max(self):
        """Column maximum, answered from the (tail-extended) zonemap."""
        if not len(self):
            return None
        return chunk_min_max(self._zone_maxs)[1]

    def mean(self) -> float | None:
        """Arithmetic mean over memmap and appended tail alike."""
        if not len(self) or not self.is_numeric:
            return None
        return float(self.values.mean())

    def std(self) -> float | None:
        """Population standard deviation over memmap and appended tail."""
        if not len(self) or not self.is_numeric:
            return None
        return float(self.values.std())

    def take_every(self, step: int, name_suffix: str = "") -> Column:
        """Strided sample over the full logical column (tail included)."""
        if step <= 0:
            raise StorageError("sampling step must be positive")
        return Column(self.name + name_suffix, self.values[::step], dtype=self.dtype)
