"""Text rendering of the dbTouch screen and its fading results.

The original prototype draws coloured rectangles on an iPad; this renderer
produces the terminal equivalent: a character grid with one box per data
object, labels underneath, and — during a slide — the result values that
are currently visible, shaded by how far they have faded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VisualizationError
from repro.core.result_stream import ResultStream
from repro.viz.objects import DataObjectShape

#: Characters used to shade fading results, from freshest to nearly gone.
FADE_RAMP = ("█", "▓", "▒", "░")


@dataclass(frozen=True)
class RenderConfig:
    """Geometry of the text rendering."""

    chars_per_cm: float = 2.0
    max_width_chars: int = 100
    max_height_chars: int = 36

    def __post_init__(self) -> None:
        if self.chars_per_cm <= 0:
            raise VisualizationError("chars_per_cm must be positive")
        if self.max_width_chars < 10 or self.max_height_chars < 5:
            raise VisualizationError("render area is too small to draw anything")


def _scaled(size_cm: float, config: RenderConfig, limit: int) -> int:
    return max(3, min(limit, int(round(size_cm * config.chars_per_cm))))


def render_object(shape: DataObjectShape, config: RenderConfig | None = None) -> str:
    """Render one data object as a bordered box with its label underneath."""
    config = config if config is not None else RenderConfig()
    width = _scaled(shape.width_cm, config, config.max_width_chars)
    height = _scaled(shape.height_cm, config, config.max_height_chars)
    top = "+" + "-" * (width - 2) + "+"
    middle = "|" + " " * (width - 2) + "|"
    lines = [top] + [middle] * (height - 2) + [top]
    lines.append(shape.label)
    return "\n".join(lines)


def render_screen(shapes: list[DataObjectShape], config: RenderConfig | None = None) -> str:
    """Render several data objects side by side (as the prototype screen does)."""
    if not shapes:
        return "(empty screen)"
    config = config if config is not None else RenderConfig()
    rendered = [render_object(s, config).splitlines() for s in shapes]
    height = max(len(block) for block in rendered)
    widths = [max(len(line) for line in block) for block in rendered]
    padded = []
    for block, width in zip(rendered, widths):
        block = block + [""] * (height - len(block))
        padded.append([line.ljust(width) for line in block])
    rows = []
    for i in range(height):
        rows.append("  ".join(block[i] for block in padded).rstrip())
    return "\n".join(rows)


def fade_character(opacity: float) -> str:
    """Map an opacity in [0, 1] to a shading character."""
    if not 0.0 <= opacity <= 1.0:
        raise VisualizationError("opacity must be within [0, 1]")
    index = min(len(FADE_RAMP) - 1, int((1.0 - opacity) * len(FADE_RAMP)))
    return FADE_RAMP[index]


def render_results(
    shape: DataObjectShape,
    results: ResultStream,
    now: float,
    config: RenderConfig | None = None,
    max_rows: int = 24,
) -> str:
    """Render the currently visible results of a slide next to the object.

    Each visible value is drawn on the row matching its position along the
    object, prefixed with a shading character for its opacity — newest and
    boldest at the most recently touched position, older values fading out.
    """
    if max_rows < 1:
        raise VisualizationError("max_rows must be at least 1")
    visible = results.visible_at(now)
    if not visible:
        return f"{shape.label}: (no visible results)"
    rows: list[str] = [""] * max_rows
    for item in visible:
        row = min(max_rows - 1, int(item.result.position_fraction * (max_rows - 1)))
        marker = fade_character(item.opacity)
        value = item.result.value
        text = f"{value:.2f}" if isinstance(value, float) else str(value)
        rows[row] = f"{marker} {text}"
    lines = [f"{shape.label} — visible results:"]
    for i, row in enumerate(rows):
        lines.append(f"{i:>3} | {row}")
    return "\n".join(lines)
