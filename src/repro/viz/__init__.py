"""Visualization: data-object shapes and text rendering of the screen."""

from repro.viz.objects import (
    DEFAULT_PALETTE,
    DataObjectShape,
    assign_colors,
    shape_from_info,
    shape_from_view,
)
from repro.viz.render import (
    FADE_RAMP,
    RenderConfig,
    fade_character,
    render_object,
    render_results,
    render_screen,
)

__all__ = [
    "DEFAULT_PALETTE",
    "DataObjectShape",
    "FADE_RAMP",
    "RenderConfig",
    "assign_colors",
    "fade_character",
    "render_object",
    "render_results",
    "render_screen",
    "shape_from_info",
    "shape_from_view",
]
