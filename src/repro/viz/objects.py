"""Data-object shapes: the visual vocabulary of the dbTouch front-end.

Data objects are abstract representations — a column is a thin vertical
rectangle, a table a fat rectangle — and the actual data only becomes
visible during query processing.  This module describes those shapes
(dimensions, colour, labels, zoom level) independently of any concrete
rendering technology; :mod:`repro.viz.render` turns them into text.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import cycle

from repro.errors import VisualizationError
from repro.storage.catalog import ObjectInfo
from repro.touchio.views import View

#: Default palette cycled over data objects, mirroring the coloured columns
#: in the prototype screenshots.
DEFAULT_PALETTE = ("blue", "orange", "green", "red", "purple", "teal")


@dataclass
class DataObjectShape:
    """The drawable description of one data object.

    Attributes
    ----------
    name:
        Catalog name of the object.
    kind:
        ``"column"`` or ``"table"``.
    width_cm / height_cm:
        Physical size on screen.
    color:
        Display colour.
    num_tuples / num_attributes:
        Scale information shown in the object's label.
    orientation:
        ``"vertical"`` or ``"horizontal"`` (after rotation).
    zoom_level:
        How many zoom-in steps have been applied (negative for zoom-out).
    """

    name: str
    kind: str
    width_cm: float
    height_cm: float
    color: str
    num_tuples: int
    num_attributes: int = 1
    orientation: str = "vertical"
    zoom_level: int = 0

    def __post_init__(self) -> None:
        if self.width_cm <= 0 or self.height_cm <= 0:
            raise VisualizationError("data-object shapes need positive dimensions")
        if self.kind not in ("column", "table"):
            raise VisualizationError(f"unknown object kind {self.kind!r}")

    @property
    def label(self) -> str:
        """The short label drawn next to the shape."""
        scale = f"{self.num_tuples:,} tuples"
        if self.kind == "table":
            scale += f" x {self.num_attributes} attrs"
        return f"{self.name} ({scale})"

    def zoomed(self, factor: float) -> "DataObjectShape":
        """Return a copy scaled by ``factor`` with the zoom level adjusted."""
        if factor <= 0:
            raise VisualizationError("zoom factor must be positive")
        step = 1 if factor > 1 else -1
        return DataObjectShape(
            name=self.name,
            kind=self.kind,
            width_cm=self.width_cm * factor,
            height_cm=self.height_cm * factor,
            color=self.color,
            num_tuples=self.num_tuples,
            num_attributes=self.num_attributes,
            orientation=self.orientation,
            zoom_level=self.zoom_level + step,
        )

    def rotated(self) -> "DataObjectShape":
        """Return a copy with width/height swapped and orientation flipped."""
        return DataObjectShape(
            name=self.name,
            kind=self.kind,
            width_cm=self.height_cm,
            height_cm=self.width_cm,
            color=self.color,
            num_tuples=self.num_tuples,
            num_attributes=self.num_attributes,
            orientation="horizontal" if self.orientation == "vertical" else "vertical",
            zoom_level=self.zoom_level,
        )


def shape_from_info(info: ObjectInfo, color: str, height_cm: float = 10.0) -> DataObjectShape:
    """Build the default shape for a catalog object description."""
    if info.kind == "column":
        width = 2.0
    else:
        width = min(12.0, 2.0 * max(1, info.num_columns))
    return DataObjectShape(
        name=info.name,
        kind="column" if info.kind == "column" else "table",
        width_cm=width,
        height_cm=height_cm,
        color=color,
        num_tuples=info.num_rows,
        num_attributes=info.num_columns,
    )


def shape_from_view(view: View, color: str) -> DataObjectShape:
    """Build a shape mirroring the current geometry of a kernel view."""
    props = view.properties
    if props is None:
        raise VisualizationError(f"view {view.name!r} carries no data-object properties")
    return DataObjectShape(
        name=props.object_name,
        kind="column" if props.num_attributes == 1 else "table",
        width_cm=view.width,
        height_cm=view.height,
        color=color,
        num_tuples=props.num_tuples,
        num_attributes=props.num_attributes,
        orientation=props.orientation,
    )


def assign_colors(names: list[str]) -> dict[str, str]:
    """Deterministically assign palette colours to object names."""
    colors = {}
    palette = cycle(DEFAULT_PALETTE)
    for name in names:
        colors[name] = next(palette)
    return colors
