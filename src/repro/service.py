"""Backend-agnostic exploration services: one gesture protocol, many hosts.

The dbTouch paper describes a query as a session of continuous gestures and
explicitly sketches a remote deployment where the device keeps only small
samples while a server holds the base data (Section 2.9).  This module is
the seam that makes both worlds speak the same language:

* :class:`ExplorationService` — the protocol: ``execute`` one
  :class:`repro.core.commands.GestureCommand`, or ``run`` a whole
  :class:`repro.core.commands.GestureScript`, returning
  :class:`OutcomeEnvelope` objects either way;
* :class:`LocalExplorationService` — the in-process path: a private
  catalog/device/kernel/synthesizer per service;
* :class:`RemoteExplorationService` — gestures synthesized device-side,
  touches answered from device-local samples and refined over a
  :class:`repro.remote.network.SimulatedLink` under a
  :class:`repro.remote.client.RemotePolicy`;
* :class:`MultiSessionServer` — N independent services behind one façade,
  with per-session and aggregate metrics (the concurrency substrate for
  sharding and scale-out work).

:class:`repro.ExplorationSession` is a thin facade over a service: every
imperative method builds a command and calls ``execute``.
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
from pathlib import Path
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.actions import ActionKind, QueryAction
from repro.core.commands import (
    AppendCommand,
    ChooseAction,
    DragColumnOut,
    GestureCommand,
    GestureScript,
    GroupColumns,
    Pan,
    Rotate,
    ShowColumn,
    ShowTable,
    Slide,
    SlidePath,
    Tap,
    TimedCommand,
    UngroupTable,
    ZoomIn,
    ZoomOut,
)
from repro.core.batch import dedupe_slide_batch
from repro.core.kernel import DbTouchKernel, GestureOutcome, KernelConfig
from repro.core.scheduler import GestureScheduler, SchedulerConfig
from repro.core.schema_gestures import (
    SchemaGestureOutcome,
    SchemaGestures,
    pan_view_frame,
)
from repro.core.touch_mapping import TouchMapper
from repro.engine.aggregate import AggregateKind, make_aggregate
from repro.engine.filter import Predicate
from repro.errors import IngestError, RemoteError, ServiceError
from repro.indexing.manager import IndexManager, RangeSelection
from repro.mining.model import GestureTransitionModel
from repro.mining.policy import SpeculationPlan, SpeculativePolicy
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import TelemetryRegistry
from repro.obs.stats import nearest_rank
from repro.obs.trace import Trace, TraceConfig, TraceContext, Tracer
from repro.persist.snapshot import StoreCatalog
from repro.remote.client import RemoteExplorationClient, RemotePolicy
from repro.remote.network import WAN, NetworkProfile, SimulatedLink
from repro.remote.server import RemoteServer
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.sample import SampleHierarchy
from repro.storage.table import Table
from repro.touchio.device import DeviceProfile, IPAD1, TouchDevice
from repro.touchio.events import TouchStream
from repro.touchio.recognizer import GestureRecognizer, GestureType
from repro.touchio.synthesizer import GestureSynthesizer
from repro.touchio.views import View, make_column_view


@dataclass
class OutcomeEnvelope:
    """What a service hands back for one executed command.

    The metric fields mirror :meth:`repro.core.kernel.GestureOutcome.counters`
    so local and remote backends report the same measurement surface;
    ``remote_requests`` / ``network_seconds`` stay zero on the local path.
    ``payload`` carries the backend-native outcome object (a
    :class:`GestureOutcome`, a :class:`SchemaGestureOutcome`, a
    :class:`repro.touchio.views.View` for show commands, or ``None``).
    """

    command_kind: str
    backend: str
    view_name: str | None = None
    object_name: str | None = None
    entries_returned: int = 0
    tuples_examined: int = 0
    cache_hits: int = 0
    prefetch_hits: int = 0
    duration_s: float = 0.0
    max_touch_latency_s: float = 0.0
    remote_requests: int = 0
    network_seconds: float = 0.0
    payload: Any = None

    def to_dict(self) -> dict[str, Any]:
        """The envelope's wire format: metrics only, no live objects.

        Counter fields are coerced to plain ``int``/``float`` so the dict
        is always JSON-encodable — the kernel accumulates some counters as
        numpy scalars, which ``json.dumps`` refuses.
        """
        return {
            "command_kind": self.command_kind,
            "backend": self.backend,
            "view_name": self.view_name,
            "object_name": self.object_name,
            "entries_returned": int(self.entries_returned),
            "tuples_examined": int(self.tuples_examined),
            "cache_hits": int(self.cache_hits),
            "prefetch_hits": int(self.prefetch_hits),
            "duration_s": float(self.duration_s),
            "max_touch_latency_s": float(self.max_touch_latency_s),
            "remote_requests": int(self.remote_requests),
            "network_seconds": float(self.network_seconds),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OutcomeEnvelope":
        """Rebuild an envelope from :meth:`to_dict` output (wire side).

        The ``payload`` attribute stays ``None`` — live outcome objects
        never cross the wire; only the measurement surface does.  Raises
        :class:`repro.errors.ServiceError` on a malformed payload so
        protocol clients surface a typed error instead of a ``KeyError``.
        """
        try:
            return cls(
                command_kind=str(payload["command_kind"]),
                backend=str(payload["backend"]),
                view_name=payload.get("view_name"),
                object_name=payload.get("object_name"),
                entries_returned=int(payload.get("entries_returned", 0)),
                tuples_examined=int(payload.get("tuples_examined", 0)),
                cache_hits=int(payload.get("cache_hits", 0)),
                prefetch_hits=int(payload.get("prefetch_hits", 0)),
                duration_s=float(payload.get("duration_s", 0.0)),
                max_touch_latency_s=float(payload.get("max_touch_latency_s", 0.0)),
                remote_requests=int(payload.get("remote_requests", 0)),
                network_seconds=float(payload.get("network_seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed outcome-envelope payload: {exc}") from exc


def default_axis(view: View) -> str:
    """Slide axis implied by a view's orientation (shared by all backends)."""
    props = view.properties
    if props is not None and props.orientation == "horizontal":
        return "horizontal"
    return "vertical"


def synthesize_touch_stream(
    synthesizer: GestureSynthesizer,
    view: View,
    command: Slide | SlidePath | Tap,
    now: float,
) -> TouchStream:
    """Turn a touch-gesture command into the stream a finger would produce.

    Both backends route through this one helper so the local kernel and the
    remote device side always see identical touch streams for the same
    command — the precondition for local-vs-remote parity.
    """
    axis = getattr(command, "axis", None)
    if axis is None:
        axis = default_axis(view)
    if isinstance(command, Slide):
        return synthesizer.slide(
            view,
            duration=command.duration,
            start_fraction=command.start_fraction,
            end_fraction=command.end_fraction,
            axis=axis,
            cross_fraction=command.cross_fraction,
            start_time=now,
        )
    if isinstance(command, SlidePath):
        return synthesizer.slide_path(
            view,
            list(command.segments),
            axis=axis,
            cross_fraction=command.cross_fraction,
            start_time=now,
        )
    if isinstance(command, Tap):
        return synthesizer.tap(view, fraction=command.fraction, axis=axis, start_time=now)
    raise ServiceError(f"cannot synthesize a touch stream for command {command.kind!r}")


@runtime_checkable
class ExplorationService(Protocol):
    """The backend-agnostic exploration protocol.

    This is the full contract :class:`repro.ExplorationSession` and
    :class:`MultiSessionServer` rely on: command execution plus host-side
    data loading and state recycling.  Backend-specific extras (``catalog``,
    ``kernel``, ``load_table`` on the local backend; ``server``, ``link``
    on the remote one) are intentionally outside the protocol.
    """

    def execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one gesture command and return its outcome envelope."""
        ...

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script, one envelope per command."""
        ...

    def load_column(self, name: str, values: Iterable) -> Column:
        """Make a standalone column available to the backend under ``name``."""
        ...

    def reset(self) -> None:
        """Discard the backend's exploration state so it can be reused."""
        ...


def _as_named_column(name: str, values: Iterable) -> Column:
    """Normalize raw values / an existing Column to a column named ``name``."""
    column = values if isinstance(values, Column) else Column(name, values)
    if column.name != name:
        column = column.rename(name)
    return column


def _accepts_replace(loader: Callable) -> bool:
    """Whether a backend loader takes the ``replace=`` keyword.

    Both built-in backends do; the check exists so a custom backend
    without reload support fails with a clean :class:`ServiceError`
    instead of a ``TypeError`` from an unexpected keyword.
    """
    try:
        parameters = inspect.signature(loader).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "replace" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


# --------------------------------------------------------------------- #
# the in-process backend
# --------------------------------------------------------------------- #


class LocalExplorationService:
    """The in-process backend: a private catalog, device and dbTouch kernel.

    This is the execution path :class:`repro.ExplorationSession` always had;
    it is now addressable through the command protocol so recorded scripts
    replay on it and :class:`MultiSessionServer` can host many instances.
    """

    backend = "local"

    def __init__(
        self,
        profile: DeviceProfile = IPAD1,
        config: KernelConfig | None = None,
        jitter_cm: float = 0.0,
        seed: int = 11,
    ) -> None:
        self.profile = profile
        self.config = config
        self.jitter_cm = jitter_cm
        self.seed = seed
        self._shared_index: IndexManager | None = None
        self._speculation: SpeculativePolicy | None = None
        self._pending_speculation: SpeculationPlan | None = None
        self.reset()

    def reset(self) -> None:
        """Discard all catalog/device/kernel state and start fresh."""
        self.catalog = Catalog()
        self.device = TouchDevice(self.profile)
        self.kernel = DbTouchKernel(self.catalog, self.device, self.config)
        self.synthesizer = GestureSynthesizer(
            self.profile, jitter_cm=self.jitter_cm, seed=self.seed
        )
        self.schema_gestures = SchemaGestures(self.kernel)
        if self._shared_index is not None and self.kernel.config.enable_indexing:
            self.kernel.index_manager = self._shared_index
        if self._speculation is not None:
            self.kernel.adopt_speculation(self._speculation)

    def adopt_index_manager(self, manager: IndexManager) -> None:
        """Serve this session's adaptive indexing from a shared manager.

        The hook :class:`MultiSessionServer` uses when sessions attach the
        same base storage by reference: cracks performed by one session's
        gestures then speed up every session's selections.  The adoption
        survives :meth:`reset` (the kernel is rebuilt around the same
        shared manager).  A kernel explicitly configured with
        ``enable_indexing=False`` keeps its off switch: the shared
        manager is remembered but never installed.
        """
        self._shared_index = manager
        if self.kernel.config.enable_indexing:
            self.kernel.index_manager = manager

    def adopt_speculation(self, policy: "SpeculativePolicy") -> None:
        """Drive this session's speculation from a mined policy.

        The speculation twin of :meth:`adopt_index_manager`: serving
        layers install one shared :class:`repro.mining.policy.
        SpeculativePolicy` per server, and the adoption survives
        :meth:`reset` (the rebuilt kernel re-adopts the same policy).
        The policy only observes gestures and aims background warm-ups —
        gesture results and their counters are unchanged by adopting it.
        """
        self._speculation = policy
        self.kernel.adopt_speculation(policy)

    def speculation_stats(self) -> dict[str, int] | None:
        """Counters of the mined speculation policy, if one is active.

        Mined prediction hits/misses, scheduled/completed warm-up jobs,
        rows warmed and staged sample levels — load-dependent
        observability like :meth:`index_stats`, never part of the
        counter-parity surface.  ``None`` without a policy.
        """
        policy = self.kernel.speculation
        snapshot = getattr(policy, "stats_snapshot", None)
        return snapshot() if callable(snapshot) else None

    # ------------------------------------------------------------------ #
    # speculative execution (background warm-ups, post-outcome)
    # ------------------------------------------------------------------ #
    def _observe_speculation(
        self, policy: "SpeculativePolicy", command: GestureCommand, envelope: OutcomeEnvelope
    ) -> None:
        """Feed one executed command to the policy and park its plan.

        Runs strictly after the outcome is computed (the
        ``_refine_index`` pattern), so observation can never perturb the
        gesture's counters.
        """
        object_name = envelope.object_name
        if not object_name:
            return
        policy.observe_command(object_name, command.kind)
        self.kernel.optimizer.speculation_hint(policy.prediction(object_name))
        plan = policy.speculation_plan(object_name)
        if plan is not None:
            self._pending_speculation = plan

    def take_speculation(self) -> Callable[[], int] | None:
        """Pop the pending speculative job as a zero-arg thunk.

        Serving layers call this after each executed command and run the
        thunk on the scheduler's background lane (inline in serial mode).
        ``None`` when the last command produced no actionable prediction.
        """
        plan = self._pending_speculation
        if plan is None:
            return None
        self._pending_speculation = None
        policy = self.kernel.speculation
        if policy is None:
            return None
        policy.note_scheduled()
        return lambda: self.run_speculation(plan)

    def run_speculation(self, plan: "SpeculationPlan") -> int:
        """Execute one speculation plan; returns the rows warmed.

        Pre-reads the rows the predicted gesture would touch — for paged
        columns this faults the chunks into the store's chunk cache, the
        real speculative win — and stages predicted-zoom sample levels in
        the policy's private store.  Never touches kernel-visible state
        (views, hierarchies, touch caches), so outcome counters stay
        bit-identical; failures are counted on the policy, never raised
        into the background lane.
        """
        policy = self.kernel.speculation
        if policy is None:
            return 0
        try:
            warmed = self._warm_for_plan(policy, plan)
        except Exception:  # noqa: BLE001 - background lane must never throw
            policy.note_error()
            return 0
        policy.note_completed(warmed)
        return warmed

    def _warm_for_plan(self, policy: "SpeculativePolicy", plan: "SpeculationPlan") -> int:
        if plan.object_name not in self.catalog.column_names:
            return 0  # tables: no single column to warm; plan is a no-op
        column = self.catalog.column(plan.object_name)
        num_tuples = len(column)
        if num_tuples == 0:
            return 0
        window = policy.warm_window
        stride = max(1, plan.stride)
        kind = plan.predicted_kind
        if kind in ("slide", "slide-path"):
            # warm the forward window the extrapolated slide would touch
            anchor = plan.rowid if 0 <= plan.rowid < num_tuples else 0
            direction = plan.direction if plan.direction != 0 else 1
            rowids = anchor + direction * stride * np.arange(1, window + 1)
        elif kind == "tap":
            anchor = plan.rowid if 0 <= plan.rowid < num_tuples else num_tuples // 2
            rowids = anchor + np.arange(-(window // 2), window // 2 + 1)
        elif kind in ("zoom-in", "zoom-out"):
            factor = max(2, self.kernel.config.sample_factor)
            if kind == "zoom-out":
                next_stride = stride * factor
            else:
                next_stride = max(1, stride // factor)
            rowids = np.arange(0, num_tuples, next_stride)[:window]
            values = column.read_batch(rowids.astype(np.int64))
            policy.stage_level(plan.object_name, next_stride, values)
            return int(rowids.size)
        else:
            return 0
        rowids = rowids[(rowids >= 0) & (rowids < num_tuples)].astype(np.int64)
        if rowids.size == 0:
            return 0
        column.read_batch(rowids)
        return int(rowids.size)

    def index_stats(self) -> dict[str, int] | None:
        """Counters and gauges of the adaptive indexing tier.

        A point-in-time :meth:`~repro.indexing.manager.IndexManager.
        stats_snapshot`: consultation/refinement counters, cracks
        (deterministic and stochastic), coalesces, spills, plus live
        gauges (crackers, pieces, cracker bytes, resident/spilled chunk
        crackers).  ``None`` when indexing is disabled.  Load-dependent —
        deliberately not part of :meth:`SessionMetrics.counters_snapshot`,
        the serial-vs-concurrent parity surface.
        """
        manager = self.kernel.index_manager
        return None if manager is None else manager.stats_snapshot()

    # ------------------------------------------------------------------ #
    # host-side data management (not part of the command vocabulary)
    # ------------------------------------------------------------------ #
    def load_column(self, name: str, values: Iterable, replace: bool = False) -> Column:
        """Register a standalone column in the service's catalog.

        With ``replace``, an already-registered column of the same name is
        overwritten (a data reload): stale sample hierarchies are dropped,
        shown views are re-bound to the new data and every touched-range
        cache entry derived from the object is invalidated.
        """
        column = _as_named_column(name, values)
        self.catalog.register_column(column, replace=replace)
        if replace:
            self.kernel.refresh_object(name)
        return column

    def load_table(
        self, name: str, data: Mapping[str, Iterable] | Table, replace: bool = False
    ) -> Table:
        """Register a table in the service's catalog.

        ``replace`` reloads an existing table; see :meth:`load_column`.
        """
        table = data if isinstance(data, Table) else Table.from_arrays(name, data)
        self.catalog.register_table(table, replace=replace)
        if replace:
            self.kernel.refresh_object(name)
        return table

    # ------------------------------------------------------------------ #
    # live ingestion
    # ------------------------------------------------------------------ #
    def append_rows(
        self,
        object_name: str,
        values: Iterable | None = None,
        columns: Mapping[str, Iterable] | None = None,
    ) -> int:
        """Append rows to an already-loaded object without pausing exploration.

        Standalone columns take ``values``; tables take ``columns`` covering
        the schema exactly (the storage tier appends all-or-nothing).  After
        the data grows, shown views are re-bound via
        :meth:`repro.core.kernel.DbTouchKernel.extend_object`, so cracked
        indexes keep their pieces as a valid prefix window — the hot tail is
        scanned until :meth:`merge_index_tails` (or a background merge)
        folds it in.  Returns the object's new row count.
        """
        if (values is None) == (columns is None):
            raise IngestError(
                "append_rows needs exactly one of values= (column) or columns= (table)"
            )
        if object_name not in self.catalog:
            raise IngestError(
                f"no loaded object {object_name!r} to append to; "
                f"known: {self.catalog.table_names + self.catalog.column_names}"
            )
        is_table = object_name in self.catalog.table_names
        if columns is not None:
            if not is_table:
                raise IngestError(
                    f"{object_name!r} is a standalone column; append with values="
                )
            new_length = self.catalog.table(object_name).append_batch(columns)
        else:
            if is_table:
                raise IngestError(f"{object_name!r} is a table; append with columns=")
            new_length = self.catalog.column(object_name).append_batch(values)
        self.kernel.extend_object(object_name)
        return new_length

    def merge_index_tails(self, object_name: str | None = None) -> int:
        """Fold appended hot tails into the cracked indexes; returns rows merged.

        A no-op (0) when indexing is disabled or nothing was appended.
        Serving layers schedule this on the background lane; callers here
        may also invoke it synchronously at a quiet moment.
        """
        manager = self.kernel.index_manager
        if manager is None:
            return 0
        return manager.merge_tails(object_name)

    # ------------------------------------------------------------------ #
    # the service protocol
    # ------------------------------------------------------------------ #
    def execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one gesture command against the in-process kernel.

        With a speculation policy adopted, the executed command is also
        reported to the policy *after* its outcome is computed, and the
        policy's next warm-up plan is parked for :meth:`take_speculation`
        — outcome counters are a pure function of the command sequence
        either way.
        """
        envelope = self._execute_command(command)
        policy = self.kernel.speculation
        if policy is not None:
            self._observe_speculation(policy, command, envelope)
        return envelope

    def _execute_command(self, command: GestureCommand) -> OutcomeEnvelope:
        if isinstance(command, ShowColumn):
            view = self.kernel.show_column(
                command.object_name,
                column_name=command.column_name,
                view_name=command.view_name,
                height_cm=command.height_cm,
                width_cm=command.width_cm,
                x=command.x,
                y=command.y,
            )
            return self._show_envelope(command, view, command.object_name)
        if isinstance(command, ShowTable):
            view = self.kernel.show_table(
                command.table_name,
                view_name=command.view_name,
                height_cm=command.height_cm,
                width_cm=command.width_cm,
                x=command.x,
                y=command.y,
            )
            return self._show_envelope(command, view, command.table_name)
        if isinstance(command, ChooseAction):
            self.kernel.set_action(command.view, command.action)
            return OutcomeEnvelope(
                command_kind=command.kind,
                backend=self.backend,
                view_name=command.view,
                object_name=self.kernel.state_of(command.view).object_name,
            )
        if isinstance(command, (Slide, SlidePath, Tap, ZoomIn, ZoomOut, Rotate)):
            stream = self._synthesize(command)
            self.device.advance_clock(stream.duration)
            outcome = self.kernel.handle_stream(stream)
            return self._gesture_envelope(command, outcome)
        if isinstance(command, Pan):
            moved = self.schema_gestures.pan_view(
                self._target_view(command.view), command.dx_cm, command.dy_cm
            )
            return self._schema_envelope(command, moved, view_name=command.view)
        if isinstance(command, DragColumnOut):
            dragged = self.schema_gestures.drag_column_out(
                self._target_view(command.table_view),
                command.column_name,
                new_object_name=command.new_object_name,
                x=command.x,
                y=command.y,
                height_cm=command.height_cm,
            )
            return self._schema_envelope(command, dragged, view_name=command.table_view)
        if isinstance(command, GroupColumns):
            grouped = self.schema_gestures.group_columns(
                list(command.column_object_names),
                command.table_name,
                x=command.x,
                y=command.y,
                height_cm=command.height_cm,
                width_cm=command.width_cm,
            )
            return self._schema_envelope(command, grouped, view_name=None)
        if isinstance(command, UngroupTable):
            split = self.schema_gestures.ungroup_table(
                self._target_view(command.table_view), height_cm=command.height_cm
            )
            return self._schema_envelope(command, split, view_name=command.table_view)
        if isinstance(command, AppendCommand):
            new_length = self.append_rows(
                command.object_name, values=command.values, columns=command.columns
            )
            return OutcomeEnvelope(
                command_kind=command.kind,
                backend=self.backend,
                view_name=None,
                object_name=command.object_name,
                payload={"num_rows": new_length},
            )
        raise ServiceError(
            f"the local backend does not understand command kind {command.kind!r}"
        )

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script in order."""
        return [self.execute(command) for command in script]

    # ------------------------------------------------------------------ #
    # bulk range selection (consults the adaptive indexing tier)
    # ------------------------------------------------------------------ #
    def select_where(
        self, view: str, predicate: Predicate | None = None
    ) -> RangeSelection:
        """Whole-object range selection for the object shown in ``view``.

        A backend extra outside the gesture-command vocabulary (like
        ``load_table``): delegates to
        :meth:`repro.core.kernel.DbTouchKernel.select_where`, so the
        adaptive indexing tier is consulted when enabled and the result is
        bit-identical to a full scan either way.
        """
        return self.kernel.select_where(view, predicate)

    # ------------------------------------------------------------------ #
    # result-stream backpressure (used by the concurrent serving engine)
    # ------------------------------------------------------------------ #
    def result_backlog(self) -> int:
        """Total result values currently retained across all shown views."""
        return sum(stream.backlog for _, stream in self.kernel.iter_result_streams())

    def result_drops(self) -> int:
        """Total result values dropped by retention across all shown views."""
        return sum(
            stream.total_dropped for _, stream in self.kernel.iter_result_streams()
        )

    def set_result_retention(self, max_retained: int | None) -> None:
        """Bound every result stream (current and future) to ``max_retained``.

        Retention is then enforced at emission time by
        :class:`repro.core.result_stream.ResultStream` itself — the
        mechanism :class:`MultiSessionServer` arms once per session at
        ``open_session`` when ``SchedulerConfig.result_retention`` is set.
        """
        self.kernel.config.max_retained_results = max_retained
        for _, stream in self.kernel.iter_result_streams():
            stream.max_retained = max_retained
            stream.trim()

    def trim_results(self, max_retained: int) -> int:
        """One-off trim of every view's result stream to ``max_retained``.

        Returns how many (long-faded) values were dropped.  Manual
        variant of :meth:`set_result_retention` for drivers that want to
        reclaim memory without changing the standing bound.
        """
        return sum(
            stream.trim(max_retained)
            for _, stream in self.kernel.iter_result_streams()
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _target_view(self, view_name: str) -> View:
        # resolve through the kernel's object state, not the device's view
        # tree: when view names collide the kernel's last-shown object wins,
        # and gestures must land on the view the kernel will map against
        return self.kernel.state_of(view_name).view

    def _synthesize(self, command: GestureCommand) -> TouchStream:
        view = self._target_view(command.view)
        now = self.device.now
        if isinstance(command, (Slide, SlidePath, Tap)):
            return synthesize_touch_stream(self.synthesizer, view, command, now)
        if isinstance(command, (ZoomIn, ZoomOut)):
            return self.synthesizer.zoom(
                view,
                zoom_in=isinstance(command, ZoomIn),
                duration=command.duration,
                start_time=now,
            )
        if isinstance(command, Rotate):
            return self.synthesizer.rotate(view, duration=command.duration, start_time=now)
        raise ServiceError(f"cannot synthesize a stream for command {command.kind!r}")

    def _show_envelope(
        self, command: GestureCommand, view: View, object_name: str
    ) -> OutcomeEnvelope:
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=view.name,
            object_name=object_name,
            payload=view,
        )

    def _gesture_envelope(
        self, command: GestureCommand, outcome: GestureOutcome
    ) -> OutcomeEnvelope:
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=outcome.view_name,
            object_name=outcome.object_name,
            payload=outcome,
            **outcome.counters(),
        )

    def _schema_envelope(
        self,
        command: GestureCommand,
        outcome: SchemaGestureOutcome,
        view_name: str | None,
    ) -> OutcomeEnvelope:
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=view_name,
            payload=outcome,
        )


# --------------------------------------------------------------------- #
# the remote backend
# --------------------------------------------------------------------- #


@dataclass
class _RemoteObjectState:
    """Device-side state for one explored remote column."""

    view: View
    object_name: str
    client: RemoteExplorationClient
    action: QueryAction = field(default_factory=QueryAction)
    aggregate: Any = None
    last_rowid: int | None = None
    current_stride: int = 1


_SUMMARY_FUNCS: dict[AggregateKind, Callable[[np.ndarray], float]] = {
    AggregateKind.COUNT: lambda a: float(a.size),
    AggregateKind.SUM: lambda a: float(np.sum(a)),
    AggregateKind.AVG: lambda a: float(np.mean(a)),
    AggregateKind.MIN: lambda a: float(np.min(a)),
    AggregateKind.MAX: lambda a: float(np.max(a)),
    AggregateKind.STD: lambda a: float(np.std(a)),
}


class RemoteExplorationService:
    """Gesture exploration against a server that holds the base data.

    The device side synthesizes the same touch streams as the local backend
    (same device profile, synthesizer and touch→rowid mapping), but every
    touch is answered under a :class:`RemotePolicy`: immediately from the
    device-local sample, by shipping the touch over the simulated link, or
    hybrid — local answer first, remote refinement only when the gesture's
    granularity outruns the local sample.  The remote backend hosts
    standalone columns only; table-shaped commands raise
    :class:`repro.errors.RemoteError`.
    """

    backend = "remote"

    def __init__(
        self,
        server: RemoteServer | None = None,
        link: SimulatedLink | None = None,
        policy: RemotePolicy = RemotePolicy.HYBRID,
        profile: DeviceProfile = IPAD1,
        network_profile: NetworkProfile = WAN,
        local_sample_rows: int = 4096,
        jitter_cm: float = 0.0,
        seed: int = 11,
    ) -> None:
        self.server = server if server is not None else RemoteServer()
        self.link = link if link is not None else SimulatedLink(network_profile)
        self.policy = policy
        self.profile = profile
        self.local_sample_rows = local_sample_rows
        self.jitter_cm = jitter_cm
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Reset the device side (views, clients, clock); keep hosted data."""
        self.device = TouchDevice(self.profile)
        self.synthesizer = GestureSynthesizer(
            self.profile, jitter_cm=self.jitter_cm, seed=self.seed
        )
        self.recognizer = GestureRecognizer()
        self.mapper = TouchMapper()
        self.link.reset()
        self._states: dict[str, _RemoteObjectState] = {}

    # ------------------------------------------------------------------ #
    # host-side data management
    # ------------------------------------------------------------------ #
    def load_column(self, name: str, values: Iterable, replace: bool = False) -> Column:
        """Host a column on the remote server (mirrors the local signature).

        Hosting is idempotent per name (``RemoteServer.ensure_hosted``):
        when many device sessions share one server, the first load pays the
        hierarchy build and later loads of the same name reuse the hosted
        data — swapping the data intentionally is what ``replace`` is for.

        With ``replace``, an already-hosted column is swapped for the new
        data (a reload): the server rebuilds its sample hierarchy, and
        every device-side view of the object gets a fresh exploration
        client — its local sample was drawn from the old data and must not
        answer touches against the reload — plus re-scaled view metadata
        and reset slide-tracking state, mirroring the local backend's
        ``refresh_object`` path.
        """
        column = _as_named_column(name, values)
        if replace and self.server.hosts(name):
            self.server.host_column(column, replace=True)
            self._refresh_remote_states(name, column)
            return column
        return self.server.ensure_hosted(column)

    def _refresh_remote_states(self, name: str, column: Column) -> None:
        """Re-bind shown views of ``name`` after its hosted data changed."""
        for state in self._states.values():
            if state.object_name != name:
                continue
            state.client = RemoteExplorationClient(
                self.server,
                self.link,
                name,
                policy=self.policy,
                local_sample_rows=self.local_sample_rows,
            )
            state.last_rowid = None
            state.current_stride = 1
            if state.aggregate is not None:
                state.aggregate = make_aggregate(state.action.aggregate)
            properties = state.view.properties
            if properties is not None:
                properties.num_tuples = len(column)
                properties.dtype_names = (column.dtype.name,)
                properties.size_bytes = column.size_bytes

    # ------------------------------------------------------------------ #
    # live ingestion
    # ------------------------------------------------------------------ #
    def append_rows(
        self,
        object_name: str,
        values: Iterable | None = None,
        columns: Mapping[str, Iterable] | None = None,
    ) -> int:
        """Append rows to a hosted column (mirrors the local signature).

        The hosted column grows in place; its server-side sample hierarchy
        sampled the pre-append rows, so it is rebuilt, and every shown
        device-side view gets a fresh exploration client and re-scaled
        metadata — the same re-bind a ``replace`` reload performs.
        """
        if columns is not None:
            raise RemoteError(
                "the remote backend hosts standalone columns only; "
                "table appends are a local-backend feature"
            )
        if values is None:
            raise IngestError("append_rows needs values= for a hosted column")
        if not self.server.hosts(object_name):
            raise IngestError(
                f"server does not host a column named {object_name!r}; "
                "load_column() it before appending"
            )
        column = self.server.column(object_name)
        new_length = column.append_batch(values)
        self.server.host_column(column, replace=True)
        self._refresh_remote_states(object_name, column)
        return new_length

    # ------------------------------------------------------------------ #
    # the service protocol
    # ------------------------------------------------------------------ #
    def execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one gesture command through the remote machinery."""
        if isinstance(command, AppendCommand):
            new_length = self.append_rows(
                command.object_name, values=command.values, columns=command.columns
            )
            return OutcomeEnvelope(
                command_kind=command.kind,
                backend=self.backend,
                view_name=None,
                object_name=command.object_name,
                payload={"num_rows": new_length},
            )
        if isinstance(command, ShowColumn):
            return self._show_column(command)
        if isinstance(command, ChooseAction):
            return self._choose_action(command)
        if isinstance(command, (Slide, SlidePath, Tap)):
            return self._touch_gesture(command)
        if isinstance(command, (ZoomIn, ZoomOut)):
            return self._zoom(command)
        if isinstance(command, Rotate):
            return self._rotate(command)
        if isinstance(command, Pan):
            return self._pan(command)
        if isinstance(command, (ShowTable, DragColumnOut, GroupColumns, UngroupTable)):
            raise RemoteError(
                "the remote backend hosts standalone columns only; "
                f"command {command.kind!r} needs a table object"
            )
        raise ServiceError(
            f"the remote backend does not understand command kind {command.kind!r}"
        )

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script in order."""
        return [self.execute(command) for command in script]

    # ------------------------------------------------------------------ #
    # command handlers
    # ------------------------------------------------------------------ #
    def _state(self, view_name: str) -> _RemoteObjectState:
        if view_name not in self._states:
            raise RemoteError(f"no remote data object is shown under view {view_name!r}")
        return self._states[view_name]

    def _show_column(self, command: ShowColumn) -> OutcomeEnvelope:
        if command.column_name is not None:
            raise RemoteError(
                "the remote backend addresses hosted columns directly; "
                "table-attribute lookups are a local-backend feature"
            )
        if not self.server.hosts(command.object_name):
            raise RemoteError(
                f"server does not host a column named {command.object_name!r}; "
                "load_column() it before showing it"
            )
        column = self.server.column(command.object_name)
        name = command.view_name if command.view_name is not None else f"{command.object_name}-view"
        view = make_column_view(
            name=name,
            object_name=command.object_name,
            num_tuples=len(column),
            height_cm=command.height_cm,
            width_cm=command.width_cm,
            x=command.x,
            y=command.y,
            dtype_names=(column.dtype.name,),
            size_bytes=column.size_bytes,
        )
        self.device.add_view(view)
        client = RemoteExplorationClient(
            self.server,
            self.link,
            command.object_name,
            policy=self.policy,
            local_sample_rows=self.local_sample_rows,
        )
        self._states[name] = _RemoteObjectState(
            view=view, object_name=command.object_name, client=client
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=name,
            object_name=command.object_name,
            payload=view,
        )

    def _choose_action(self, command: ChooseAction) -> OutcomeEnvelope:
        state = self._state(command.view)
        action = command.action
        if action.kind not in (ActionKind.SCAN, ActionKind.AGGREGATE, ActionKind.SUMMARY):
            raise RemoteError(
                f"the remote backend supports scan/aggregate/summary actions, "
                f"not {action.kind.value!r}"
            )
        state.action = action
        state.aggregate = (
            make_aggregate(action.aggregate) if action.kind is ActionKind.AGGREGATE else None
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
        )

    def _touch_gesture(self, command: Slide | SlidePath | Tap) -> OutcomeEnvelope:
        state = self._state(command.view)
        stream = synthesize_touch_stream(self.synthesizer, state.view, command, self.device.now)
        self.device.advance_clock(stream.duration)
        gesture = self.recognizer.recognize(stream)
        requests_before = self.link.stats.requests
        seconds_before = self.link.stats.simulated_seconds
        outcome = GestureOutcome(
            gesture_type=gesture.gesture_type,
            view_name=gesture.view_name,
            object_name=state.object_name,
            duration_s=gesture.duration,
        )
        if gesture.gesture_type is GestureType.TAP:
            # a tap asks for the exact value under the finger and, like
            # the local kernel, leaves the slide-tracking state untouched
            mapped = self.mapper.map_touch(state.view, gesture.events[-1].primary)
            self._answer_touch(state, mapped.rowid, 1, outcome)
        else:
            # the whole slide is mapped and deduplicated in one numpy pass
            # (the same batched mapping the local kernel uses); each touch
            # is then answered under the remote policy as before
            mapped_batch = self.mapper.map_batch(
                state.view, gesture.events, active_only=True
            )
            if len(mapped_batch):
                keep, strides = dedupe_slide_batch(
                    mapped_batch.rowids, state.last_rowid, state.current_stride
                )
                kept = mapped_batch.rowids[keep]
                for rowid, stride in zip(kept.tolist(), strides.tolist()):
                    self._answer_touch(state, int(rowid), int(stride), outcome)
                if kept.size:
                    state.last_rowid = int(kept[-1])
                    state.current_stride = int(strides[-1])
        if state.aggregate is not None:
            outcome.final_aggregate = state.aggregate.current()
        envelope = OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=gesture.view_name,
            object_name=state.object_name,
            payload=outcome,
            **outcome.counters(),
        )
        envelope.remote_requests = self.link.stats.requests - requests_before
        envelope.network_seconds = self.link.stats.simulated_seconds - seconds_before
        return envelope

    def _answer_touch(
        self,
        state: _RemoteObjectState,
        rowid: int,
        stride: int,
        outcome: GestureOutcome,
    ) -> None:
        action = state.action
        outcome.rowids_touched.append(rowid)
        if action.kind is ActionKind.SUMMARY:
            value, examined, response_s = state.client.summary_touch(
                rowid, action.summary_k, stride, _SUMMARY_FUNCS[action.aggregate]
            )
        else:
            answer = state.client.touch(rowid, stride_hint=stride)
            value = (
                answer.refined_value
                if answer.refined_value is not None
                else answer.immediate_value
            )
            examined = 1
            response_s = answer.response_time_s
        outcome.tuples_examined += examined
        outcome.per_touch_latencies_s.append(response_s)
        if action.predicate is not None and not action.predicate.matches(value):
            return
        if state.aggregate is not None:
            state.aggregate.on_touch(rowid, value)
        outcome.entries_returned += 1

    def _zoom(self, command: ZoomIn | ZoomOut) -> OutcomeEnvelope:
        state = self._state(command.view)
        stream = self._gesture_stream(command, state)
        gesture = self.recognizer.recognize(stream)
        scale = gesture.scale if gesture.scale > 0 else 1.0
        state.view.resize(scale)
        outcome = GestureOutcome(
            gesture_type=gesture.gesture_type,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
            zoom_scale=scale,
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
            payload=outcome,
        )

    def _rotate(self, command: Rotate) -> OutcomeEnvelope:
        state = self._state(command.view)
        stream = self._gesture_stream(command, state)
        gesture = self.recognizer.recognize(stream)
        state.view.rotate()
        outcome = GestureOutcome(
            gesture_type=GestureType.ROTATE,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
            payload=outcome,
        )

    def _gesture_stream(self, command: ZoomIn | ZoomOut | Rotate, state: _RemoteObjectState):
        now = self.device.now
        if isinstance(command, Rotate):
            stream = self.synthesizer.rotate(state.view, duration=command.duration, start_time=now)
        else:
            stream = self.synthesizer.zoom(
                state.view,
                zoom_in=isinstance(command, ZoomIn),
                duration=command.duration,
                start_time=now,
            )
        self.device.advance_clock(stream.duration)
        return stream

    def _pan(self, command: Pan) -> OutcomeEnvelope:
        state = self._state(command.view)
        moved = pan_view_frame(state.view, command.dx_cm, command.dy_cm, self.profile)
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
            payload=moved,
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def network_seconds(self) -> float:
        """Total simulated network time spent so far."""
        return self.link.stats.simulated_seconds

    def client_for(self, view_name: str) -> RemoteExplorationClient:
        """The device-side client answering touches for ``view_name``."""
        return self._state(view_name).client


# --------------------------------------------------------------------- #
# many sessions behind one protocol
# --------------------------------------------------------------------- #


@dataclass
class SessionMetrics:
    """Per-session accounting kept by :class:`MultiSessionServer`.

    The deterministic counters (``commands``, ``entries_returned``,
    ``tuples_examined``, ``cache_hits``, ``prefetch_hits``) depend only on
    the session's command sequence, so a concurrent run must reproduce a
    serial run's values exactly; the wall-clock fields
    (latencies, throughput) describe host-side performance.  All mutation
    happens under a private lock, so the serving engine's workers and any
    monitoring thread can touch one session's metrics concurrently.

    Adaptive-index activity (cracks, coalesces, spills, piece counts) is
    deliberately NOT folded in here: with a shared index those counters
    depend on cross-session interleaving, so they live on the separate
    load-dependent surface (:meth:`LocalExplorationService.index_stats` /
    :meth:`MultiSessionServer.index_stats`) and never contaminate the
    parity contract of :meth:`counters_snapshot`.
    """

    commands: int = 0
    entries_returned: int = 0
    tuples_examined: int = 0
    cache_hits: int = 0
    prefetch_hits: int = 0
    remote_requests: int = 0
    network_seconds: float = 0.0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    max_command_wall_s: float = 0.0
    first_command_monotonic: float | None = field(default=None, repr=False)
    last_command_monotonic: float | None = field(default=None, repr=False)
    _latencies_s: list[float] = field(default_factory=list, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def mean_command_wall_s(self) -> float:
        """Mean host-side execution time per command."""
        if not self.commands:
            return 0.0
        return self.wall_seconds / self.commands

    @property
    def p50_command_wall_s(self) -> float:
        """Median host-side command latency."""
        return self.latency_quantile(0.5)

    @property
    def p95_command_wall_s(self) -> float:
        """95th-percentile host-side command latency."""
        return self.latency_quantile(0.95)

    @property
    def throughput_cps(self) -> float:
        """Observed commands per second over the session's active span."""
        with self._lock:
            commands = self.commands
            first = self.first_command_monotonic
            last = self.last_command_monotonic
            wall = self.wall_seconds
        if not commands:
            return 0.0
        span = (last - first) if (first is not None and last is not None) else 0.0
        if span > 0.0:
            return commands / span
        return commands / wall if wall > 0.0 else 0.0

    def latency_quantile(self, q: float) -> float:
        """Nearest-rank quantile of per-command wall latencies (0 < q <= 1)."""
        with self._lock:
            ordered = sorted(self._latencies_s)
        return _nearest_rank(ordered, q)

    def latencies(self) -> list[float]:
        """A copy of every observed per-command wall latency."""
        with self._lock:
            return list(self._latencies_s)

    def counters_snapshot(self) -> dict[str, int]:
        """The deterministic counters only — the serial-vs-concurrent
        parity surface (wall-clock fields intentionally excluded)."""
        with self._lock:
            return {
                "commands": self.commands,
                "entries_returned": self.entries_returned,
                "tuples_examined": self.tuples_examined,
                "cache_hits": self.cache_hits,
                "prefetch_hits": self.prefetch_hits,
            }

    def observe(self, envelope: OutcomeEnvelope, wall_s: float) -> None:
        """Fold one executed command into the running totals (thread-safe)."""
        now = time.monotonic()
        with self._lock:
            self.commands += 1
            self.entries_returned += envelope.entries_returned
            self.tuples_examined += envelope.tuples_examined
            self.cache_hits += envelope.cache_hits
            self.prefetch_hits += envelope.prefetch_hits
            self.remote_requests += envelope.remote_requests
            self.network_seconds += envelope.network_seconds
            self.simulated_seconds += envelope.duration_s
            self.wall_seconds += wall_s
            self.max_command_wall_s = max(self.max_command_wall_s, wall_s)
            self._latencies_s.append(wall_s)
            if self.first_command_monotonic is None:
                self.first_command_monotonic = now
            self.last_command_monotonic = now


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence (0 < q <= 1).

    The one quantile rule shared by per-session, aggregate and per-touch
    metrics — the implementation lives in
    :func:`repro.obs.stats.nearest_rank` so the reports can never
    silently diverge; this wrapper only maps the domain error onto
    :class:`ServiceError` for the service layer's callers.
    """
    try:
        return nearest_rank(ordered, q)
    except ValueError as exc:
        raise ServiceError(str(exc)) from exc


def _as_trace_context(trace: TraceContext | Mapping[str, Any] | None) -> TraceContext | None:
    """Normalize a caller-supplied trace handle (capsule, wire dict, or
    nothing) — malformed wire dicts degrade to untraced, never error."""
    if trace is None or isinstance(trace, TraceContext):
        return trace
    return TraceContext.from_dict(trace)


def _as_speculation_policy(
    speculation: "SpeculativePolicy | GestureTransitionModel | str | Path | bool | None",
) -> SpeculativePolicy | None:
    """Coerce the server's ``speculation`` knob into a policy (or None)."""
    if speculation is None or speculation is False:
        return None
    if speculation is True:
        return SpeculativePolicy(GestureTransitionModel())
    if isinstance(speculation, SpeculativePolicy):
        return speculation
    if isinstance(speculation, GestureTransitionModel):
        return SpeculativePolicy(speculation)
    if isinstance(speculation, (str, Path)):
        return SpeculativePolicy(GestureTransitionModel.load(speculation))
    raise ServiceError(
        "speculation= takes a SpeculativePolicy, a GestureTransitionModel, "
        f"a checkpoint path, or a bool — not {type(speculation).__name__}"
    )


class MultiSessionServer:
    """Hosts N independent exploration sessions behind the service protocol.

    Each session gets its own service instance from ``service_factory`` —
    its own device, kernel, caches and clock — so concurrent explorations
    cannot bleed state into each other.  Two serving modes share one API:

    **Serial (default, ``scheduler=None``).**  ``execute`` runs the command
    inline on the calling thread — the PR-1 behaviour.  One thread serves
    everyone, so a session's think-time (the pause between a user's
    gestures) stalls the whole server.

    **Concurrent (``scheduler=SchedulerConfig(...)`` or a worker count).**
    Commands are queued per session and executed by a
    :class:`repro.core.scheduler.GestureScheduler` worker pool: different
    sessions run in parallel, each session stays strictly FIFO on one
    worker at a time, and think-time parks the session without occupying a
    worker.  Data loads (including ``replace=True`` reloads) route through
    the same per-session queue, so a reload lands at a well-defined point
    in the session's command order.  Per-session deterministic counters
    (see :meth:`SessionMetrics.counters_snapshot`) are bit-identical to a
    serial replay of the same traces.

    **Shared base storage.**  Columns/tables registered once via
    :meth:`load_shared_column` / :meth:`load_shared_table` are attached to
    every subsequently opened session *by reference*: N sessions over the
    same 1M-row dataset share one numpy buffer instead of copying it N
    times.  Shared objects are read-only by convention; everything mutable
    (views, sample hierarchies, touch caches, result streams) stays
    private per session.  A session that ``load_column(replace=True)``-s a
    shared name merely rebinds its *private* catalog entry — other
    sessions keep the shared data.
    """

    def __init__(
        self,
        service_factory: Callable[[], ExplorationService] | None = None,
        scheduler: SchedulerConfig | int | None = None,
        shared_index: IndexManager | bool | None = None,
        tracing: Tracer | TraceConfig | bool | None = None,
        speculation: SpeculativePolicy
        | GestureTransitionModel
        | str
        | Path
        | bool
        | None = None,
    ) -> None:
        self._factory = service_factory if service_factory is not None else LocalExplorationService
        if shared_index is True:
            shared_index = IndexManager()
        elif shared_index is False:
            shared_index = None
        #: one mined speculation policy adopted by every session: the
        #: ``speculation`` knob takes a ready policy, a trained
        #: transition model, a checkpoint path (the worker-config route),
        #: or True for an untrained placeholder policy
        self._speculation: SpeculativePolicy | None = _as_speculation_policy(speculation)
        #: one adaptive-index manager adopted by every session that
        #: attaches the shared base storage: cracks performed by one
        #: session's gestures shrink every session's selections (the
        #: manager's per-column locks make this scheduler-safe)
        self._shared_index: IndexManager | None = shared_index
        self._lock = threading.RLock()
        self._services: dict[str, ExplorationService] = {}
        self._metrics: dict[str, SessionMetrics] = {}
        self._ids = itertools.count(1)
        self._shared_columns: dict[str, Column] = {}
        self._shared_tables: dict[str, Table] = {}
        self._shared_hierarchies: dict[tuple[str, str | None], SampleHierarchy] = {}
        self._shared_stores: list[StoreCatalog] = []
        if isinstance(scheduler, int):
            scheduler = SchedulerConfig(num_workers=scheduler)
        self._scheduler_config = scheduler
        self._scheduler: GestureScheduler | None = None
        if scheduler is not None:
            self._scheduler = GestureScheduler(config=scheduler)
        #: the server's telemetry plane: always present (collectors are
        #: scrape-time and free until polled), tracing opt-in via the
        #: ``tracing`` knob — a TraceConfig/True enables per-gesture span
        #: trees recorded into the tracer's flight recorder
        self.telemetry = TelemetryRegistry()
        if tracing is True:
            tracing = TraceConfig()
        if isinstance(tracing, Tracer):
            self.tracer = tracing
        elif isinstance(tracing, TraceConfig):
            self.tracer = Tracer(tracing, registry=self.telemetry)
        else:
            # even a disabled tracer registers its (all-zero) counters, so
            # an untraced deployment still scrapes a complete schema
            self.tracer = Tracer(TraceConfig(enabled=False), registry=self.telemetry)
        if self._scheduler is not None:
            self.telemetry.register_collector("scheduler", self._scheduler.stats.snapshot)
        self.telemetry.register_collector("index", self.index_stats)
        self.telemetry.register_collector("storage", self.storage_stats)
        self.telemetry.register_collector("server", self.aggregate_metrics)
        self.telemetry.register_collector("speculation", self.speculation_stats)
        if self.tracer.recorder is not None:
            self.telemetry.register_collector(
                "flight_recorder", self.tracer.recorder.stats_snapshot
            )

    # ------------------------------------------------------------------ #
    # serving-mode introspection
    # ------------------------------------------------------------------ #
    @property
    def concurrent(self) -> bool:
        """Whether commands execute on the scheduler's worker pool."""
        return self._scheduler is not None

    @property
    def scheduler(self) -> GestureScheduler | None:
        """The gesture scheduler (``None`` in serial mode)."""
        return self._scheduler

    def scheduler_stats(self) -> dict[str, int] | None:
        """Snapshot of the scheduler's counters (``None`` in serial mode)."""
        if self._scheduler is None:
            return None
        return self._scheduler.stats.snapshot()

    def queue_depth(self, session_id: str | None = None) -> int:
        """Commands queued or executing (one session, or server-wide)."""
        if self._scheduler is None:
            return 0
        return self._scheduler.queue_depth(session_id)

    # ------------------------------------------------------------------ #
    # session lifecycle
    # ------------------------------------------------------------------ #
    def open_session(
        self, session_id: str | None = None, attach_shared: bool = True
    ) -> str:
        """Create a fresh, isolated session and return its identifier.

        With ``attach_shared`` (the default), every shared column/table
        already loaded on the server is registered into the new session's
        catalog by reference (local backends only — backends without a
        catalog skip the attachment).
        """
        with self._lock:
            if session_id is None:
                session_id = f"session-{next(self._ids)}"
            if session_id in self._services:
                raise ServiceError(f"session {session_id!r} is already open")
            service = self._factory()
            if attach_shared:
                self._attach_shared(service)
            config = self._scheduler_config
            if config is not None and config.result_retention is not None:
                set_retention = getattr(service, "set_result_retention", None)
                if set_retention is not None:
                    # result backpressure: streams enforce the bound at
                    # emission time for the session's whole lifetime
                    set_retention(config.result_retention)
            self._services[session_id] = service
            self._metrics[session_id] = SessionMetrics()
        if self._scheduler is not None:
            try:
                self._scheduler.register_session(session_id)
            except ServiceError:
                with self._lock:
                    del self._services[session_id]
                    del self._metrics[session_id]
                raise
        return session_id

    def close_session(self, session_id: str) -> SessionMetrics:
        """Drop a session's service and return its final metrics.

        In concurrent mode the session's queued-but-unstarted commands are
        cancelled and its in-flight command (if any) is waited out first.
        """
        self.service(session_id)
        if self._scheduler is not None:
            self._scheduler.unregister_session(session_id)
        with self._lock:
            del self._services[session_id]
            return self._metrics.pop(session_id)

    def service(self, session_id: str) -> ExplorationService:
        """The backing service of one session."""
        with self._lock:
            if session_id not in self._services:
                raise ServiceError(f"no open session named {session_id!r}")
            return self._services[session_id]

    @property
    def session_ids(self) -> list[str]:
        """Identifiers of all open sessions."""
        with self._lock:
            return sorted(self._services)

    def __len__(self) -> int:
        with self._lock:
            return len(self._services)

    def __enter__(self) -> "MultiSessionServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown(wait=exc_type is None)
        return False

    # ------------------------------------------------------------------ #
    # shared read-only base storage
    # ------------------------------------------------------------------ #
    def load_shared_column(self, name: str, values: Iterable) -> Column:
        """Register one column to be shared, by reference, by all sessions.

        The column is registered into each subsequently opened session's
        private catalog without copying the underlying numpy buffer.
        Shared objects are read-only by convention; sessions opened before
        the load do not see it.
        """
        column = _as_named_column(name, values)
        with self._lock:
            if name in self._shared_tables:
                raise ServiceError(f"shared name {name!r} already used by a table")
            self._shared_columns[name] = column
        return column

    def load_shared_table(self, name: str, data: Mapping[str, Iterable] | Table) -> Table:
        """Register one table to be shared, by reference, by all sessions."""
        table = data if isinstance(data, Table) else Table.from_arrays(name, data)
        with self._lock:
            if name in self._shared_columns:
                raise ServiceError(f"shared name {name!r} already used by a column")
            self._shared_tables[name] = table
        return table

    def load_shared_store(self, snapshot: StoreCatalog) -> list[str]:
        """Attach a persisted snapshot as shared, out-of-core base storage.

        Every table and standalone column in the
        :class:`repro.persist.snapshot.StoreCatalog` is registered shared:
        sessions opened afterwards explore
        :class:`repro.persist.paged_column.PagedColumn`-backed objects over
        *one* read-only mapping per column — N sessions, zero copies, and
        resident bytes bounded by the store's chunk-cache budget rather
        than the dataset size.  The snapshot's materialized sample
        hierarchies ride along: each new session adopts them (via
        :meth:`repro.storage.sample.SampleHierarchy.share`, so level lists
        stay session-private), which is the warm cold-start — no CSV
        re-ingest, no sample re-striding, first gesture served from mmap.
        Returns the shared object names.
        """
        names: list[str] = []
        for table_name in snapshot.table_names:
            self.load_shared_table(table_name, snapshot.load_table(table_name))
            names.append(table_name)
        for column_name in snapshot.column_names:
            self.load_shared_column(column_name, snapshot.load_column(column_name))
            names.append(column_name)
        with self._lock:
            for key in snapshot.iter_hierarchy_keys():
                hierarchy = snapshot.load_hierarchy(*key)
                if hierarchy is not None:
                    self._shared_hierarchies[key] = hierarchy
            # keep the catalog itself: its chunk cache and memory budget
            # are the storage tier's observability surface (storage_stats)
            self._shared_stores.append(snapshot)
        return names

    @property
    def shared_object_names(self) -> list[str]:
        """Names of every shared column and table."""
        with self._lock:
            return sorted([*self._shared_columns, *self._shared_tables])

    @property
    def index_manager(self) -> IndexManager | None:
        """The shared adaptive-index manager (``None`` when not enabled)."""
        return self._shared_index

    def index_stats(self) -> dict[str, int] | None:
        """Adaptive-index counters and gauges for this server.

        With a shared index, the shared manager's snapshot; otherwise the
        key-wise sum over every open session's private manager (``None``
        when no session has indexing enabled).  Like the per-service
        snapshot this is load-dependent observability, kept separate from
        the :meth:`counters_report` parity surface.
        """
        if self._shared_index is not None:
            return self._shared_index.stats_snapshot()
        with self._lock:
            services = list(self._services.values())
        totals: dict[str, int] = {}
        seen = False
        for service in services:
            stats = getattr(service, "index_stats", None)
            report = stats() if callable(stats) else None
            if report is None:
                continue
            seen = True
            for key, value in report.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals if seen else None

    @property
    def speculation(self) -> SpeculativePolicy | None:
        """The shared mined speculation policy (``None`` when not enabled)."""
        return self._speculation

    def speculation_stats(self) -> dict[str, int] | None:
        """Mined-speculation counters for this server.

        With a shared policy, its snapshot; otherwise the key-wise sum
        over every open session's private policy (``None`` when no
        session speculates).  Load-dependent observability like
        :meth:`index_stats`, kept out of the :meth:`counters_report`
        parity surface.
        """
        if self._speculation is not None:
            return self._speculation.stats_snapshot()
        with self._lock:
            services = list(self._services.values())
        totals: dict[str, int] = {}
        seen = False
        for service in services:
            stats = getattr(service, "speculation_stats", None)
            report = stats() if callable(stats) else None
            if report is None:
                continue
            seen = True
            for key, value in report.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals if seen else None

    def storage_stats(self) -> dict[str, int] | None:
        """Chunk-cache and memory-budget counters of the attached stores.

        Key-wise sums over every shared :class:`StoreCatalog` this server
        attached (``None`` when serving purely in-memory) — the storage
        tier's observability surface, reachable here and through the
        sharded ``stats``/``telemetry`` verbs instead of only by poking
        the store object directly.  Load-dependent like
        :meth:`index_stats`; never part of the parity surface.
        """
        with self._lock:
            stores = list(self._shared_stores)
        if not stores:
            return None
        totals = {
            "chunk_hits": 0,
            "chunk_misses": 0,
            "chunk_insertions": 0,
            "chunk_evictions": 0,
            "bytes_cached": 0,
            "cache_capacity_bytes": 0,
        }
        budgets: list[Any] = []
        for catalog in stores:
            cache = catalog.store.cache
            stats = cache.stats
            totals["chunk_hits"] += stats.hits
            totals["chunk_misses"] += stats.misses
            totals["chunk_insertions"] += stats.insertions
            totals["chunk_evictions"] += stats.evictions
            totals["bytes_cached"] += stats.bytes_cached
            totals["cache_capacity_bytes"] += cache.capacity_bytes
            budget = getattr(cache, "_budget", None)
            if budget is not None and all(budget is not b for b in budgets):
                budgets.append(budget)
        if budgets:
            totals["budget_capacity_bytes"] = sum(b.capacity_bytes for b in budgets)
            totals["budget_used_bytes"] = sum(b.used_bytes for b in budgets)
            totals["budget_participants"] = sum(len(b.participants) for b in budgets)
        return totals

    # ------------------------------------------------------------------ #
    # telemetry: traces and the merged snapshot
    # ------------------------------------------------------------------ #
    @property
    def flight_recorder(self) -> FlightRecorder | None:
        """The tracer's flight recorder (``None`` with tracing off)."""
        return self.tracer.recorder

    def drain_traces(self) -> list[Trace]:
        """Drain the flight recorder's completed traces (oldest first)."""
        recorder = self.tracer.recorder
        return recorder.drain() if recorder is not None else []

    def drain_slow_traces(self) -> list[Trace]:
        """Drain the slow-gesture log (oldest first)."""
        recorder = self.tracer.recorder
        return recorder.drain_slow() if recorder is not None else []

    def telemetry_snapshot(self) -> dict[str, float]:
        """One merged numeric snapshot of every registered island."""
        return self.telemetry.snapshot()

    def exposition(self) -> str:
        """The merged snapshot in Prometheus text exposition format."""
        return self.telemetry.exposition()

    def _attach_shared(self, service: ExplorationService) -> None:
        """Register shared objects into a fresh service's private catalog."""
        catalog = getattr(service, "catalog", None)
        if catalog is None:
            return  # remote-style backend: nothing to attach into
        for column in self._shared_columns.values():
            catalog.register_column(column)
        for table in self._shared_tables.values():
            catalog.register_table(table)
        for (object_name, column_name), hierarchy in self._shared_hierarchies.items():
            # share(): same materialized sample columns, private level list
            catalog.adopt_hierarchy(object_name, column_name, hierarchy.share())
        if self._shared_index is not None:
            adopt = getattr(service, "adopt_index_manager", None)
            if adopt is not None:
                adopt(self._shared_index)
        if self._speculation is not None:
            adopt_policy = getattr(service, "adopt_speculation", None)
            if adopt_policy is not None:
                adopt_policy(self._speculation)

    # ------------------------------------------------------------------ #
    # data loading and execution
    # ------------------------------------------------------------------ #
    def load_column(
        self, session_id: str, name: str, values: Iterable, replace: bool = False
    ) -> Column:
        """Load a column into one session's backend (session-private).

        In concurrent mode the load routes through the session's FIFO
        queue, so a mid-traffic ``replace=True`` reload lands *after*
        every previously submitted command and *before* every later one —
        no update can be lost between interleaved gestures.
        """

        def load() -> Column:
            service = self.service(session_id)
            if replace:
                if not _accepts_replace(service.load_column):
                    raise ServiceError(
                        f"the {getattr(service, 'backend', '?')!r} backend does "
                        "not support replace-reloads via load_column()"
                    )
                return service.load_column(name, values, replace=True)
            return service.load_column(name, values)

        if self._scheduler is not None:
            return self._scheduler.submit(session_id, load).result()
        return load()

    def load_table(
        self,
        session_id: str,
        name: str,
        data: Mapping[str, Iterable] | Table,
        replace: bool = False,
    ) -> Table:
        """Load a table into one session's backend (local backends only)."""

        def load() -> Table:
            service = self.service(session_id)
            loader = getattr(service, "load_table", None)
            if loader is None:
                raise ServiceError(
                    f"the {getattr(service, 'backend', '?')!r} backend has no load_table"
                )
            if replace:
                return loader(name, data, replace=True)
            return loader(name, data)

        if self._scheduler is not None:
            return self._scheduler.submit(session_id, load).result()
        return load()

    def append_rows(
        self,
        session_id: str,
        object_name: str,
        values: Iterable | None = None,
        columns: Mapping[str, Iterable] | None = None,
        merge: bool = True,
        trace: TraceContext | Mapping[str, Any] | None = None,
    ) -> int:
        """Append rows to one session's loaded object; returns its new length.

        Like :meth:`load_column`, the append routes through the session's
        FIFO queue in concurrent mode, so it lands at a well-defined point
        in the session's command order.  With ``merge`` (the default) the
        cracked-index tail merge is scheduled on the scheduler's
        background lane — gestures keep flowing and tail-scan until the
        merge folds the appended rows into the pieces; in serial mode the
        merge runs inline after the append.  A sampled append trace
        continues onto the background lane: the merge records its span as
        a second partial under the same trace id, stitched back under the
        append span by :func:`repro.obs.trace.stitch_traces`.
        """
        ctx = _as_trace_context(trace)

        def append() -> tuple[int, TraceContext | None]:
            service = self.service(session_id)
            appender = getattr(service, "append_rows", None)
            if appender is None:
                raise ServiceError(
                    f"the {getattr(service, 'backend', '?')!r} backend has no append_rows"
                )
            with self.tracer.gesture(
                "append", ctx=ctx, session=session_id, object=object_name
            ) as root:
                new_length = appender(object_name, values=values, columns=columns)
                # captured before the root closes so the background merge
                # attaches *under* the append span, not beside it
                merge_ctx = root.context() if root is not None else None
            return new_length, merge_ctx

        def merge_in_background(merge_ctx: TraceContext | None) -> int:
            if merge_ctx is None:  # the append wasn't sampled: merge untraced too
                return self._merge_tails(session_id, object_name)
            with self.tracer.gesture(
                "merge_tails", ctx=merge_ctx, lane="background", object=object_name
            ):
                return self._merge_tails(session_id, object_name)

        if self._scheduler is not None:
            new_length, merge_ctx = self._scheduler.submit(session_id, append).result()
            if merge:
                self._scheduler.submit_background(
                    lambda: merge_in_background(merge_ctx)
                )
            return new_length
        new_length, merge_ctx = append()
        if merge:
            merge_in_background(merge_ctx)
        return new_length

    def _merge_tails(self, session_id: str, object_name: str) -> int:
        """Fold appended index tails in; tolerant of a just-closed session."""
        if self._shared_index is not None:
            return self._shared_index.merge_tails(object_name)
        try:
            service = self.service(session_id)
        except ServiceError:
            return 0  # session closed before the background merge ran
        merger = getattr(service, "merge_index_tails", None)
        return merger(object_name) if callable(merger) else 0

    def _execute_direct(
        self,
        session_id: str,
        command: GestureCommand,
        trace: TraceContext | None = None,
        queued_monotonic: float | None = None,
    ) -> OutcomeEnvelope:
        """Execute one command inline, recording its latency (and, when
        sampled, its span tree — the tracer activates the trace on *this*
        thread, which in concurrent mode is the scheduler worker, so the
        kernel's ambient child spans attach to the right gesture)."""
        service = self.service(session_id)
        metrics = self.metrics(session_id)
        started = time.perf_counter()
        queue_wait_s = (started - queued_monotonic) if queued_monotonic is not None else None
        with self.tracer.gesture(
            command.kind, ctx=trace, queue_wait_s=queue_wait_s, session=session_id
        ):
            envelope = service.execute(command)
        metrics.observe(envelope, time.perf_counter() - started)
        self._schedule_speculation(service)
        return envelope

    def _schedule_speculation(self, service: ExplorationService) -> None:
        """Run the session's pending speculative warm-up, if any.

        Concurrent mode ships the job to the scheduler's background lane
        so gestures never wait on warming; serial mode runs it inline
        (warm-ups only touch caches and the policy's staging store, so
        either way the command stream's counters are unaffected).
        """
        take = getattr(service, "take_speculation", None)
        if take is None:
            return
        job = take()
        if job is None:
            return
        if self._scheduler is not None:
            self._scheduler.submit_background(job)
        else:
            job()

    def execute(
        self,
        session_id: str,
        command: GestureCommand,
        trace: TraceContext | Mapping[str, Any] | None = None,
    ) -> OutcomeEnvelope:
        """Execute one command in one session and wait for its outcome.

        In concurrent mode this submits to the session's queue and blocks
        for the result, so it composes correctly with earlier ``submit``
        calls (FIFO order is preserved).  ``trace`` optionally continues a
        distributed trace (a :class:`repro.obs.trace.TraceContext` or its
        wire dict).
        """
        if self._scheduler is not None:
            return self.submit(session_id, command, trace=trace).result()
        return self._execute_direct(session_id, command, trace=_as_trace_context(trace))

    def submit(
        self,
        session_id: str,
        command: GestureCommand,
        think_s: float = 0.0,
        trace: TraceContext | Mapping[str, Any] | None = None,
    ):
        """Queue one command for asynchronous execution; returns its future.

        ``think_s`` is the user's pause before this command (enforced from
        the completion of the session's previous command).  Concurrent
        mode only.  The submit time is captured here so a sampled trace
        records the scheduler ``queue_wait`` as its first child span.
        """
        if self._scheduler is None:
            raise ServiceError(
                "submit() needs a concurrent server; construct "
                "MultiSessionServer(scheduler=SchedulerConfig(...))"
            )
        ctx = _as_trace_context(trace)
        queued = time.perf_counter() if self.tracer.enabled else None
        return self._scheduler.submit(
            session_id,
            lambda: self._execute_direct(
                session_id, command, trace=ctx, queued_monotonic=queued
            ),
            think_s,
        )

    def submit_script(
        self,
        session_id: str,
        script: GestureScript,
        think_s: float = 0.0,
        trace: TraceContext | Mapping[str, Any] | None = None,
    ):
        """Queue a whole script; returns one future per command.

        One ``trace`` context covers the whole script: each command's
        gesture span joins the same distributed trace, which is how a
        multi-command script shows up as one tree instead of N roots.
        """
        return [
            self.submit(session_id, command, think_s=think_s, trace=trace)
            for command in script
        ]

    def run(self, session_id: str, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script in one session."""
        return [self.execute(session_id, command) for command in script]

    def replay_traces(
        self, traces: Mapping[str, Sequence[TimedCommand]]
    ) -> dict[str, list[OutcomeEnvelope]]:
        """Drive a multi-user trace set to completion; envelopes per session.

        The one entry point both serving modes share, so a benchmark can
        compare identical workloads.  Serial mode interleaves sessions
        round-robin on the calling thread and must *sleep out* every
        command's think-time inline; concurrent mode submits each trace to
        its session queue, where think-times overlap across sessions.
        """
        order = [sid for sid in traces]
        if self._scheduler is not None:
            futures = {
                sid: [
                    self.submit(sid, timed.command, think_s=timed.think_s)
                    for timed in traces[sid]
                ]
                for sid in order
            }
            return {sid: [f.result() for f in futures[sid]] for sid in order}
        envelopes: dict[str, list[OutcomeEnvelope]] = {sid: [] for sid in order}
        longest = max((len(traces[sid]) for sid in order), default=0)
        for index in range(longest):
            for sid in order:
                trace = traces[sid]
                if index >= len(trace):
                    continue
                timed = trace[index]
                if timed.think_s > 0:
                    time.sleep(timed.think_s)
                envelopes[sid].append(self.execute(sid, timed.command))
        return envelopes

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every queued command has executed (concurrent mode)."""
        if self._scheduler is None:
            return True
        return self._scheduler.drain(timeout=timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool (no-op in serial mode).

        With ``wait`` the pool drains every queue first; otherwise queued
        commands are cancelled and only in-flight ones complete.
        """
        if self._scheduler is not None:
            self._scheduler.shutdown(wait=wait, cancel_pending=not wait)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def metrics(self, session_id: str) -> SessionMetrics:
        """Per-session metrics for one open session."""
        with self._lock:
            if session_id not in self._metrics:
                raise ServiceError(f"no open session named {session_id!r}")
            return self._metrics[session_id]

    def counters_report(self) -> dict[str, dict[str, int]]:
        """Per-session deterministic counters for every open session.

        The serving tier's parity surface: a sharded worker answers the
        ``stats`` protocol verb with this, and the front door merges the
        reports across workers — the counters must match a serial replay
        of the same traces bit for bit.
        """
        with self._lock:
            metrics = dict(self._metrics)
        return {sid: m.counters_snapshot() for sid, m in sorted(metrics.items())}

    def aggregate_metrics(self) -> dict[str, float]:
        """Totals, latency percentiles and throughput across open sessions."""
        with self._lock:
            sessions = list(self._metrics.values())
            services = list(self._services.values())
        pooled: list[float] = []
        firsts: list[float] = []
        lasts: list[float] = []
        for m in sessions:
            pooled.extend(m.latencies())
            if m.first_command_monotonic is not None:
                firsts.append(m.first_command_monotonic)
            if m.last_command_monotonic is not None:
                lasts.append(m.last_command_monotonic)
        totals = {
            "sessions": float(len(sessions)),
            "commands": float(sum(m.commands for m in sessions)),
            "entries_returned": float(sum(m.entries_returned for m in sessions)),
            "tuples_examined": float(sum(m.tuples_examined for m in sessions)),
            "cache_hits": float(sum(m.cache_hits for m in sessions)),
            "prefetch_hits": float(sum(m.prefetch_hits for m in sessions)),
            "remote_requests": float(sum(m.remote_requests for m in sessions)),
            "network_seconds": sum(m.network_seconds for m in sessions),
            "wall_seconds": sum(m.wall_seconds for m in sessions),
            "results_dropped": float(
                sum(
                    drops()
                    for s in services
                    if (drops := getattr(s, "result_drops", None)) is not None
                )
            ),
            "max_command_wall_s": max(
                (m.max_command_wall_s for m in sessions), default=0.0
            ),
            "queue_depth": float(self.queue_depth()),
        }
        total_commands = totals["commands"]
        totals["mean_command_wall_s"] = (
            totals["wall_seconds"] / total_commands if total_commands else 0.0
        )
        pooled.sort()
        totals["p50_command_wall_s"] = _nearest_rank(pooled, 0.5)
        totals["p95_command_wall_s"] = _nearest_rank(pooled, 0.95)
        span = (max(lasts) - min(firsts)) if firsts and lasts else 0.0
        totals["throughput_cps"] = total_commands / span if span > 0.0 else 0.0
        return totals
