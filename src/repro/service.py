"""Backend-agnostic exploration services: one gesture protocol, many hosts.

The dbTouch paper describes a query as a session of continuous gestures and
explicitly sketches a remote deployment where the device keeps only small
samples while a server holds the base data (Section 2.9).  This module is
the seam that makes both worlds speak the same language:

* :class:`ExplorationService` — the protocol: ``execute`` one
  :class:`repro.core.commands.GestureCommand`, or ``run`` a whole
  :class:`repro.core.commands.GestureScript`, returning
  :class:`OutcomeEnvelope` objects either way;
* :class:`LocalExplorationService` — the in-process path: a private
  catalog/device/kernel/synthesizer per service;
* :class:`RemoteExplorationService` — gestures synthesized device-side,
  touches answered from device-local samples and refined over a
  :class:`repro.remote.network.SimulatedLink` under a
  :class:`repro.remote.client.RemotePolicy`;
* :class:`MultiSessionServer` — N independent services behind one façade,
  with per-session and aggregate metrics (the concurrency substrate for
  sharding and scale-out work).

:class:`repro.ExplorationSession` is a thin facade over a service: every
imperative method builds a command and calls ``execute``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.core.actions import ActionKind, QueryAction
from repro.core.commands import (
    ChooseAction,
    DragColumnOut,
    GestureCommand,
    GestureScript,
    GroupColumns,
    Pan,
    Rotate,
    ShowColumn,
    ShowTable,
    Slide,
    SlidePath,
    Tap,
    UngroupTable,
    ZoomIn,
    ZoomOut,
)
from repro.core.batch import dedupe_slide_batch
from repro.core.kernel import DbTouchKernel, GestureOutcome, KernelConfig
from repro.core.schema_gestures import (
    SchemaGestureOutcome,
    SchemaGestures,
    pan_view_frame,
)
from repro.core.touch_mapping import TouchMapper
from repro.engine.aggregate import AggregateKind, make_aggregate
from repro.errors import RemoteError, ServiceError
from repro.remote.client import RemoteExplorationClient, RemotePolicy
from repro.remote.network import WAN, NetworkProfile, SimulatedLink
from repro.remote.server import RemoteServer
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table
from repro.touchio.device import DeviceProfile, IPAD1, TouchDevice
from repro.touchio.events import TouchStream
from repro.touchio.recognizer import GestureRecognizer, GestureType
from repro.touchio.synthesizer import GestureSynthesizer
from repro.touchio.views import View, make_column_view


@dataclass
class OutcomeEnvelope:
    """What a service hands back for one executed command.

    The metric fields mirror :meth:`repro.core.kernel.GestureOutcome.counters`
    so local and remote backends report the same measurement surface;
    ``remote_requests`` / ``network_seconds`` stay zero on the local path.
    ``payload`` carries the backend-native outcome object (a
    :class:`GestureOutcome`, a :class:`SchemaGestureOutcome`, a
    :class:`repro.touchio.views.View` for show commands, or ``None``).
    """

    command_kind: str
    backend: str
    view_name: str | None = None
    object_name: str | None = None
    entries_returned: int = 0
    tuples_examined: int = 0
    cache_hits: int = 0
    prefetch_hits: int = 0
    duration_s: float = 0.0
    max_touch_latency_s: float = 0.0
    remote_requests: int = 0
    network_seconds: float = 0.0
    payload: Any = None

    def to_dict(self) -> dict[str, Any]:
        """The envelope's wire format: metrics only, no live objects."""
        return {
            "command_kind": self.command_kind,
            "backend": self.backend,
            "view_name": self.view_name,
            "object_name": self.object_name,
            "entries_returned": self.entries_returned,
            "tuples_examined": self.tuples_examined,
            "cache_hits": self.cache_hits,
            "prefetch_hits": self.prefetch_hits,
            "duration_s": self.duration_s,
            "max_touch_latency_s": self.max_touch_latency_s,
            "remote_requests": self.remote_requests,
            "network_seconds": self.network_seconds,
        }


def default_axis(view: View) -> str:
    """Slide axis implied by a view's orientation (shared by all backends)."""
    props = view.properties
    if props is not None and props.orientation == "horizontal":
        return "horizontal"
    return "vertical"


def synthesize_touch_stream(
    synthesizer: GestureSynthesizer,
    view: View,
    command: Slide | SlidePath | Tap,
    now: float,
) -> TouchStream:
    """Turn a touch-gesture command into the stream a finger would produce.

    Both backends route through this one helper so the local kernel and the
    remote device side always see identical touch streams for the same
    command — the precondition for local-vs-remote parity.
    """
    axis = getattr(command, "axis", None)
    if axis is None:
        axis = default_axis(view)
    if isinstance(command, Slide):
        return synthesizer.slide(
            view,
            duration=command.duration,
            start_fraction=command.start_fraction,
            end_fraction=command.end_fraction,
            axis=axis,
            cross_fraction=command.cross_fraction,
            start_time=now,
        )
    if isinstance(command, SlidePath):
        return synthesizer.slide_path(
            view,
            list(command.segments),
            axis=axis,
            cross_fraction=command.cross_fraction,
            start_time=now,
        )
    if isinstance(command, Tap):
        return synthesizer.tap(view, fraction=command.fraction, axis=axis, start_time=now)
    raise ServiceError(f"cannot synthesize a touch stream for command {command.kind!r}")


@runtime_checkable
class ExplorationService(Protocol):
    """The backend-agnostic exploration protocol.

    This is the full contract :class:`repro.ExplorationSession` and
    :class:`MultiSessionServer` rely on: command execution plus host-side
    data loading and state recycling.  Backend-specific extras (``catalog``,
    ``kernel``, ``load_table`` on the local backend; ``server``, ``link``
    on the remote one) are intentionally outside the protocol.
    """

    def execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one gesture command and return its outcome envelope."""
        ...

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script, one envelope per command."""
        ...

    def load_column(self, name: str, values: Iterable) -> Column:
        """Make a standalone column available to the backend under ``name``."""
        ...

    def reset(self) -> None:
        """Discard the backend's exploration state so it can be reused."""
        ...


def _as_named_column(name: str, values: Iterable) -> Column:
    """Normalize raw values / an existing Column to a column named ``name``."""
    column = values if isinstance(values, Column) else Column(name, values)
    if column.name != name:
        column = column.rename(name)
    return column


# --------------------------------------------------------------------- #
# the in-process backend
# --------------------------------------------------------------------- #


class LocalExplorationService:
    """The in-process backend: a private catalog, device and dbTouch kernel.

    This is the execution path :class:`repro.ExplorationSession` always had;
    it is now addressable through the command protocol so recorded scripts
    replay on it and :class:`MultiSessionServer` can host many instances.
    """

    backend = "local"

    def __init__(
        self,
        profile: DeviceProfile = IPAD1,
        config: KernelConfig | None = None,
        jitter_cm: float = 0.0,
        seed: int = 11,
    ) -> None:
        self.profile = profile
        self.config = config
        self.jitter_cm = jitter_cm
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Discard all catalog/device/kernel state and start fresh."""
        self.catalog = Catalog()
        self.device = TouchDevice(self.profile)
        self.kernel = DbTouchKernel(self.catalog, self.device, self.config)
        self.synthesizer = GestureSynthesizer(
            self.profile, jitter_cm=self.jitter_cm, seed=self.seed
        )
        self.schema_gestures = SchemaGestures(self.kernel)

    # ------------------------------------------------------------------ #
    # host-side data management (not part of the command vocabulary)
    # ------------------------------------------------------------------ #
    def load_column(self, name: str, values: Iterable, replace: bool = False) -> Column:
        """Register a standalone column in the service's catalog.

        With ``replace``, an already-registered column of the same name is
        overwritten (a data reload): stale sample hierarchies are dropped,
        shown views are re-bound to the new data and every touched-range
        cache entry derived from the object is invalidated.
        """
        column = _as_named_column(name, values)
        self.catalog.register_column(column, replace=replace)
        if replace:
            self.kernel.refresh_object(name)
        return column

    def load_table(
        self, name: str, data: Mapping[str, Iterable] | Table, replace: bool = False
    ) -> Table:
        """Register a table in the service's catalog.

        ``replace`` reloads an existing table; see :meth:`load_column`.
        """
        table = data if isinstance(data, Table) else Table.from_arrays(name, data)
        self.catalog.register_table(table, replace=replace)
        if replace:
            self.kernel.refresh_object(name)
        return table

    # ------------------------------------------------------------------ #
    # the service protocol
    # ------------------------------------------------------------------ #
    def execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one gesture command against the in-process kernel."""
        if isinstance(command, ShowColumn):
            view = self.kernel.show_column(
                command.object_name,
                column_name=command.column_name,
                view_name=command.view_name,
                height_cm=command.height_cm,
                width_cm=command.width_cm,
                x=command.x,
                y=command.y,
            )
            return self._show_envelope(command, view, command.object_name)
        if isinstance(command, ShowTable):
            view = self.kernel.show_table(
                command.table_name,
                view_name=command.view_name,
                height_cm=command.height_cm,
                width_cm=command.width_cm,
                x=command.x,
                y=command.y,
            )
            return self._show_envelope(command, view, command.table_name)
        if isinstance(command, ChooseAction):
            self.kernel.set_action(command.view, command.action)
            return OutcomeEnvelope(
                command_kind=command.kind,
                backend=self.backend,
                view_name=command.view,
                object_name=self.kernel.state_of(command.view).object_name,
            )
        if isinstance(command, (Slide, SlidePath, Tap, ZoomIn, ZoomOut, Rotate)):
            stream = self._synthesize(command)
            self.device.advance_clock(stream.duration)
            outcome = self.kernel.handle_stream(stream)
            return self._gesture_envelope(command, outcome)
        if isinstance(command, Pan):
            moved = self.schema_gestures.pan_view(
                self._target_view(command.view), command.dx_cm, command.dy_cm
            )
            return self._schema_envelope(command, moved, view_name=command.view)
        if isinstance(command, DragColumnOut):
            dragged = self.schema_gestures.drag_column_out(
                self._target_view(command.table_view),
                command.column_name,
                new_object_name=command.new_object_name,
                x=command.x,
                y=command.y,
                height_cm=command.height_cm,
            )
            return self._schema_envelope(command, dragged, view_name=command.table_view)
        if isinstance(command, GroupColumns):
            grouped = self.schema_gestures.group_columns(
                list(command.column_object_names),
                command.table_name,
                x=command.x,
                y=command.y,
                height_cm=command.height_cm,
                width_cm=command.width_cm,
            )
            return self._schema_envelope(command, grouped, view_name=None)
        if isinstance(command, UngroupTable):
            split = self.schema_gestures.ungroup_table(
                self._target_view(command.table_view), height_cm=command.height_cm
            )
            return self._schema_envelope(command, split, view_name=command.table_view)
        raise ServiceError(
            f"the local backend does not understand command kind {command.kind!r}"
        )

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script in order."""
        return [self.execute(command) for command in script]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _target_view(self, view_name: str) -> View:
        # resolve through the kernel's object state, not the device's view
        # tree: when view names collide the kernel's last-shown object wins,
        # and gestures must land on the view the kernel will map against
        return self.kernel.state_of(view_name).view

    def _synthesize(self, command: GestureCommand) -> TouchStream:
        view = self._target_view(command.view)
        now = self.device.now
        if isinstance(command, (Slide, SlidePath, Tap)):
            return synthesize_touch_stream(self.synthesizer, view, command, now)
        if isinstance(command, (ZoomIn, ZoomOut)):
            return self.synthesizer.zoom(
                view,
                zoom_in=isinstance(command, ZoomIn),
                duration=command.duration,
                start_time=now,
            )
        if isinstance(command, Rotate):
            return self.synthesizer.rotate(view, duration=command.duration, start_time=now)
        raise ServiceError(f"cannot synthesize a stream for command {command.kind!r}")

    def _show_envelope(
        self, command: GestureCommand, view: View, object_name: str
    ) -> OutcomeEnvelope:
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=view.name,
            object_name=object_name,
            payload=view,
        )

    def _gesture_envelope(
        self, command: GestureCommand, outcome: GestureOutcome
    ) -> OutcomeEnvelope:
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=outcome.view_name,
            object_name=outcome.object_name,
            payload=outcome,
            **outcome.counters(),
        )

    def _schema_envelope(
        self,
        command: GestureCommand,
        outcome: SchemaGestureOutcome,
        view_name: str | None,
    ) -> OutcomeEnvelope:
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=view_name,
            payload=outcome,
        )


# --------------------------------------------------------------------- #
# the remote backend
# --------------------------------------------------------------------- #


@dataclass
class _RemoteObjectState:
    """Device-side state for one explored remote column."""

    view: View
    object_name: str
    client: RemoteExplorationClient
    action: QueryAction = field(default_factory=QueryAction)
    aggregate: Any = None
    last_rowid: int | None = None
    current_stride: int = 1


_SUMMARY_FUNCS: dict[AggregateKind, Callable[[np.ndarray], float]] = {
    AggregateKind.COUNT: lambda a: float(a.size),
    AggregateKind.SUM: lambda a: float(np.sum(a)),
    AggregateKind.AVG: lambda a: float(np.mean(a)),
    AggregateKind.MIN: lambda a: float(np.min(a)),
    AggregateKind.MAX: lambda a: float(np.max(a)),
    AggregateKind.STD: lambda a: float(np.std(a)),
}


class RemoteExplorationService:
    """Gesture exploration against a server that holds the base data.

    The device side synthesizes the same touch streams as the local backend
    (same device profile, synthesizer and touch→rowid mapping), but every
    touch is answered under a :class:`RemotePolicy`: immediately from the
    device-local sample, by shipping the touch over the simulated link, or
    hybrid — local answer first, remote refinement only when the gesture's
    granularity outruns the local sample.  The remote backend hosts
    standalone columns only; table-shaped commands raise
    :class:`repro.errors.RemoteError`.
    """

    backend = "remote"

    def __init__(
        self,
        server: RemoteServer | None = None,
        link: SimulatedLink | None = None,
        policy: RemotePolicy = RemotePolicy.HYBRID,
        profile: DeviceProfile = IPAD1,
        network_profile: NetworkProfile = WAN,
        local_sample_rows: int = 4096,
        jitter_cm: float = 0.0,
        seed: int = 11,
    ) -> None:
        self.server = server if server is not None else RemoteServer()
        self.link = link if link is not None else SimulatedLink(network_profile)
        self.policy = policy
        self.profile = profile
        self.local_sample_rows = local_sample_rows
        self.jitter_cm = jitter_cm
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Reset the device side (views, clients, clock); keep hosted data."""
        self.device = TouchDevice(self.profile)
        self.synthesizer = GestureSynthesizer(
            self.profile, jitter_cm=self.jitter_cm, seed=self.seed
        )
        self.recognizer = GestureRecognizer()
        self.mapper = TouchMapper()
        self.link.reset()
        self._states: dict[str, _RemoteObjectState] = {}

    # ------------------------------------------------------------------ #
    # host-side data management
    # ------------------------------------------------------------------ #
    def load_column(self, name: str, values: Iterable) -> Column:
        """Host a column on the remote server (mirrors the local signature)."""
        column = _as_named_column(name, values)
        self.server.host_column(column)
        return column

    # ------------------------------------------------------------------ #
    # the service protocol
    # ------------------------------------------------------------------ #
    def execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one gesture command through the remote machinery."""
        if isinstance(command, ShowColumn):
            return self._show_column(command)
        if isinstance(command, ChooseAction):
            return self._choose_action(command)
        if isinstance(command, (Slide, SlidePath, Tap)):
            return self._touch_gesture(command)
        if isinstance(command, (ZoomIn, ZoomOut)):
            return self._zoom(command)
        if isinstance(command, Rotate):
            return self._rotate(command)
        if isinstance(command, Pan):
            return self._pan(command)
        if isinstance(command, (ShowTable, DragColumnOut, GroupColumns, UngroupTable)):
            raise RemoteError(
                "the remote backend hosts standalone columns only; "
                f"command {command.kind!r} needs a table object"
            )
        raise ServiceError(
            f"the remote backend does not understand command kind {command.kind!r}"
        )

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script in order."""
        return [self.execute(command) for command in script]

    # ------------------------------------------------------------------ #
    # command handlers
    # ------------------------------------------------------------------ #
    def _state(self, view_name: str) -> _RemoteObjectState:
        if view_name not in self._states:
            raise RemoteError(f"no remote data object is shown under view {view_name!r}")
        return self._states[view_name]

    def _show_column(self, command: ShowColumn) -> OutcomeEnvelope:
        if command.column_name is not None:
            raise RemoteError(
                "the remote backend addresses hosted columns directly; "
                "table-attribute lookups are a local-backend feature"
            )
        if not self.server.hosts(command.object_name):
            raise RemoteError(
                f"server does not host a column named {command.object_name!r}; "
                "load_column() it before showing it"
            )
        column = self.server.column(command.object_name)
        name = command.view_name if command.view_name is not None else f"{command.object_name}-view"
        view = make_column_view(
            name=name,
            object_name=command.object_name,
            num_tuples=len(column),
            height_cm=command.height_cm,
            width_cm=command.width_cm,
            x=command.x,
            y=command.y,
            dtype_names=(column.dtype.name,),
            size_bytes=column.size_bytes,
        )
        self.device.add_view(view)
        client = RemoteExplorationClient(
            self.server,
            self.link,
            command.object_name,
            policy=self.policy,
            local_sample_rows=self.local_sample_rows,
        )
        self._states[name] = _RemoteObjectState(
            view=view, object_name=command.object_name, client=client
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=name,
            object_name=command.object_name,
            payload=view,
        )

    def _choose_action(self, command: ChooseAction) -> OutcomeEnvelope:
        state = self._state(command.view)
        action = command.action
        if action.kind not in (ActionKind.SCAN, ActionKind.AGGREGATE, ActionKind.SUMMARY):
            raise RemoteError(
                f"the remote backend supports scan/aggregate/summary actions, "
                f"not {action.kind.value!r}"
            )
        state.action = action
        state.aggregate = (
            make_aggregate(action.aggregate) if action.kind is ActionKind.AGGREGATE else None
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
        )

    def _touch_gesture(self, command: Slide | SlidePath | Tap) -> OutcomeEnvelope:
        state = self._state(command.view)
        stream = synthesize_touch_stream(self.synthesizer, state.view, command, self.device.now)
        self.device.advance_clock(stream.duration)
        gesture = self.recognizer.recognize(stream)
        requests_before = self.link.stats.requests
        seconds_before = self.link.stats.simulated_seconds
        outcome = GestureOutcome(
            gesture_type=gesture.gesture_type,
            view_name=gesture.view_name,
            object_name=state.object_name,
            duration_s=gesture.duration,
        )
        if gesture.gesture_type is GestureType.TAP:
            # a tap asks for the exact value under the finger and, like
            # the local kernel, leaves the slide-tracking state untouched
            mapped = self.mapper.map_touch(state.view, gesture.events[-1].primary)
            self._answer_touch(state, mapped.rowid, 1, outcome)
        else:
            # the whole slide is mapped and deduplicated in one numpy pass
            # (the same batched mapping the local kernel uses); each touch
            # is then answered under the remote policy as before
            mapped_batch = self.mapper.map_batch(
                state.view, gesture.events, active_only=True
            )
            if len(mapped_batch):
                keep, strides = dedupe_slide_batch(
                    mapped_batch.rowids, state.last_rowid, state.current_stride
                )
                kept = mapped_batch.rowids[keep]
                for rowid, stride in zip(kept.tolist(), strides.tolist()):
                    self._answer_touch(state, int(rowid), int(stride), outcome)
                if kept.size:
                    state.last_rowid = int(kept[-1])
                    state.current_stride = int(strides[-1])
        if state.aggregate is not None:
            outcome.final_aggregate = state.aggregate.current()
        envelope = OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=gesture.view_name,
            object_name=state.object_name,
            payload=outcome,
            **outcome.counters(),
        )
        envelope.remote_requests = self.link.stats.requests - requests_before
        envelope.network_seconds = self.link.stats.simulated_seconds - seconds_before
        return envelope

    def _answer_touch(
        self,
        state: _RemoteObjectState,
        rowid: int,
        stride: int,
        outcome: GestureOutcome,
    ) -> None:
        action = state.action
        outcome.rowids_touched.append(rowid)
        if action.kind is ActionKind.SUMMARY:
            value, examined, response_s = state.client.summary_touch(
                rowid, action.summary_k, stride, _SUMMARY_FUNCS[action.aggregate]
            )
        else:
            answer = state.client.touch(rowid, stride_hint=stride)
            value = (
                answer.refined_value
                if answer.refined_value is not None
                else answer.immediate_value
            )
            examined = 1
            response_s = answer.response_time_s
        outcome.tuples_examined += examined
        outcome.per_touch_latencies_s.append(response_s)
        if action.predicate is not None and not action.predicate.matches(value):
            return
        if state.aggregate is not None:
            state.aggregate.on_touch(rowid, value)
        outcome.entries_returned += 1

    def _zoom(self, command: ZoomIn | ZoomOut) -> OutcomeEnvelope:
        state = self._state(command.view)
        stream = self._gesture_stream(command, state)
        gesture = self.recognizer.recognize(stream)
        scale = gesture.scale if gesture.scale > 0 else 1.0
        state.view.resize(scale)
        outcome = GestureOutcome(
            gesture_type=gesture.gesture_type,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
            zoom_scale=scale,
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
            payload=outcome,
        )

    def _rotate(self, command: Rotate) -> OutcomeEnvelope:
        state = self._state(command.view)
        stream = self._gesture_stream(command, state)
        gesture = self.recognizer.recognize(stream)
        state.view.rotate()
        outcome = GestureOutcome(
            gesture_type=GestureType.ROTATE,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
        )
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
            duration_s=gesture.duration,
            payload=outcome,
        )

    def _gesture_stream(self, command: ZoomIn | ZoomOut | Rotate, state: _RemoteObjectState):
        now = self.device.now
        if isinstance(command, Rotate):
            stream = self.synthesizer.rotate(state.view, duration=command.duration, start_time=now)
        else:
            stream = self.synthesizer.zoom(
                state.view,
                zoom_in=isinstance(command, ZoomIn),
                duration=command.duration,
                start_time=now,
            )
        self.device.advance_clock(stream.duration)
        return stream

    def _pan(self, command: Pan) -> OutcomeEnvelope:
        state = self._state(command.view)
        moved = pan_view_frame(state.view, command.dx_cm, command.dy_cm, self.profile)
        return OutcomeEnvelope(
            command_kind=command.kind,
            backend=self.backend,
            view_name=command.view,
            object_name=state.object_name,
            payload=moved,
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def network_seconds(self) -> float:
        """Total simulated network time spent so far."""
        return self.link.stats.simulated_seconds

    def client_for(self, view_name: str) -> RemoteExplorationClient:
        """The device-side client answering touches for ``view_name``."""
        return self._state(view_name).client


# --------------------------------------------------------------------- #
# many sessions behind one protocol
# --------------------------------------------------------------------- #


@dataclass
class SessionMetrics:
    """Per-session accounting kept by :class:`MultiSessionServer`."""

    commands: int = 0
    entries_returned: int = 0
    tuples_examined: int = 0
    remote_requests: int = 0
    network_seconds: float = 0.0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    max_command_wall_s: float = 0.0

    @property
    def mean_command_wall_s(self) -> float:
        """Mean host-side execution time per command."""
        if not self.commands:
            return 0.0
        return self.wall_seconds / self.commands

    def observe(self, envelope: OutcomeEnvelope, wall_s: float) -> None:
        """Fold one executed command into the running totals."""
        self.commands += 1
        self.entries_returned += envelope.entries_returned
        self.tuples_examined += envelope.tuples_examined
        self.remote_requests += envelope.remote_requests
        self.network_seconds += envelope.network_seconds
        self.simulated_seconds += envelope.duration_s
        self.wall_seconds += wall_s
        self.max_command_wall_s = max(self.max_command_wall_s, wall_s)


class MultiSessionServer:
    """Hosts N independent exploration sessions behind the service protocol.

    Each session gets its own service instance from ``service_factory`` —
    its own catalog, device, kernel and clock — so concurrent explorations
    cannot bleed state into each other.  The server tracks per-session and
    aggregate metrics; later PRs can shard session IDs across processes
    without changing the protocol.
    """

    def __init__(
        self, service_factory: Callable[[], ExplorationService] | None = None
    ) -> None:
        self._factory = service_factory if service_factory is not None else LocalExplorationService
        self._services: dict[str, ExplorationService] = {}
        self._metrics: dict[str, SessionMetrics] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # session lifecycle
    # ------------------------------------------------------------------ #
    def open_session(self, session_id: str | None = None) -> str:
        """Create a fresh, isolated session and return its identifier."""
        if session_id is None:
            session_id = f"session-{next(self._ids)}"
        if session_id in self._services:
            raise ServiceError(f"session {session_id!r} is already open")
        self._services[session_id] = self._factory()
        self._metrics[session_id] = SessionMetrics()
        return session_id

    def close_session(self, session_id: str) -> SessionMetrics:
        """Drop a session's service and return its final metrics."""
        self.service(session_id)
        del self._services[session_id]
        return self._metrics.pop(session_id)

    def service(self, session_id: str) -> ExplorationService:
        """The backing service of one session."""
        if session_id not in self._services:
            raise ServiceError(f"no open session named {session_id!r}")
        return self._services[session_id]

    @property
    def session_ids(self) -> list[str]:
        """Identifiers of all open sessions."""
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)

    # ------------------------------------------------------------------ #
    # data loading and execution
    # ------------------------------------------------------------------ #
    def load_column(self, session_id: str, name: str, values: Iterable) -> Column:
        """Load a column into one session's backend."""
        return self.service(session_id).load_column(name, values)

    def execute(self, session_id: str, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one command in one session, tracking its latency."""
        service = self.service(session_id)
        started = time.perf_counter()
        envelope = service.execute(command)
        self._metrics[session_id].observe(envelope, time.perf_counter() - started)
        return envelope

    def run(self, session_id: str, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script in one session."""
        return [self.execute(session_id, command) for command in script]

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def metrics(self, session_id: str) -> SessionMetrics:
        """Per-session metrics for one open session."""
        if session_id not in self._metrics:
            raise ServiceError(f"no open session named {session_id!r}")
        return self._metrics[session_id]

    def aggregate_metrics(self) -> dict[str, float]:
        """Totals and latency statistics across every open session."""
        sessions = list(self._metrics.values())
        totals = {
            "sessions": float(len(sessions)),
            "commands": float(sum(m.commands for m in sessions)),
            "entries_returned": float(sum(m.entries_returned for m in sessions)),
            "tuples_examined": float(sum(m.tuples_examined for m in sessions)),
            "remote_requests": float(sum(m.remote_requests for m in sessions)),
            "network_seconds": sum(m.network_seconds for m in sessions),
            "wall_seconds": sum(m.wall_seconds for m in sessions),
            "max_command_wall_s": max(
                (m.max_command_wall_s for m in sessions), default=0.0
            ),
        }
        total_commands = totals["commands"]
        totals["mean_command_wall_s"] = (
            totals["wall_seconds"] / total_commands if total_commands else 0.0
        )
        return totals
