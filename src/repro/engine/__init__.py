"""Touch-driven operator engine.

Operators are push-based: the user's touch plays the role of the classic
``next()`` call, and every operator does a small, bounded amount of work per
touch.  The subpackage provides scans, running aggregates, selections,
non-blocking joins, incremental group-by, online aggregation with
confidence bounds and linear pipelines of all of the above.
"""

from repro.engine.aggregate import (
    AggregateKind,
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    RunningAggregate,
    StdAggregate,
    SumAggregate,
    aggregate_window,
    make_aggregate,
)
from repro.engine.filter import (
    Comparison,
    CompositeFilter,
    FilterOperator,
    Predicate,
    predicate_from_string,
)
from repro.engine.groupby import GroupResult, IncrementalGroupBy
from repro.engine.join import (
    BlockingHashJoin,
    JoinMatch,
    SymmetricHashJoin,
    join_arrays_symmetric,
)
from repro.engine.online_agg import OnlineAggregator, OnlineEstimate
from repro.engine.operators import (
    LimitOperator,
    OperatorStats,
    ProjectOperator,
    ScanOperator,
    TouchOperator,
)
from repro.engine.pipeline import PipelineStats, TouchPipeline

__all__ = [
    "AggregateKind",
    "AvgAggregate",
    "BlockingHashJoin",
    "Comparison",
    "CompositeFilter",
    "CountAggregate",
    "FilterOperator",
    "GroupResult",
    "IncrementalGroupBy",
    "JoinMatch",
    "LimitOperator",
    "MaxAggregate",
    "MinAggregate",
    "OnlineAggregator",
    "OnlineEstimate",
    "OperatorStats",
    "PipelineStats",
    "Predicate",
    "ProjectOperator",
    "RunningAggregate",
    "ScanOperator",
    "StdAggregate",
    "SumAggregate",
    "SymmetricHashJoin",
    "TouchOperator",
    "TouchPipeline",
    "aggregate_window",
    "join_arrays_symmetric",
    "make_aggregate",
    "predicate_from_string",
]
