"""Selection predicates (the "where" action attached to a slide).

The user can enable a *where* action on a column so that, as the slide
gesture delivers tuple identifiers, only the tuples satisfying the
predicate flow to the downstream operators.  Predicates are small, typed
objects that evaluate both single values and numpy arrays so they can be
applied per touch and to whole summary windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Sequence

import numpy as np

from repro.errors import QueryError
from repro.engine.operators import TouchOperator


class Comparison(Enum):
    """Supported comparison operators for predicates."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"


@dataclass(frozen=True)
class Predicate:
    """A single-column predicate, e.g. ``value > 100`` or ``50 <= value <= 80``.

    Attributes
    ----------
    comparison:
        The comparison operator.
    operand:
        The comparison constant (for BETWEEN, the lower bound).
    upper:
        The upper bound when ``comparison`` is BETWEEN.
    """

    comparison: Comparison
    operand: float
    upper: float | None = None

    def __post_init__(self) -> None:
        if self.comparison is Comparison.BETWEEN and self.upper is None:
            raise QueryError("BETWEEN predicates require an upper bound")
        if (
            self.comparison is Comparison.BETWEEN
            and self.upper is not None
            and self.upper < self.operand
        ):
            raise QueryError("BETWEEN upper bound must be >= lower bound")

    def matches(self, value: Any) -> bool:
        """Evaluate the predicate on a single scalar value."""
        if self.comparison is Comparison.EQ:
            return bool(value == self.operand)
        if self.comparison is Comparison.NE:
            return bool(value != self.operand)
        if self.comparison is Comparison.LT:
            return bool(value < self.operand)
        if self.comparison is Comparison.LE:
            return bool(value <= self.operand)
        if self.comparison is Comparison.GT:
            return bool(value > self.operand)
        if self.comparison is Comparison.GE:
            return bool(value >= self.operand)
        return bool(self.operand <= value <= self.upper)  # BETWEEN

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the predicate on an array, returning a boolean mask."""
        arr = np.asarray(values)
        if self.comparison is Comparison.EQ:
            return arr == self.operand
        if self.comparison is Comparison.NE:
            return arr != self.operand
        if self.comparison is Comparison.LT:
            return arr < self.operand
        if self.comparison is Comparison.LE:
            return arr <= self.operand
        if self.comparison is Comparison.GT:
            return arr > self.operand
        if self.comparison is Comparison.GE:
            return arr >= self.operand
        return (arr >= self.operand) & (arr <= self.upper)  # BETWEEN

    def describe(self) -> str:
        """Human-readable form, e.g. ``"value > 100"``."""
        if self.comparison is Comparison.BETWEEN:
            return f"{self.operand} <= value <= {self.upper}"
        return f"value {self.comparison.value} {self.operand}"


def predicate_from_string(text: str) -> Predicate:
    """Parse a tiny predicate grammar: ``"> 10"``, ``"<= 3.5"``, ``"between 1 5"``.

    This keeps scripted explorations and the baseline SQL shim readable.
    """
    parts = text.strip().split()
    if not parts:
        raise QueryError("empty predicate string")
    op = parts[0].lower()
    if op == "between":
        if len(parts) != 3:
            raise QueryError(f"BETWEEN predicate needs two bounds, got {text!r}")
        return Predicate(Comparison.BETWEEN, float(parts[1]), float(parts[2]))
    symbol_map = {c.value: c for c in Comparison if c is not Comparison.BETWEEN}
    if op not in symbol_map:
        raise QueryError(f"unknown comparison operator {op!r} in predicate {text!r}")
    if len(parts) != 2:
        raise QueryError(f"predicate {text!r} must be '<op> <constant>'")
    return Predicate(symbol_map[op], float(parts[1]))


class FilterOperator(TouchOperator):
    """Drop touched values that do not satisfy the predicate."""

    name = "filter"

    def __init__(self, predicate: Predicate, attribute: str | None = None):
        super().__init__()
        self.predicate = predicate
        self.attribute = attribute

    def _extract(self, value: Any) -> Any:
        if self.attribute is None:
            return value
        if not isinstance(value, dict) or self.attribute not in value:
            raise QueryError(
                f"filter on attribute {self.attribute!r} requires tuples containing it"
            )
        return value[self.attribute]

    def on_touch(self, rowid: int, value: Any) -> Any:
        candidate = self._extract(value)
        if isinstance(candidate, (list, tuple, np.ndarray)):
            arr = np.asarray(candidate)
            kept = arr[self.predicate.mask(arr)]
            self.stats.record(tuples=len(arr), results=int(kept.size > 0))
            return kept if kept.size else None
        if self.predicate.matches(candidate):
            self.stats.record(tuples=1, results=1)
            return value
        self.stats.record(tuples=1, results=0)
        return None

    def on_batch(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the predicate over a whole array of touched values.

        Returns the boolean keep-mask (one bit per touch) so the batch
        slide path can drop non-qualifying touches with one vector
        operation; statistics are recorded as if each value had been a
        separate touch.  Attribute-scoped filters expect dict-shaped
        tuples and cannot run on a flat value array.
        """
        if self.attribute is not None:
            raise QueryError(
                "batched filters require value-level predicates; "
                f"this filter is scoped to attribute {self.attribute!r}"
            )
        arr = np.asarray(values)
        mask = self.predicate.mask(arr)
        self.stats.record_batch(
            touches=int(arr.size), tuples=int(arr.size), results=int(np.sum(mask))
        )
        return mask


class CompositeFilter(TouchOperator):
    """Conjunction of several per-attribute predicates (AND semantics)."""

    name = "composite-filter"

    def __init__(self, predicates: Sequence[tuple[str | None, Predicate]]):
        super().__init__()
        if not predicates:
            raise QueryError("composite filter requires at least one predicate")
        self._filters = [FilterOperator(pred, attribute=attr) for attr, pred in predicates]

    def on_touch(self, rowid: int, value: Any) -> Any:
        current = value
        for filt in self._filters:
            current = filt.on_touch(rowid, value)
            if current is None:
                self.stats.record(tuples=1, results=0)
                return None
        self.stats.record(tuples=1, results=1)
        return value

    def on_batch(self, values: np.ndarray) -> np.ndarray:
        """Conjunction of all member predicates over an array of values.

        Attribute-scoped members expect dict-shaped tuples and therefore
        cannot run on a flat value array; batch evaluation is only offered
        for value-level predicates.
        """
        arr = np.asarray(values)
        mask = np.ones(arr.shape[0], dtype=bool)
        for filt in self._filters:
            if filt.attribute is not None:
                raise QueryError(
                    "batched composite filters require value-level predicates"
                )
            mask &= filt.predicate.mask(arr)
        self.stats.record_batch(
            touches=int(arr.shape[0]),
            tuples=int(arr.shape[0]),
            results=int(np.sum(mask)),
        )
        return mask
