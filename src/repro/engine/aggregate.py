"""Running aggregates updated one touch at a time.

When the user chooses an aggregation action and slides over a column,
dbTouch computes a *running* aggregate and continuously updates it as the
gesture evolves.  The aggregates here are incremental (constant work per
touch) and can also ingest whole windows of values at once, which is what
interactive summaries feed them.
"""

from __future__ import annotations

import math
from abc import abstractmethod
from enum import Enum
from typing import Any, Iterable

import numpy as np

from repro.errors import ExecutionError
from repro.engine.operators import TouchOperator


class AggregateKind(Enum):
    """The aggregate functions supported by slide-to-aggregate."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"
    STD = "std"


class RunningAggregate(TouchOperator):
    """Base class for aggregates that update incrementally per touch."""

    kind: AggregateKind

    def __init__(self) -> None:
        super().__init__()
        self._count = 0

    @property
    def count(self) -> int:
        """Number of values folded into the aggregate so far."""
        return self._count

    @abstractmethod
    def _update(self, value: float) -> None:
        """Fold one value into the aggregate state."""

    @abstractmethod
    def current(self) -> float | None:
        """The aggregate's current value (None before any input)."""

    def update_many(self, values: Iterable[float]) -> float | None:
        """Fold a batch of values (an interactive-summary window) at once."""
        arr = np.asarray(list(values), dtype=np.float64)
        for v in arr:
            self._update(float(v))
            self._count += 1
        return self.current()

    def on_touch(self, rowid: int, value: Any) -> Any:
        if value is None:
            self.stats.record(tuples=0, results=0)
            return self.current()
        if isinstance(value, (list, tuple, np.ndarray)):
            n = len(value)
            self.update_many(value)
            self.stats.record(tuples=n, results=1)
        else:
            self._update(float(value))
            self._count += 1
            self.stats.record(tuples=1, results=1)
        return self.current()

    def on_batch(self, values: np.ndarray) -> np.ndarray:
        """Fold a whole array of touched values in one call.

        Returns the *running* aggregate after each value — element ``i`` is
        what :meth:`on_touch` would have returned for the ``i``-th value —
        so the batch slide path can display the same evolving results as
        the per-touch loop.  Subclasses override ``_batch`` with a
        vectorized scan; sum-like aggregates use ``np.cumsum`` (a
        sequential accumulation, bit-identical to the per-touch fold),
        while STD uses cumulative moments and may differ from Welford's
        recurrence in the last float bits.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        running = self._batch(arr)
        self.stats.record_batch(touches=arr.size, tuples=arr.size, results=arr.size)
        return running

    def _batch(self, arr: np.ndarray) -> np.ndarray:
        """Fold ``arr`` into the state (including ``_count``) and return the
        running values; the base implementation loops as a reference."""
        running = np.empty(arr.size, dtype=np.float64)
        for i, v in enumerate(arr):
            self._update(float(v))
            self._count += 1
            running[i] = self.current()
        return running

    def finish(self) -> float | None:
        return self.current()

    def reset(self) -> None:
        super().reset()
        self._count = 0


class CountAggregate(RunningAggregate):
    """COUNT of touched values."""

    kind = AggregateKind.COUNT
    name = "count"

    def _update(self, value: float) -> None:
        pass  # count is tracked by the base class

    def _batch(self, arr: np.ndarray) -> np.ndarray:
        running = self._count + np.arange(1, arr.size + 1, dtype=np.float64)
        self._count += arr.size
        return running

    def current(self) -> float | None:
        return float(self._count)


class SumAggregate(RunningAggregate):
    """SUM of touched values."""

    kind = AggregateKind.SUM
    name = "sum"

    def __init__(self) -> None:
        super().__init__()
        self._sum = 0.0

    def _update(self, value: float) -> None:
        self._sum += value

    def _batch(self, arr: np.ndarray) -> np.ndarray:
        # seed the scan with the prior sum so the additions associate
        # exactly like the sequential fold: ((sum + a1) + a2) + ...
        running = np.cumsum(np.concatenate(((self._sum,), arr)))[1:]
        self._sum = float(running[-1])
        self._count += arr.size
        return running

    def current(self) -> float | None:
        return self._sum if self._count else None

    def reset(self) -> None:
        super().reset()
        self._sum = 0.0


class AvgAggregate(RunningAggregate):
    """Arithmetic mean of touched values (the paper's default summary)."""

    kind = AggregateKind.AVG
    name = "avg"

    def __init__(self) -> None:
        super().__init__()
        self._sum = 0.0

    def _update(self, value: float) -> None:
        self._sum += value

    def _batch(self, arr: np.ndarray) -> np.ndarray:
        # seeded scan: identical association to the sequential fold
        sums = np.cumsum(np.concatenate(((self._sum,), arr)))[1:]
        counts = self._count + np.arange(1, arr.size + 1, dtype=np.float64)
        self._sum = float(sums[-1])
        self._count += arr.size
        return sums / counts

    def current(self) -> float | None:
        if not self._count:
            return None
        return self._sum / self._count

    def reset(self) -> None:
        super().reset()
        self._sum = 0.0


class MinAggregate(RunningAggregate):
    """MIN of touched values."""

    kind = AggregateKind.MIN
    name = "min"

    def __init__(self) -> None:
        super().__init__()
        self._min = math.inf

    def _update(self, value: float) -> None:
        self._min = min(self._min, value)

    def _batch(self, arr: np.ndarray) -> np.ndarray:
        running = np.minimum(self._min, np.minimum.accumulate(arr))
        self._min = float(running[-1])
        self._count += arr.size
        return running

    def current(self) -> float | None:
        return self._min if self._count else None

    def reset(self) -> None:
        super().reset()
        self._min = math.inf


class MaxAggregate(RunningAggregate):
    """MAX of touched values."""

    kind = AggregateKind.MAX
    name = "max"

    def __init__(self) -> None:
        super().__init__()
        self._max = -math.inf

    def _update(self, value: float) -> None:
        self._max = max(self._max, value)

    def _batch(self, arr: np.ndarray) -> np.ndarray:
        running = np.maximum(self._max, np.maximum.accumulate(arr))
        self._max = float(running[-1])
        self._count += arr.size
        return running

    def current(self) -> float | None:
        return self._max if self._count else None

    def reset(self) -> None:
        super().reset()
        self._max = -math.inf


class StdAggregate(RunningAggregate):
    """Population standard deviation via Welford's online algorithm."""

    kind = AggregateKind.STD
    name = "std"

    def __init__(self) -> None:
        super().__init__()
        self._mean = 0.0
        self._m2 = 0.0

    def _update(self, value: float) -> None:
        # Welford update: numerically stable single pass
        n = self._count + 1
        delta = value - self._mean
        self._mean += delta / n
        self._m2 += delta * (value - self._mean)

    def _batch(self, arr: np.ndarray) -> np.ndarray:
        # cumulative-moment scan around a shift point: centering the data
        # before squaring avoids the catastrophic cancellation of the naive
        # E[x^2] - mean^2 formula on large-offset data; equal to the
        # Welford recurrence up to float rounding (the per-touch path
        # remains the reference)
        shift = self._mean if self._count else float(arr[0])
        centered = arr - shift
        counts = self._count + np.arange(1, arr.size + 1, dtype=np.float64)
        # prior state re-expressed around the shift: sum of (x - shift) and
        # sum of (x - shift)^2 (M2 is shift-invariant)
        prior_delta = self._mean - shift
        sums = (self._count * prior_delta) + np.cumsum(centered)
        sum_sqs = (
            self._m2 + self._count * prior_delta * prior_delta
        ) + np.cumsum(centered * centered)
        means = sums / counts
        m2s = np.maximum(0.0, sum_sqs - counts * means * means)
        self._count += arr.size
        self._mean = shift + float(means[-1])
        self._m2 = float(m2s[-1])
        return np.sqrt(m2s / counts)

    def current(self) -> float | None:
        if not self._count:
            return None
        return math.sqrt(self._m2 / self._count)

    def reset(self) -> None:
        super().reset()
        self._mean = 0.0
        self._m2 = 0.0


_AGGREGATES: dict[AggregateKind, type[RunningAggregate]] = {
    AggregateKind.COUNT: CountAggregate,
    AggregateKind.SUM: SumAggregate,
    AggregateKind.AVG: AvgAggregate,
    AggregateKind.MIN: MinAggregate,
    AggregateKind.MAX: MaxAggregate,
    AggregateKind.STD: StdAggregate,
}


def make_aggregate(kind: AggregateKind | str) -> RunningAggregate:
    """Instantiate the running aggregate for ``kind`` (enum value or name)."""
    if isinstance(kind, str):
        try:
            kind = AggregateKind(kind.lower())
        except ValueError as exc:
            known = ", ".join(k.value for k in AggregateKind)
            raise ExecutionError(f"unknown aggregate {kind!r}; known: {known}") from exc
    return _AGGREGATES[kind]()


def aggregate_window(kind: AggregateKind | str, values: np.ndarray) -> float | None:
    """Aggregate one window of values in a single call (interactive summaries)."""
    agg = make_aggregate(kind)
    return agg.update_many(np.asarray(values, dtype=np.float64))
