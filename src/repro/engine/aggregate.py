"""Running aggregates updated one touch at a time.

When the user chooses an aggregation action and slides over a column,
dbTouch computes a *running* aggregate and continuously updates it as the
gesture evolves.  The aggregates here are incremental (constant work per
touch) and can also ingest whole windows of values at once, which is what
interactive summaries feed them.
"""

from __future__ import annotations

import math
from abc import abstractmethod
from enum import Enum
from typing import Any, Iterable

import numpy as np

from repro.errors import ExecutionError
from repro.engine.operators import TouchOperator


class AggregateKind(Enum):
    """The aggregate functions supported by slide-to-aggregate."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"
    STD = "std"


class RunningAggregate(TouchOperator):
    """Base class for aggregates that update incrementally per touch."""

    kind: AggregateKind

    def __init__(self) -> None:
        super().__init__()
        self._count = 0

    @property
    def count(self) -> int:
        """Number of values folded into the aggregate so far."""
        return self._count

    @abstractmethod
    def _update(self, value: float) -> None:
        """Fold one value into the aggregate state."""

    @abstractmethod
    def current(self) -> float | None:
        """The aggregate's current value (None before any input)."""

    def update_many(self, values: Iterable[float]) -> float | None:
        """Fold a batch of values (an interactive-summary window) at once."""
        arr = np.asarray(list(values), dtype=np.float64)
        for v in arr:
            self._update(float(v))
            self._count += 1
        return self.current()

    def on_touch(self, rowid: int, value: Any) -> Any:
        if value is None:
            self.stats.record(tuples=0, results=0)
            return self.current()
        if isinstance(value, (list, tuple, np.ndarray)):
            n = len(value)
            self.update_many(value)
            self.stats.record(tuples=n, results=1)
        else:
            self._update(float(value))
            self._count += 1
            self.stats.record(tuples=1, results=1)
        return self.current()

    def finish(self) -> float | None:
        return self.current()

    def reset(self) -> None:
        super().reset()
        self._count = 0


class CountAggregate(RunningAggregate):
    """COUNT of touched values."""

    kind = AggregateKind.COUNT
    name = "count"

    def _update(self, value: float) -> None:
        pass  # count is tracked by the base class

    def current(self) -> float | None:
        return float(self._count)


class SumAggregate(RunningAggregate):
    """SUM of touched values."""

    kind = AggregateKind.SUM
    name = "sum"

    def __init__(self) -> None:
        super().__init__()
        self._sum = 0.0

    def _update(self, value: float) -> None:
        self._sum += value

    def current(self) -> float | None:
        return self._sum if self._count else None

    def reset(self) -> None:
        super().reset()
        self._sum = 0.0


class AvgAggregate(RunningAggregate):
    """Arithmetic mean of touched values (the paper's default summary)."""

    kind = AggregateKind.AVG
    name = "avg"

    def __init__(self) -> None:
        super().__init__()
        self._sum = 0.0

    def _update(self, value: float) -> None:
        self._sum += value

    def current(self) -> float | None:
        if not self._count:
            return None
        return self._sum / self._count

    def reset(self) -> None:
        super().reset()
        self._sum = 0.0


class MinAggregate(RunningAggregate):
    """MIN of touched values."""

    kind = AggregateKind.MIN
    name = "min"

    def __init__(self) -> None:
        super().__init__()
        self._min = math.inf

    def _update(self, value: float) -> None:
        self._min = min(self._min, value)

    def current(self) -> float | None:
        return self._min if self._count else None

    def reset(self) -> None:
        super().reset()
        self._min = math.inf


class MaxAggregate(RunningAggregate):
    """MAX of touched values."""

    kind = AggregateKind.MAX
    name = "max"

    def __init__(self) -> None:
        super().__init__()
        self._max = -math.inf

    def _update(self, value: float) -> None:
        self._max = max(self._max, value)

    def current(self) -> float | None:
        return self._max if self._count else None

    def reset(self) -> None:
        super().reset()
        self._max = -math.inf


class StdAggregate(RunningAggregate):
    """Population standard deviation via Welford's online algorithm."""

    kind = AggregateKind.STD
    name = "std"

    def __init__(self) -> None:
        super().__init__()
        self._mean = 0.0
        self._m2 = 0.0

    def _update(self, value: float) -> None:
        # Welford update: numerically stable single pass
        n = self._count + 1
        delta = value - self._mean
        self._mean += delta / n
        self._m2 += delta * (value - self._mean)

    def current(self) -> float | None:
        if not self._count:
            return None
        return math.sqrt(self._m2 / self._count)

    def reset(self) -> None:
        super().reset()
        self._mean = 0.0
        self._m2 = 0.0


_AGGREGATES: dict[AggregateKind, type[RunningAggregate]] = {
    AggregateKind.COUNT: CountAggregate,
    AggregateKind.SUM: SumAggregate,
    AggregateKind.AVG: AvgAggregate,
    AggregateKind.MIN: MinAggregate,
    AggregateKind.MAX: MaxAggregate,
    AggregateKind.STD: StdAggregate,
}


def make_aggregate(kind: AggregateKind | str) -> RunningAggregate:
    """Instantiate the running aggregate for ``kind`` (enum value or name)."""
    if isinstance(kind, str):
        try:
            kind = AggregateKind(kind.lower())
        except ValueError as exc:
            known = ", ".join(k.value for k in AggregateKind)
            raise ExecutionError(f"unknown aggregate {kind!r}; known: {known}") from exc
    return _AGGREGATES[kind]()


def aggregate_window(kind: AggregateKind | str, values: np.ndarray) -> float | None:
    """Aggregate one window of values in a single call (interactive summaries)."""
    agg = make_aggregate(kind)
    return agg.update_many(np.asarray(values, dtype=np.float64))
