"""Incremental group-by.

Hash-based grouping is blocking in a traditional engine.  In dbTouch the
grouping state is updated per touched tuple, so partial group aggregates
are always available for display and refine continuously as the gesture
covers more data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import ExecutionError
from repro.engine.aggregate import AggregateKind, RunningAggregate, make_aggregate
from repro.engine.operators import TouchOperator


@dataclass(frozen=True)
class GroupResult:
    """A snapshot of one group's running aggregate."""

    key: Hashable
    value: float | None
    count: int


class IncrementalGroupBy(TouchOperator):
    """Group touched tuples by a key and keep one running aggregate per group.

    Parameters
    ----------
    aggregate_kind:
        Which aggregate to maintain per group (default AVG, the paper's
        default summary aggregation).
    """

    name = "group-by"

    def __init__(self, aggregate_kind: AggregateKind | str = AggregateKind.AVG):
        super().__init__()
        self._kind = aggregate_kind
        self._groups: dict[Hashable, RunningAggregate] = {}

    def on_touch(self, rowid: int, value: Any) -> Any:
        """Ingest one (key, value) pair delivered by a touch.

        ``value`` must be a 2-tuple ``(group_key, measure)``; the group's
        running aggregate is updated and its new snapshot returned.
        """
        if not isinstance(value, tuple) or len(value) != 2:
            raise ExecutionError("IncrementalGroupBy expects (group_key, measure) per touch")
        key, measure = value
        if key not in self._groups:
            self._groups[key] = make_aggregate(self._kind)
        agg = self._groups[key]
        agg.on_touch(rowid, measure)
        self.stats.record(tuples=1, results=1)
        return GroupResult(key=key, value=agg.current(), count=agg.count)

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #
    @property
    def num_groups(self) -> int:
        """Number of distinct group keys seen so far."""
        return len(self._groups)

    def group(self, key: Hashable) -> GroupResult:
        """Return the current snapshot of one group."""
        if key not in self._groups:
            raise ExecutionError(f"no group with key {key!r} has been touched yet")
        agg = self._groups[key]
        return GroupResult(key=key, value=agg.current(), count=agg.count)

    def snapshot(self) -> list[GroupResult]:
        """Return current snapshots of every group, sorted by key."""
        results = [
            GroupResult(key=key, value=agg.current(), count=agg.count)
            for key, agg in self._groups.items()
        ]
        return sorted(results, key=lambda g: (str(type(g.key)), g.key))

    def finish(self) -> list[GroupResult]:
        return self.snapshot()

    def reset(self) -> None:
        super().reset()
        self._groups.clear()
