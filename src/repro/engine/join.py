"""Join operators for touch-driven processing.

Joins are blocking by nature: a classic hash join must first build a hash
table on one full input before probing with the other.  In dbTouch the
system never knows up front which data will be processed — the gesture
decides — so blocking on a full build phase would destroy interactivity.
The paper therefore calls for non-blocking join strategies; this module
provides a *symmetric hash join* (both sides build and probe incrementally
as touched tuples arrive) alongside the classic blocking hash join used as
the comparison point in the E-join benchmark.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.errors import ExecutionError
from repro.engine.operators import OperatorStats


@dataclass(frozen=True)
class JoinMatch:
    """One join result: the rowids and the join key that matched."""

    left_rowid: int
    right_rowid: int
    key: Hashable


class SymmetricHashJoin:
    """Non-blocking, pipelined hash join.

    Both inputs maintain a hash table keyed by the join attribute.  When a
    touched tuple arrives from one side it is (a) inserted into that side's
    table and (b) probed against the other side's table, emitting any
    matches immediately.  Work per touch is proportional to the number of
    matches for that key — there is no build phase to wait for.
    """

    def __init__(self) -> None:
        self._left: dict[Hashable, list[int]] = defaultdict(list)
        self._right: dict[Hashable, list[int]] = defaultdict(list)
        self._seen_left: set[int] = set()
        self._seen_right: set[int] = set()
        self.stats = OperatorStats()
        self.matches: list[JoinMatch] = []

    # ------------------------------------------------------------------ #
    # per-touch input
    # ------------------------------------------------------------------ #
    def on_left(self, rowid: int, key: Hashable) -> list[JoinMatch]:
        """Ingest a touched tuple from the left input; return new matches."""
        return self._ingest(rowid, key, side="left")

    def on_right(self, rowid: int, key: Hashable) -> list[JoinMatch]:
        """Ingest a touched tuple from the right input; return new matches."""
        return self._ingest(rowid, key, side="right")

    def _ingest(self, rowid: int, key: Hashable, side: str) -> list[JoinMatch]:
        if side == "left":
            own, other, seen = self._left, self._right, self._seen_left
        else:
            own, other, seen = self._right, self._left, self._seen_right
        new_matches: list[JoinMatch] = []
        if rowid not in seen:
            seen.add(rowid)
            own[key].append(rowid)
        for other_rowid in other.get(key, ()):  # probe the opposite table
            match = (
                JoinMatch(rowid, other_rowid, key)
                if side == "left"
                else JoinMatch(other_rowid, rowid, key)
            )
            new_matches.append(match)
        self.matches.extend(new_matches)
        self.stats.record(tuples=1, results=len(new_matches))
        return new_matches

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #
    @property
    def num_matches(self) -> int:
        """Total matches emitted so far."""
        return len(self.matches)

    @property
    def left_cardinality(self) -> int:
        """Distinct left rowids ingested so far."""
        return len(self._seen_left)

    @property
    def right_cardinality(self) -> int:
        """Distinct right rowids ingested so far."""
        return len(self._seen_right)

    def hash_table_snapshot(self) -> tuple[dict[Hashable, list[int]], dict[Hashable, list[int]]]:
        """Copies of both hash tables (cached across sample copies per the paper)."""
        return (
            {k: list(v) for k, v in self._left.items()},
            {k: list(v) for k, v in self._right.items()},
        )

    def reset(self) -> None:
        """Clear all join state."""
        self._left.clear()
        self._right.clear()
        self._seen_left.clear()
        self._seen_right.clear()
        self.matches.clear()
        self.stats = OperatorStats()


class BlockingHashJoin:
    """Classic build-then-probe hash join (the monolithic baseline).

    The build phase consumes the *entire* build input before the first
    probe can produce a result — which is exactly the behaviour dbTouch
    needs to avoid.  The operator records how many tuples had to be
    consumed before the first result was available so benchmarks can
    compare time-to-first-result between strategies.
    """

    def __init__(self) -> None:
        self.stats = OperatorStats()
        self._build_table: dict[Hashable, list[int]] = defaultdict(list)
        self._built = False
        self.tuples_before_first_result = 0

    def build(self, keys: Iterable[Hashable]) -> None:
        """Consume the whole build side."""
        count = 0
        for rowid, key in enumerate(keys):
            self._build_table[key].append(rowid)
            count += 1
        self._built = True
        self.tuples_before_first_result = count
        self.stats.record(tuples=count, results=0)

    def probe(self, keys: Iterable[Hashable]) -> list[JoinMatch]:
        """Probe with the full probe side; returns all matches."""
        if not self._built:
            raise ExecutionError("BlockingHashJoin.probe called before build()")
        matches: list[JoinMatch] = []
        count = 0
        for rowid, key in enumerate(keys):
            count += 1
            for build_rowid in self._build_table.get(key, ()):
                matches.append(JoinMatch(build_rowid, rowid, key))
        self.stats.record(tuples=count, results=len(matches))
        return matches

    def join(
        self, left_keys: Iterable[Hashable], right_keys: Iterable[Hashable]
    ) -> list[JoinMatch]:
        """Run the full blocking join (build on left, probe with right)."""
        self.build(left_keys)
        return self.probe(right_keys)


def join_arrays_symmetric(
    left_keys: np.ndarray,
    right_keys: np.ndarray,
    left_order: Iterable[int] | None = None,
    right_order: Iterable[int] | None = None,
) -> SymmetricHashJoin:
    """Drive a symmetric join by alternating touched tuples from both sides.

    ``left_order`` / ``right_order`` give the rowid order in which the
    gesture touches each input; by default both sides are consumed in
    storage order, interleaved one tuple at a time.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    left_idx = list(left_order) if left_order is not None else list(range(len(left_keys)))
    right_idx = list(right_order) if right_order is not None else list(range(len(right_keys)))
    join = SymmetricHashJoin()
    for i in range(max(len(left_idx), len(right_idx))):
        if i < len(left_idx):
            rowid = left_idx[i]
            join.on_left(rowid, left_keys[rowid].item())
        if i < len(right_idx):
            rowid = right_idx[i]
            join.on_right(rowid, right_keys[rowid].item())
    return join
