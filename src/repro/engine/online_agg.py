"""Online aggregation with running confidence bounds.

The paper relates dbTouch to online aggregation (Hellerstein et al.): the
system continuously returns refined results together with a confidence
metric, and the user stops when the confidence is good enough.  In dbTouch
the *user* additionally decides which data is sampled (via the gesture),
so the estimator here treats touched values as a random sample of the
underlying column and reports a running mean/sum with a normal-theory
confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.errors import ExecutionError
from repro.engine.operators import TouchOperator

#: Two-sided z-scores for the confidence levels the estimator supports.
_Z_SCORES = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class OnlineEstimate:
    """A running estimate with its confidence interval.

    Attributes
    ----------
    estimate:
        Current point estimate (mean or scaled sum).
    low / high:
        Confidence interval bounds at the requested confidence level.
    confidence:
        The confidence level used (e.g. 0.95).
    sample_size:
        Number of touched values folded in so far.
    relative_halfwidth:
        Half the interval width divided by the estimate magnitude; the
        natural "am I done yet?" signal for the explorer.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    sample_size: int
    relative_halfwidth: float


class OnlineAggregator(TouchOperator):
    """Running mean/sum estimator over the values a gesture touches.

    Parameters
    ----------
    population_size:
        Total number of tuples in the underlying column.  Required to scale
        a mean estimate up to a population-sum estimate.
    target:
        ``"mean"`` or ``"sum"``.
    confidence:
        One of 0.80, 0.90, 0.95, 0.99.
    """

    name = "online-aggregate"

    def __init__(
        self,
        population_size: int,
        target: str = "mean",
        confidence: float = 0.95,
    ) -> None:
        super().__init__()
        if population_size <= 0:
            raise ExecutionError("population_size must be positive")
        if target not in ("mean", "sum"):
            raise ExecutionError(f"target must be 'mean' or 'sum', got {target!r}")
        if confidence not in _Z_SCORES:
            raise ExecutionError(
                f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
            )
        self.population_size = population_size
        self.target = target
        self.confidence = confidence
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def _update(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    def update_many(self, values: Iterable[float]) -> OnlineEstimate:
        """Fold a batch of touched values and return the new estimate."""
        for v in np.asarray(list(values), dtype=np.float64):
            self._update(float(v))
        return self.current()

    def on_touch(self, rowid: int, value: Any) -> OnlineEstimate:
        if isinstance(value, (list, tuple, np.ndarray)):
            arr = np.asarray(value, dtype=np.float64)
            for v in arr:
                self._update(float(v))
            self.stats.record(tuples=len(arr), results=1)
        else:
            self._update(float(value))
            self.stats.record(tuples=1, results=1)
        return self.current()

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #
    def current(self) -> OnlineEstimate:
        """Return the current estimate and confidence interval."""
        if self._n == 0:
            return OnlineEstimate(
                estimate=0.0,
                low=-math.inf,
                high=math.inf,
                confidence=self.confidence,
                sample_size=0,
                relative_halfwidth=math.inf,
            )
        variance = self._m2 / self._n if self._n > 1 else 0.0
        std_err = math.sqrt(variance / self._n) if self._n > 0 else 0.0
        # finite population correction: the gesture may cover a large share
        # of a small column, which tightens the interval
        if self.population_size > 1:
            fpc = math.sqrt(
                max(0.0, (self.population_size - self._n) / (self.population_size - 1))
            )
            std_err *= fpc
        z = _Z_SCORES[self.confidence]
        mean_low = self._mean - z * std_err
        mean_high = self._mean + z * std_err
        if self.target == "mean":
            estimate, low, high = self._mean, mean_low, mean_high
        else:
            scale = float(self.population_size)
            estimate, low, high = self._mean * scale, mean_low * scale, mean_high * scale
        halfwidth = (high - low) / 2.0
        rel = halfwidth / abs(estimate) if estimate else math.inf
        return OnlineEstimate(
            estimate=estimate,
            low=low,
            high=high,
            confidence=self.confidence,
            sample_size=self._n,
            relative_halfwidth=rel,
        )

    def confident_within(self, relative_tolerance: float) -> bool:
        """Whether the interval half-width is within ``relative_tolerance``."""
        if relative_tolerance <= 0:
            raise ExecutionError("relative_tolerance must be positive")
        return self.current().relative_halfwidth <= relative_tolerance

    def finish(self) -> OnlineEstimate:
        return self.current()

    def reset(self) -> None:
        super().reset()
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
