"""Operator framework for touch-driven query processing.

Traditional database engines pull data through operators with a ``next()``
call that the *engine* controls.  In dbTouch the equivalent of ``next()``
is the user's touch: every touch delivers one tuple identifier, and every
active operator consumes that identifier.  Operators are therefore written
in push style — :meth:`TouchOperator.on_touch` is called once per touch —
and must do a small, bounded amount of work per call so response times
remain interactive regardless of data size.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.errors import ExecutionError


@dataclass
class OperatorStats:
    """Per-operator accounting shared by all touch operators."""

    touches_processed: int = 0
    tuples_examined: int = 0
    results_emitted: int = 0

    def record(self, tuples: int, results: int) -> None:
        """Record the effect of one touch."""
        self.touches_processed += 1
        self.tuples_examined += tuples
        self.results_emitted += results

    def record_batch(self, touches: int, tuples: int, results: int) -> None:
        """Record the effect of a whole batch of touches at once."""
        self.touches_processed += touches
        self.tuples_examined += tuples
        self.results_emitted += results


class TouchOperator(ABC):
    """Base class for operators driven one touch at a time.

    Subclasses implement :meth:`on_touch`, which receives the rowid the
    touch mapped to (plus the value(s) read at that rowid) and returns the
    operator's output for this touch, or ``None`` when the touch produces
    no visible output (e.g. a filtered-out tuple).
    """

    name: str = "operator"

    def __init__(self) -> None:
        self.stats = OperatorStats()

    @abstractmethod
    def on_touch(self, rowid: int, value: Any) -> Any:
        """Process the data entry delivered by one touch."""

    def reset(self) -> None:
        """Clear all operator state (a new query session starts)."""
        self.stats = OperatorStats()

    def finish(self) -> Any:
        """Return the operator's final state when the gesture session ends.

        The default returns ``None``; aggregating operators override this to
        expose their final aggregate.
        """
        return None


class ScanOperator(TouchOperator):
    """Plain scan: every touched value is emitted as-is.

    This is the simplest exploratory action — the user sees the raw values
    pop up under the finger as the slide progresses.
    """

    name = "scan"

    def on_touch(self, rowid: int, value: Any) -> Any:
        self.stats.record(tuples=1, results=1)
        return value


class ProjectOperator(TouchOperator):
    """Project specific attributes out of the tuple delivered by each touch.

    Expects ``value`` to be a mapping of attribute name → value (what a
    touch on a table object delivers) and emits only the wanted attributes.
    """

    name = "project"

    def __init__(self, attributes: list[str]):
        super().__init__()
        if not attributes:
            raise ExecutionError("projection requires at least one attribute")
        self.attributes = list(attributes)

    def on_touch(self, rowid: int, value: Any) -> Any:
        if not isinstance(value, dict):
            raise ExecutionError("ProjectOperator expects a tuple (dict) per touch")
        missing = [a for a in self.attributes if a not in value]
        if missing:
            raise ExecutionError(f"tuple is missing projected attributes {missing}")
        self.stats.record(tuples=1, results=1)
        return {a: value[a] for a in self.attributes}


class LimitOperator(TouchOperator):
    """Stop emitting results after ``limit`` touches have produced output.

    Useful for bounding how much output a scripted exploration produces.
    """

    name = "limit"

    def __init__(self, limit: int):
        super().__init__()
        if limit < 0:
            raise ExecutionError("limit must be non-negative")
        self.limit = limit
        self._emitted = 0

    def on_touch(self, rowid: int, value: Any) -> Any:
        if self._emitted >= self.limit:
            self.stats.record(tuples=1, results=0)
            return None
        self._emitted += 1
        self.stats.record(tuples=1, results=1)
        return value

    def reset(self) -> None:
        super().reset()
        self._emitted = 0

    @property
    def exhausted(self) -> bool:
        """Whether the limit has been reached."""
        return self._emitted >= self.limit
