"""Operator pipelines driven one touch at a time.

A dbTouch "query plan" is a chain of touch operators.  The user's gesture
delivers one tuple per touch; the pipeline pushes it through the chain
(filter → aggregate, project → filter → scan, ...) and whatever emerges at
the end is displayed.  The pipeline also records per-touch latencies so the
kernel can enforce its interactive response-time bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ExecutionError
from repro.engine.operators import TouchOperator


@dataclass
class PipelineStats:
    """Accounting for a pipeline across the whole gesture session."""

    touches: int = 0
    outputs: int = 0
    total_seconds: float = 0.0
    max_touch_seconds: float = 0.0
    per_touch_seconds: list[float] = field(default_factory=list)

    @property
    def mean_touch_seconds(self) -> float:
        """Mean per-touch processing time."""
        if not self.touches:
            return 0.0
        return self.total_seconds / self.touches


class TouchPipeline:
    """A linear chain of :class:`TouchOperator` instances."""

    def __init__(self, operators: Sequence[TouchOperator]):
        if not operators:
            raise ExecutionError("a pipeline requires at least one operator")
        self.operators = list(operators)
        self.stats = PipelineStats()

    def __len__(self) -> int:
        return len(self.operators)

    def process_touch(self, rowid: int, value: Any) -> Any:
        """Push one touched tuple through the whole chain.

        Returns the output of the last operator, or ``None`` if any operator
        in the chain dropped the tuple (a failed predicate, an exhausted
        limit...).
        """
        started = time.perf_counter()
        current: Any = value
        for op in self.operators:
            current = op.on_touch(rowid, current)
            if current is None:
                break
        elapsed = time.perf_counter() - started
        self.stats.touches += 1
        self.stats.total_seconds += elapsed
        self.stats.max_touch_seconds = max(self.stats.max_touch_seconds, elapsed)
        self.stats.per_touch_seconds.append(elapsed)
        if current is not None:
            self.stats.outputs += 1
        return current

    def finish(self) -> list[Any]:
        """Collect the final state of every operator in the chain."""
        return [op.finish() for op in self.operators]

    def reset(self) -> None:
        """Reset every operator and the pipeline accounting."""
        for op in self.operators:
            op.reset()
        self.stats = PipelineStats()

    def describe(self) -> str:
        """Human-readable chain description, e.g. ``"filter -> avg"``."""
        return " -> ".join(op.name for op in self.operators)
