"""Indexing support: zone maps, touch-driven cracking, per-sample indexes."""

from repro.indexing.cracking import CrackerIndex, CrackPiece
from repro.indexing.sample_index import RangeLookupResult, SampleLevelIndex
from repro.indexing.zonemap import Zone, ZoneMap

__all__ = [
    "CrackPiece",
    "CrackerIndex",
    "RangeLookupResult",
    "SampleLevelIndex",
    "Zone",
    "ZoneMap",
]
