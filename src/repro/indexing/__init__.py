"""Indexing support: zone maps, touch-driven cracking, per-sample indexes.

The adaptive tier (:class:`IndexManager`) lives here too: it owns
per-column cracker/zonemap state, is refined by the gestures the kernel
executes and consulted by bulk range selections — see
:mod:`repro.indexing.manager`.
"""

from repro.indexing.cracking import CrackerIndex, CrackerState, CrackPiece
from repro.indexing.manager import (
    IndexManager,
    IndexManagerStats,
    RangeSelection,
    predicate_range,
)
from repro.indexing.sample_index import RangeLookupResult, SampleLevelIndex
from repro.indexing.zonemap import Zone, ZoneMap

__all__ = [
    "CrackPiece",
    "CrackerIndex",
    "CrackerState",
    "IndexManager",
    "IndexManagerStats",
    "RangeLookupResult",
    "RangeSelection",
    "SampleLevelIndex",
    "Zone",
    "ZoneMap",
    "predicate_range",
]
