"""The adaptive indexing tier: per-column index state in the gesture hot path.

The paper's core bet is that physical organization should adapt as a side
effect of how users touch data.  :class:`IndexManager` is the seam that
wires that bet into the kernel:

* it owns per-``(object, column)`` index state — a
  :class:`repro.indexing.cracking.CrackerIndex` for in-memory numeric
  columns, a disk-resident :class:`repro.indexing.paged.PagedCrackerIndex`
  for out-of-core :class:`repro.persist.paged_column.PagedColumn` objects
  (per-chunk crackers under an LRU residency cap, spilled through an
  optional ``spill_store``), with zonemap chunk pruning as the fallback
  when paged cracking is disabled;
* every qualifying gesture — a slide whose action carries a range-shaped
  predicate — *refines* the matching cracker via
  :meth:`observe_predicate`, outside the gesture's outcome accounting, so
  ``GestureOutcome`` counters stay bit-identical with indexing on or off;
* bulk range selections (:meth:`repro.core.kernel.DbTouchKernel.select_where`)
  *consult* the tier via :meth:`select_rowids`, scanning only the cracked
  pieces / non-pruned chunks that can overlap the predicate instead of the
  whole column;
* cracker state is charged to an optional shared
  :class:`repro.core.caching.MemoryBudget` (the same allowance the touch
  cache and the disk chunk cache split), reclaimed least-recently-consulted
  first when peers need room;
* :meth:`invalidate` drops every index derived from an object whose data
  was replace-reloaded, and :meth:`adopt_cracker` revives persisted state
  from a :class:`repro.persist.snapshot.StoreCatalog` warm start;
* live appends go through :meth:`extend_valid_prefix` instead of
  invalidation: crackers keep answering for the prefix they cover (their
  *validity window*) while :meth:`select_rowids` scans the appended tail,
  and :meth:`merge_tails` — run on the background lane — folds tails into
  the cracked structure without ever discarding earned cracks.

**Concurrency.**  One manager may be shared by every session of a
:class:`repro.service.MultiSessionServer` whose sessions attach the same
base storage by reference; refinement and consultation then run on
parallel scheduler workers.  All piece mutation happens under a per-column
lock; the manager-level lock only guards the state dictionary and the
LRU/statistics bookkeeping, and is never held while a column lock is taken
or the budget is called (the deadlock-freedom rule documented on
``MemoryBudget``).  Budget reclaims drop a column's cracker by atomically
unlinking it — an in-flight lookup keeps its own reference and completes
on the orphaned (still self-consistent) index.

**Exactness.**  Indexed selections must agree bit-for-bit with
``Predicate.mask`` over the base data.  Three guards make that hold: NaN
rows are segregated by the cracker and masked per-chunk by the zonemap
path; inclusive/exclusive predicate bounds are mapped onto the cracker's
half-open ranges with ``np.nextafter``; and cracker arrays preserve the
column's native dtype, so piece membership is decided by the *same* numpy
promotion ``Predicate.mask`` performs — int64 columns crack exactly even
beyond 2**53, where the old float64-copy design had to refuse them.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, fields

import numpy as np

from repro.engine.filter import Comparison, Predicate
from repro.indexing.cracking import (
    DEFAULT_MAX_PIECES,
    DEFAULT_MIN_PIECE_ROWS,
    CrackerIndex,
    CrackerState,
)
from repro.indexing.paged import DEFAULT_MAX_RESIDENT_CHUNKS, PagedCrackerIndex
from repro.indexing.zonemap import ZoneMap
from repro.obs.trace import trace_span
from repro.storage.column import Column


def _is_chunked(column: Column) -> bool:
    """Whether ``column`` exposes the paged-column chunk surface.

    Duck-typed (rather than ``isinstance`` against
    :class:`repro.persist.paged_column.PagedColumn`) so the indexing tier
    does not import the persist package — the snapshot module imports this
    package for warm starts, and a class-level dependency both ways would
    be an import cycle waiting to happen.
    """
    return callable(getattr(column, "chunks_for_predicate", None))


#: Cracker counters mirrored into :class:`IndexManagerStats` by delta.
#: Probed with ``getattr(..., 0)`` so both cracker kinds fit one surface
#: (only the paged cracker has spill counters).
_ACTIVITY_COUNTERS = (
    "cracks_performed",
    "stochastic_cracks",
    "coalesces_performed",
    "pieces_merged",
    "spills",
    "spill_loads",
    "tail_merges",
    "rows_merged_total",
)


def _activity_probe(cracker) -> tuple[int, ...]:
    return tuple(int(getattr(cracker, name, 0)) for name in _ACTIVITY_COUNTERS)


def predicate_range(predicate: Predicate) -> tuple[float, float] | None:
    """The half-open ``[low, high)`` value range of a range-shaped predicate.

    Inclusive upper bounds are mapped to half-open form with
    ``np.nextafter`` so the cracker's ``>= low and < high`` test agrees
    exactly with :meth:`repro.engine.filter.Predicate.matches`.  Returns
    ``None`` for predicates that are not a contiguous range (``NE``) or
    whose operands are NaN/infinite — those fall back to a full scan.
    """
    operand = float(predicate.operand)
    if not math.isfinite(operand):
        return None
    comparison = predicate.comparison
    if comparison is Comparison.BETWEEN:
        upper = float(predicate.upper)
        if not math.isfinite(upper):
            return None
        return operand, float(np.nextafter(upper, math.inf))
    if comparison is Comparison.EQ:
        return operand, float(np.nextafter(operand, math.inf))
    if comparison is Comparison.LT:
        return -math.inf, operand
    if comparison is Comparison.LE:
        return -math.inf, float(np.nextafter(operand, math.inf))
    if comparison is Comparison.GT:
        return float(np.nextafter(operand, math.inf)), math.inf
    if comparison is Comparison.GE:
        return operand, math.inf
    return None  # NE is not a contiguous range


@dataclass
class RangeSelection:
    """The result of one bulk range selection (indexed or scanned).

    ``strategy`` records how the rowids were found: ``"cracker"`` (cracked
    pieces), ``"paged-cracker"`` (per-chunk disk-resident cracking),
    ``"zonemap"`` (chunk-pruned paged scan) or ``"scan"`` (full
    scan of the base data).  ``rows_scanned`` is how many values were
    actually inspected — the adaptive win is this number shrinking while
    ``rowids`` stays exactly what a full scan returns.
    """

    object_name: str
    column_name: str | None
    predicate: Predicate
    rowids: np.ndarray
    strategy: str
    rows_scanned: int
    refined: bool = False
    values: np.ndarray | None = None
    selected: dict[str, np.ndarray] | None = None
    duration_s: float = 0.0

    @property
    def matches(self) -> int:
        """Number of qualifying rows."""
        return int(self.rowids.size)


@dataclass
class IndexManagerStats:
    """Counters describing the tier's activity (monotonic, lock-guarded)."""

    consultations: int = 0
    indexed_consultations: int = 0
    refinements: int = 0
    cracks_performed: int = 0
    stochastic_cracks: int = 0
    coalesces_performed: int = 0
    pieces_merged: int = 0
    spills: int = 0
    spill_loads: int = 0
    tail_merges: int = 0
    rows_merged_total: int = 0
    crackers_built: int = 0
    paged_crackers_built: int = 0
    crackers_adopted: int = 0
    crackers_dropped: int = 0
    invalidations: int = 0
    prefix_extensions: int = 0

    def apply_activity(self, deltas: tuple[int, ...]) -> None:
        """Fold one :func:`_activity_probe` delta tuple into the counters."""
        for name, delta in zip(_ACTIVITY_COUNTERS, deltas):
            setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of every counter."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class _ColumnIndexState:
    """Index state bound to one concrete column object.

    States are keyed by ``(object, column, id(column))`` — the identity
    dimension lets same-named private columns of different sessions keep
    separate index state under one shared manager instead of thrashing
    each other's crackers.  The column itself is held weakly so a dead
    session's private columns do not pin the manager's bookkeeping; a
    live cracker keeps its column alive through ``CrackerIndex.column``,
    so a state with a cracker never sees its weakref die.
    """

    key: tuple[str, str | None]
    column_ref: "weakref.ref[Column]"
    lock: threading.RLock = field(default_factory=threading.RLock)
    cracker: CrackerIndex | PagedCrackerIndex | None = None
    cracker_bytes: int = 0
    cracker_refused: bool = False  # e.g. non-numeric, empty, paged w/o paged cracking
    zonemap: ZoneMap | None = None


class IndexManager:
    """Owns, refines, consults and evicts per-column adaptive index state.

    Parameters
    ----------
    budget:
        Optional shared :class:`repro.core.caching.MemoryBudget`; every
        cracker's bytes are charged to it and the least-recently-consulted
        crackers are dropped when the budget asks this participant to
        reclaim.
    zone_block_rows:
        Block size used when an in-memory :class:`ZoneMap` is requested
        through :meth:`zonemap_for` (paged columns use their persisted
        chunk zonemaps instead).
    max_crackers:
        Upper bound on simultaneously live crackers; beyond it the
        least-recently-consulted cracker is dropped (and rebuilt on its
        next consult).  This bounds the manager's memory even without a
        shared budget — relevant for a long-lived shared manager serving
        many sessions with private columns.
    max_pieces / min_piece_rows:
        Coalescing knobs forwarded to every in-memory cracker: the piece
        count stays under ``max_pieces`` no matter how many predicates a
        session issues, with pieces under ``min_piece_rows`` the natural
        merge victims.
    stochastic / crack_seed:
        Enable the MDD1R-style stochastic crack mix on every cracker built
        by this manager; ``crack_seed`` makes the random pivot stream
        deterministic per manager.
    paged_cracking:
        Crack paged (chunked) columns with a disk-resident
        :class:`~repro.indexing.paged.PagedCrackerIndex`; when off they
        fall back to zonemap chunk pruning only.
    spill_store:
        Optional :class:`repro.persist.diskstore.DiskColumnStore` that
        evicted chunk crackers spill their cracked arrays through instead
        of dropping them.
    max_resident_chunks:
        Per paged cracker, how many chunk crackers stay in memory.
    """

    def __init__(
        self,
        budget=None,
        zone_block_rows: int = 4096,
        max_crackers: int = 64,
        *,
        max_pieces: int = DEFAULT_MAX_PIECES,
        min_piece_rows: int = DEFAULT_MIN_PIECE_ROWS,
        stochastic: bool = False,
        crack_seed: int = 0,
        paged_cracking: bool = True,
        spill_store=None,
        max_resident_chunks: int = DEFAULT_MAX_RESIDENT_CHUNKS,
    ) -> None:
        self.zone_block_rows = zone_block_rows
        self.max_crackers = max_crackers
        self.max_pieces = int(max_pieces)
        self.min_piece_rows = int(min_piece_rows)
        self.stochastic = bool(stochastic)
        self.crack_seed = int(crack_seed)
        self.paged_cracking = bool(paged_cracking)
        self.max_resident_chunks = int(max_resident_chunks)
        self._spill_store = spill_store
        self.stats = IndexManagerStats()
        self._lock = threading.RLock()
        #: keyed by (object, column, id(column)); insertion/consultation
        #: order doubles as the reclaim/cap LRU
        self._states: OrderedDict[
            tuple[str, str | None, int], _ColumnIndexState
        ] = OrderedDict()
        self._budget = budget
        self._budget_key = f"index-manager-{id(self):x}"
        if budget is not None:
            budget.register(self._budget_key, self._reclaim_bytes)

    # ------------------------------------------------------------------ #
    # state bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def tracked_keys(self) -> list[tuple[str, str | None]]:
        """Every (object, column) pair the manager currently tracks."""
        with self._lock:
            self._prune_dead_locked()
            seen: list[tuple[str, str | None]] = []
            for state in self._states.values():
                if state.key not in seen:
                    seen.append(state.key)
            return seen

    @property
    def index_bytes(self) -> int:
        """Bytes currently held by cracker state across all columns."""
        with self._lock:
            return sum(state.cracker_bytes for state in self._states.values())

    def stats_snapshot(self) -> dict[str, int]:
        """Every activity counter plus point-in-time gauges.

        Gauges (``crackers_live``, ``piece_count``, ``cracker_bytes``,
        ``resident_chunk_crackers``, ``spilled_chunk_crackers``) are read
        without column locks — piece counts are single-attribute reads of
        atomically swapped arrays, so a concurrent crack can skew a gauge
        by a piece but never tear it.  This is the observability surface
        the session metrics and the fleet ``stats`` verb expose.
        """
        with self._lock:
            data = self.stats.snapshot()
            states = list(self._states.values())
        live = pieces = nbytes = resident = spilled = 0
        for state in states:
            cracker = state.cracker
            if cracker is None:
                continue
            live += 1
            pieces += int(getattr(cracker, "num_pieces", 0))
            nbytes += state.cracker_bytes
            resident += int(getattr(cracker, "num_resident_chunks", 0))
            spilled += int(getattr(cracker, "num_spilled_chunks", 0))
        data.update(
            crackers_live=live,
            piece_count=pieces,
            cracker_bytes=nbytes,
            resident_chunk_crackers=resident,
            spilled_chunk_crackers=spilled,
        )
        return data

    def has_cracker(self, object_name: str, column_name: str | None = None) -> bool:
        """Whether any live cracker exists for the pair."""
        with self._lock:
            return any(
                state.cracker is not None
                for state in self._states.values()
                if state.key == (object_name, column_name)
            )

    def cracker_for(
        self, object_name: str, column_name: str | None = None
    ) -> CrackerIndex | None:
        """The most recently consulted live cracker of one pair (or ``None``)."""
        with self._lock:
            for key in reversed(self._states):
                state = self._states[key]
                if state.key == (object_name, column_name) and state.cracker is not None:
                    return state.cracker
            return None

    def _prune_dead_locked(self) -> None:
        """Drop states whose column has been garbage collected.

        Caller holds the manager lock.  A state with a live cracker can
        never be dead (the cracker strongly references its column), so
        pruning releases no budget bytes.
        """
        doomed = [key for key, state in self._states.items() if state.column_ref() is None]
        for key in doomed:
            del self._states[key]

    def _state_for(self, object_name: str, column_name: str | None, column: Column):
        """Get-or-create the state for one concrete column object.

        Keyed by identity on top of the name pair: sessions sharing base
        storage by reference land on one state (and one cracker), while a
        session with a *private* same-named column gets its own state —
        serving it rowids cracked from different data would be a
        correctness bug, and discarding the peer's cracker on every
        access would be a quadratic performance one.
        """
        key = (object_name, column_name, id(column))
        with self._lock:
            self._prune_dead_locked()
            state = self._states.get(key)
            if state is None:
                state = _ColumnIndexState(
                    key=(object_name, column_name), column_ref=weakref.ref(column)
                )
                self._states[key] = state
            self._states.move_to_end(key)  # LRU refresh
        return state

    def _enforce_cracker_cap(self, keep: _ColumnIndexState) -> None:
        """Drop least-recently-consulted crackers beyond ``max_crackers``.

        ``keep`` (the state just built or adopted) is never the victim.
        Called with no locks held; bytes are released after unlinking.
        """
        released = 0
        victims: list[CrackerIndex | PagedCrackerIndex] = []
        with self._lock:
            live = [
                state
                for state in self._states.values()
                if state.cracker is not None and state is not keep
            ]
            excess = (len(live) + 1) - self.max_crackers
            for state in live[:max(0, excess)]:
                victims.append(state.cracker)
                state.cracker = None
                released += state.cracker_bytes
                state.cracker_bytes = 0
                self.stats.crackers_dropped += 1
        self._release_bytes(released)
        for cracker in victims:
            if isinstance(cracker, PagedCrackerIndex):
                cracker.discard_spills()

    # ------------------------------------------------------------------ #
    # shared-budget accounting
    # ------------------------------------------------------------------ #
    def _charge_bytes(self, nbytes: int) -> None:
        if self._budget is not None and nbytes > 0:
            self._budget.charge(self._budget_key, nbytes)

    def _release_bytes(self, nbytes: int) -> None:
        if self._budget is not None and nbytes > 0:
            self._budget.release(self._budget_key, nbytes)

    def _reclaim_bytes(self, nbytes: int) -> int:
        """Budget hook: spill or drop least-recently-consulted crackers.

        Paged crackers *spill* their LRU chunk crackers through the spill
        store (cracked organization survives on disk) under their column
        lock — safe because no thread ever calls the budget while holding
        a column lock, so the lock is always released promptly.  In-memory
        crackers are unlinked without taking their column lock — a lookup
        holding a reference to the orphaned index completes correctly on
        it; the next consultation rebuilds.  Only charged state
        (``cracker_bytes > 0``) is touched, so a cracker built but not yet
        charged is never double-counted.
        """
        with self._lock:
            states = list(self._states.values())
        freed = 0
        for state in states:
            if freed >= nbytes:
                break
            cracker = state.cracker
            if cracker is None or state.cracker_bytes == 0:
                continue
            if isinstance(cracker, PagedCrackerIndex):
                with state.lock:
                    if state.cracker is not cracker or state.cracker_bytes == 0:
                        continue
                    before = _activity_probe(cracker)
                    got = min(
                        cracker.release_bytes(nbytes - freed), state.cracker_bytes
                    )
                    deltas = tuple(
                        now - then
                        for then, now in zip(before, _activity_probe(cracker))
                    )
                    state.cracker_bytes -= got
                freed += got
                with self._lock:
                    self.stats.apply_activity(deltas)
                continue
            with self._lock:
                if state.cracker is not cracker or state.cracker_bytes == 0:
                    continue
                state.cracker = None
                freed += state.cracker_bytes
                state.cracker_bytes = 0
                self.stats.crackers_dropped += 1
        return freed

    # ------------------------------------------------------------------ #
    # building / adopting crackers
    # ------------------------------------------------------------------ #
    def _cracker_supported(self, column: Column) -> bool:
        """Whether any cracker kind applies to ``column``.

        Cracker arrays are dtype-preserving, so every numeric dtype cracks
        exactly — including int64 beyond 2**53, where piece membership is
        decided by the same array-vs-float promotion ``Predicate.mask``
        uses.  Chunked columns qualify only when paged cracking is on
        (otherwise they answer from their zonemaps with no index state).
        """
        if not column.is_numeric or not len(column):
            return False
        if _is_chunked(column) and not self.paged_cracking:
            return False
        return True

    def _spill_prefix(self, state: _ColumnIndexState, column: Column) -> str:
        # the column's identity keys the spill namespace, matching the
        # state key: same-named private columns must never share spills
        object_name, column_name = state.key
        return f"{object_name}/{column_name or ''}#{id(column):x}"

    def _ensure_cracker(
        self, state: _ColumnIndexState, column: Column
    ) -> CrackerIndex | PagedCrackerIndex | None:
        """Build (or return) the state's cracker.  Caller holds state.lock.

        Returns ``None`` when the column cannot be cracked (non-numeric,
        empty, paged with paged cracking off).  Budget charging happens
        after the caller releases the column lock — see
        :meth:`_settle_cracker`.
        """
        if state.cracker is not None or state.cracker_refused:
            return state.cracker
        if not self._cracker_supported(column):
            state.cracker_refused = True
            return None
        if _is_chunked(column):
            state.cracker = PagedCrackerIndex(
                column,
                spill_store=self._spill_store,
                spill_prefix=self._spill_prefix(state, column),
                max_resident_chunks=self.max_resident_chunks,
                min_piece_rows=self.min_piece_rows,
                stochastic=self.stochastic,
                seed=self.crack_seed,
            )
            with self._lock:
                self.stats.crackers_built += 1
                self.stats.paged_crackers_built += 1
        else:
            state.cracker = CrackerIndex(
                column,
                max_pieces=self.max_pieces,
                min_piece_rows=self.min_piece_rows,
                stochastic=self.stochastic,
                seed=self.crack_seed,
            )
            with self._lock:
                self.stats.crackers_built += 1
        return state.cracker

    def _settle_cracker(self, state: _ColumnIndexState) -> None:
        """Reconcile a cracker's recorded bytes with its current size.

        Called with no locks held.  Works by delta so it covers both a
        freshly built cracker (recorded 0) and a paged cracker whose
        resident set grew or spilled since the last settle.
        """
        with state.lock:
            cracker = state.cracker
            if cracker is None:
                return
            recorded = state.cracker_bytes
            current = cracker.size_bytes
            if current == recorded:
                return
        delta = current - recorded
        if delta > 0:
            self._charge_bytes(delta)
        else:
            self._release_bytes(-delta)
        with state.lock:
            # record the adjustment only if the cracker survived AND no
            # concurrent settle or reclaim beat us to it — otherwise undo
            # ours, or the budget carries phantom bytes forever
            if state.cracker is cracker and state.cracker_bytes == recorded:
                state.cracker_bytes = current
                return
        if delta > 0:
            self._release_bytes(delta)
        else:
            self._charge_bytes(-delta)

    def adopt_cracker(
        self,
        object_name: str,
        column_name: str | None,
        column: Column,
        cracker_state: CrackerState,
    ) -> CrackerIndex:
        """Revive persisted cracker state for a live column (warm start).

        Raises :class:`repro.errors.StorageError` when the state does not
        fit the column (length mismatch, malformed piece structure); the
        snapshot attach path treats that as "start cold for this column".
        """
        cracker = CrackerIndex.from_state(column, cracker_state)
        state = self._state_for(object_name, column_name, column)
        with state.lock:
            previous_bytes = state.cracker_bytes
            state.cracker = cracker
            state.cracker_bytes = 0
            state.cracker_refused = False
        self._release_bytes(previous_bytes)
        with self._lock:
            self.stats.crackers_adopted += 1
        self._settle_cracker(state)
        self._enforce_cracker_cap(keep=state)
        return cracker

    def cracked_states(self) -> list[tuple[tuple[str, str | None], CrackerState]]:
        """Export live cracker state for snapshot persistence.

        At most one export per (object, column) pair: when several column
        identities share a name (private per-session copies), the most
        recently consulted cracker wins.
        """
        with self._lock:
            latest: dict[tuple[str, str | None], _ColumnIndexState] = {}
            for state in self._states.values():  # LRU order: later = fresher
                if state.cracker is not None:
                    latest[state.key] = state
            states = list(latest.values())
        exported = []
        for state in states:
            with state.lock:
                if state.cracker is not None:
                    exported.append((state.key, state.cracker.export_state()))
        return exported

    # ------------------------------------------------------------------ #
    # refinement (the gesture side effect)
    # ------------------------------------------------------------------ #
    def observe_predicate(
        self,
        object_name: str,
        column_name: str | None,
        column: Column,
        predicate: Predicate,
    ) -> bool:
        """Refine the pair's index around a gesture's predicate bounds.

        This is the touch-driven cracking hook the kernel calls after a
        qualifying gesture executed.  It mutates only index-tier state —
        never the gesture's outcome — and returns whether any new crack
        was performed.
        """
        bounds = predicate_range(predicate)
        if bounds is None or not column.is_numeric:
            return False
        state = self._state_for(object_name, column_name, column)
        with state.lock:
            cracker = self._ensure_cracker(state, column)
            if cracker is None:
                return False
            before = _activity_probe(cracker)
            cracker.crack_range(*bounds)
            deltas = tuple(
                now - then for then, now in zip(before, _activity_probe(cracker))
            )
        self._settle_cracker(state)
        self._enforce_cracker_cap(keep=state)
        with self._lock:
            self.stats.refinements += 1
            self.stats.apply_activity(deltas)
        return deltas[0] > 0  # cracks_performed delta

    # ------------------------------------------------------------------ #
    # consultation (the read side)
    # ------------------------------------------------------------------ #
    def select_rowids(
        self,
        object_name: str,
        column_name: str | None,
        column: Column,
        predicate: Predicate,
    ) -> RangeSelection | None:
        """Rowids satisfying ``predicate``, scanning as little as possible.

        Returns ``None`` when the tier has no strategy for this predicate
        or column (non-range predicate, non-numeric or empty column) —
        the caller then runs the full scan itself.  The returned
        rowids are always sorted and bit-identical to
        ``np.nonzero(predicate.mask(column.values))[0]``.
        """
        with self._lock:
            self.stats.consultations += 1
        bounds = predicate_range(predicate)
        if bounds is None or not column.is_numeric:
            return None
        low, high = bounds
        state = self._state_for(object_name, column_name, column)
        refined = False
        deltas: tuple[int, ...] = ()
        strategy = None
        with state.lock:
            cracker = self._ensure_cracker(state, column)
            if cracker is not None:
                before = _activity_probe(cracker)
                scanned_before = cracker.values_scanned_total
                rowids = cracker.rowids_in_range(low, high, crack=True)
                rows_scanned = cracker.values_scanned_total - scanned_before
                covered = cracker.covered_rows
                n = len(column)
                if covered < n:
                    # validity window: the cracker answers exactly for the
                    # prefix it was built over; rows appended since then
                    # are scanned with the predicate itself (exact by
                    # definition) until merge_tails folds them in.  Tail
                    # hits all land at rowids >= covered, so appending
                    # them keeps the result sorted.  raw_slice (paged
                    # columns) bypasses the budget-charging chunk cache —
                    # never call the budget under a column lock.
                    raw = getattr(column, "raw_slice", None)
                    with trace_span("tail_scan", object=object_name, rows=n - covered):
                        tail = np.asarray(
                            raw(covered, n) if callable(raw) else column.slice(covered, n)
                        )
                        hits = np.nonzero(predicate.mask(tail))[0].astype(np.int64)
                        if hits.size:
                            rowids = np.concatenate([rowids, hits + covered])
                        rows_scanned += int(tail.shape[0])
                deltas = tuple(
                    now - then for then, now in zip(before, _activity_probe(cracker))
                )
                refined = deltas[0] > 0
                strategy = (
                    "paged-cracker"
                    if isinstance(cracker, PagedCrackerIndex)
                    else "cracker"
                )
        if strategy is not None:
            self._settle_cracker(state)
            self._enforce_cracker_cap(keep=state)
        elif _is_chunked(column) and len(column):
            # chunk pruning touches no mutable index state: run the I/O
            # and masking outside the column lock so concurrent sessions
            # selecting over one shared paged column do not serialize
            rowids, rows_scanned = self._chunk_pruned_select(column, predicate, low, high)
            strategy = "zonemap"
        else:
            return None
        with self._lock:
            self.stats.indexed_consultations += 1
            if deltas:
                self.stats.apply_activity(deltas)
            if refined:
                self.stats.refinements += 1
        return RangeSelection(
            object_name=object_name,
            column_name=column_name,
            predicate=predicate,
            rowids=rowids,
            strategy=strategy,
            rows_scanned=rows_scanned,
            refined=refined,
        )

    @staticmethod
    def _chunk_pruned_select(
        column: Column, predicate: Predicate, low: float, high: float
    ) -> tuple[np.ndarray, int]:
        """Exact selection over a paged column, faulting only candidate chunks.

        The persisted chunk zonemap excludes chunks whose ``[min, max]``
        cannot overlap ``[low, high]``; the surviving chunks are read
        through the store's chunk cache and masked with the *predicate
        itself*, so inclusivity and NaN semantics are exactly the full
        scan's.
        """
        chunk_rows = column.chunk_rows
        n = len(column)
        parts: list[np.ndarray] = []
        scanned = 0
        for index in column.chunks_for_predicate(low, high):
            start = index * chunk_rows
            stop = min(n, start + chunk_rows)
            chunk = column.slice(start, stop)
            scanned += len(chunk)
            hits = np.nonzero(predicate.mask(chunk))[0]
            if hits.size:
                parts.append(hits.astype(np.int64) + start)
        if not parts:
            return np.empty(0, dtype=np.int64), scanned
        return np.concatenate(parts), scanned

    # ------------------------------------------------------------------ #
    # zonemap introspection for in-memory columns
    # ------------------------------------------------------------------ #
    def zonemap_for(
        self, object_name: str, column_name: str | None, column: Column
    ) -> ZoneMap | None:
        """The (lazily built) block zonemap of an in-memory numeric column.

        Paged columns answer pruning questions from their persisted chunk
        directory instead, so this returns ``None`` for them; callers
        wanting chunk candidates should use
        :meth:`repro.persist.paged_column.PagedColumn.chunks_for_predicate`.
        """
        if _is_chunked(column) or not column.is_numeric or not len(column):
            return None
        state = self._state_for(object_name, column_name, column)
        with state.lock:
            if state.zonemap is None:
                state.zonemap = ZoneMap(column, block_rows=self.zone_block_rows)
            elif state.zonemap.covered_rows < len(column):
                # the column grew under the map: extend incrementally,
                # only the trailing (possibly partial) zone is rebuilt
                state.zonemap.extend()
            return state.zonemap

    # ------------------------------------------------------------------ #
    # validity windows (live appends)
    # ------------------------------------------------------------------ #
    def extend_valid_prefix(
        self,
        object_name: str,
        column_name: str | None = None,
        new_length: int | None = None,
    ) -> int:
        """Signal that ``object_name``'s columns *grew* (append, not replace).

        The narrow alternative to :meth:`invalidate` for live ingestion:
        existing cracked state is kept — the crackers simply cover a
        shorter prefix (their validity window) and :meth:`select_rowids`
        scans the appended tail until :meth:`merge_tails` folds it in.
        Zonemaps are extended incrementally and a previously *refused*
        cracker (e.g. the column used to be empty) becomes eligible again.
        If any tracked cracker turns out to cover *more* rows than the
        column now holds, the data did not grow — it was replaced or
        truncated — and the call degrades to a full :meth:`invalidate`.
        Returns how many column states were touched (or dropped, on the
        degraded path).
        """
        with self._lock:
            states = [
                state
                for key, state in self._states.items()
                if key[0] == object_name
                and (column_name is None or key[1] == column_name)
            ]
        touched = 0
        for state in states:
            column = state.column_ref()
            if column is None:
                continue
            target = len(column) if new_length is None else int(new_length)
            with state.lock:
                cracker = state.cracker
                if cracker is not None and cracker.covered_rows > target:
                    return self.invalidate(object_name)
                state.cracker_refused = False
                if state.zonemap is not None and state.zonemap.covered_rows < target:
                    state.zonemap.extend()
            touched += 1
        if touched:
            with self._lock:
                self.stats.prefix_extensions += 1
        return touched

    def merge_tails(
        self, object_name: str | None = None, column_name: str | None = None
    ) -> int:
        """Fold appended tails into every matching live cracker.

        Returns total rows folded.  This is the background-lane entry
        point: gestures keep answering through the validity window while
        the merge runs; each cracker's merge is a single pass under its
        own column lock, so lookups on *other* columns never wait.
        """
        with self._lock:
            states = [
                state
                for key, state in self._states.items()
                if (object_name is None or key[0] == object_name)
                and (column_name is None or key[1] == column_name)
            ]
        merged = 0
        for state in states:
            with state.lock:
                cracker = state.cracker
                if cracker is None:
                    continue
                before = _activity_probe(cracker)
                merged += cracker.merge_tail()
                deltas = tuple(
                    now - then for then, now in zip(before, _activity_probe(cracker))
                )
            self._settle_cracker(state)
            with self._lock:
                self.stats.apply_activity(deltas)
        return merged

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, object_name: str) -> int:
        """Drop every index derived from ``object_name`` (its data changed).

        Returns how many column states were discarded.  Called by the
        kernel's replace-reload path; a shared manager invalidates for
        every session at once, which is exactly right — the old data is
        gone for all of them.
        """
        released = 0
        dropped = 0
        victims: list[PagedCrackerIndex] = []
        with self._lock:
            doomed = [
                key
                for key, state in self._states.items()
                if state.key[0] == object_name
            ]
            for key in doomed:
                state = self._states.pop(key)
                released += state.cracker_bytes
                if state.cracker is not None:
                    self.stats.crackers_dropped += 1
                if isinstance(state.cracker, PagedCrackerIndex):
                    victims.append(state.cracker)
                state.cracker = None
                state.cracker_bytes = 0
                dropped += 1
            if dropped:
                self.stats.invalidations += 1
        self._release_bytes(released)
        for cracker in victims:
            cracker.discard_spills()
        return dropped

    def clear(self) -> int:
        """Drop all index state (returns how many column states existed)."""
        released = 0
        victims: list[PagedCrackerIndex] = []
        with self._lock:
            count = len(self._states)
            for state in self._states.values():
                released += state.cracker_bytes
                if state.cracker is not None:
                    self.stats.crackers_dropped += 1
                if isinstance(state.cracker, PagedCrackerIndex):
                    victims.append(state.cracker)
                state.cracker = None
                state.cracker_bytes = 0
            self._states.clear()
        self._release_bytes(released)
        for cracker in victims:
            cracker.discard_spills()
        return count
