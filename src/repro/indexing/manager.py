"""The adaptive indexing tier: per-column index state in the gesture hot path.

The paper's core bet is that physical organization should adapt as a side
effect of how users touch data.  :class:`IndexManager` is the seam that
wires that bet into the kernel:

* it owns per-``(object, column)`` index state — a
  :class:`repro.indexing.cracking.CrackerIndex` for in-memory numeric
  columns, zonemap chunk pruning for out-of-core
  :class:`repro.persist.paged_column.PagedColumn` objects (their per-chunk
  min/max ships with the on-disk format, so no build cost is paid at all);
* every qualifying gesture — a slide whose action carries a range-shaped
  predicate — *refines* the matching cracker via
  :meth:`observe_predicate`, outside the gesture's outcome accounting, so
  ``GestureOutcome`` counters stay bit-identical with indexing on or off;
* bulk range selections (:meth:`repro.core.kernel.DbTouchKernel.select_where`)
  *consult* the tier via :meth:`select_rowids`, scanning only the cracked
  pieces / non-pruned chunks that can overlap the predicate instead of the
  whole column;
* cracker state is charged to an optional shared
  :class:`repro.core.caching.MemoryBudget` (the same allowance the touch
  cache and the disk chunk cache split), reclaimed least-recently-consulted
  first when peers need room;
* :meth:`invalidate` drops every index derived from an object whose data
  was replace-reloaded, and :meth:`adopt_cracker` revives persisted state
  from a :class:`repro.persist.snapshot.StoreCatalog` warm start.

**Concurrency.**  One manager may be shared by every session of a
:class:`repro.service.MultiSessionServer` whose sessions attach the same
base storage by reference; refinement and consultation then run on
parallel scheduler workers.  All piece mutation happens under a per-column
lock; the manager-level lock only guards the state dictionary and the
LRU/statistics bookkeeping, and is never held while a column lock is taken
or the budget is called (the deadlock-freedom rule documented on
``MemoryBudget``).  Budget reclaims drop a column's cracker by atomically
unlinking it — an in-flight lookup keeps its own reference and completes
on the orphaned (still self-consistent) index.

**Exactness.**  Indexed selections must agree bit-for-bit with
``Predicate.mask`` over the base data.  Three guards make that hold: NaN
rows are segregated by the cracker and masked per-chunk by the zonemap
path; inclusive/exclusive predicate bounds are mapped onto the cracker's
half-open ranges with ``np.nextafter``; and integer columns whose extremes
exceed 2**53 (where the cracker's float64 copy would round) refuse the
cracker and fall back to a full scan.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.engine.filter import Comparison, Predicate
from repro.indexing.cracking import CrackerIndex, CrackerState
from repro.indexing.zonemap import ZoneMap
from repro.storage.column import Column


def _is_chunked(column: Column) -> bool:
    """Whether ``column`` exposes the paged-column chunk surface.

    Duck-typed (rather than ``isinstance`` against
    :class:`repro.persist.paged_column.PagedColumn`) so the indexing tier
    does not import the persist package — the snapshot module imports this
    package for warm starts, and a class-level dependency both ways would
    be an import cycle waiting to happen.
    """
    return callable(getattr(column, "chunks_for_predicate", None))

#: Largest integer magnitude exactly representable in float64.  Integer
#: columns with values beyond this cannot be cracked (the cracker keeps a
#: float64 copy) without risking boundary misclassification.
EXACT_INT_LIMIT = 2**53


def predicate_range(predicate: Predicate) -> tuple[float, float] | None:
    """The half-open ``[low, high)`` value range of a range-shaped predicate.

    Inclusive upper bounds are mapped to half-open form with
    ``np.nextafter`` so the cracker's ``>= low and < high`` test agrees
    exactly with :meth:`repro.engine.filter.Predicate.matches`.  Returns
    ``None`` for predicates that are not a contiguous range (``NE``) or
    whose operands are NaN/infinite — those fall back to a full scan.
    """
    operand = float(predicate.operand)
    if not math.isfinite(operand):
        return None
    comparison = predicate.comparison
    if comparison is Comparison.BETWEEN:
        upper = float(predicate.upper)
        if not math.isfinite(upper):
            return None
        return operand, float(np.nextafter(upper, math.inf))
    if comparison is Comparison.EQ:
        return operand, float(np.nextafter(operand, math.inf))
    if comparison is Comparison.LT:
        return -math.inf, operand
    if comparison is Comparison.LE:
        return -math.inf, float(np.nextafter(operand, math.inf))
    if comparison is Comparison.GT:
        return float(np.nextafter(operand, math.inf)), math.inf
    if comparison is Comparison.GE:
        return operand, math.inf
    return None  # NE is not a contiguous range


@dataclass
class RangeSelection:
    """The result of one bulk range selection (indexed or scanned).

    ``strategy`` records how the rowids were found: ``"cracker"`` (cracked
    pieces), ``"zonemap"`` (chunk-pruned paged scan) or ``"scan"`` (full
    scan of the base data).  ``rows_scanned`` is how many values were
    actually inspected — the adaptive win is this number shrinking while
    ``rowids`` stays exactly what a full scan returns.
    """

    object_name: str
    column_name: str | None
    predicate: Predicate
    rowids: np.ndarray
    strategy: str
    rows_scanned: int
    refined: bool = False
    values: np.ndarray | None = None
    selected: dict[str, np.ndarray] | None = None
    duration_s: float = 0.0

    @property
    def matches(self) -> int:
        """Number of qualifying rows."""
        return int(self.rowids.size)


@dataclass
class IndexManagerStats:
    """Counters describing the tier's activity (monotonic, lock-guarded)."""

    consultations: int = 0
    indexed_consultations: int = 0
    refinements: int = 0
    cracks_performed: int = 0
    crackers_built: int = 0
    crackers_adopted: int = 0
    crackers_dropped: int = 0
    invalidations: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of every counter."""
        return {
            "consultations": self.consultations,
            "indexed_consultations": self.indexed_consultations,
            "refinements": self.refinements,
            "cracks_performed": self.cracks_performed,
            "crackers_built": self.crackers_built,
            "crackers_adopted": self.crackers_adopted,
            "crackers_dropped": self.crackers_dropped,
            "invalidations": self.invalidations,
        }


@dataclass
class _ColumnIndexState:
    """Index state bound to one concrete column object.

    States are keyed by ``(object, column, id(column))`` — the identity
    dimension lets same-named private columns of different sessions keep
    separate index state under one shared manager instead of thrashing
    each other's crackers.  The column itself is held weakly so a dead
    session's private columns do not pin the manager's bookkeeping; a
    live cracker keeps its column alive through ``CrackerIndex.column``,
    so a state with a cracker never sees its weakref die.
    """

    key: tuple[str, str | None]
    column_ref: "weakref.ref[Column]"
    lock: threading.RLock = field(default_factory=threading.RLock)
    cracker: CrackerIndex | None = None
    cracker_bytes: int = 0
    cracker_refused: bool = False  # e.g. int column beyond EXACT_INT_LIMIT
    zonemap: ZoneMap | None = None


class IndexManager:
    """Owns, refines, consults and evicts per-column adaptive index state.

    Parameters
    ----------
    budget:
        Optional shared :class:`repro.core.caching.MemoryBudget`; every
        cracker's bytes are charged to it and the least-recently-consulted
        crackers are dropped when the budget asks this participant to
        reclaim.
    zone_block_rows:
        Block size used when an in-memory :class:`ZoneMap` is requested
        through :meth:`zonemap_for` (paged columns use their persisted
        chunk zonemaps instead).
    max_crackers:
        Upper bound on simultaneously live crackers; beyond it the
        least-recently-consulted cracker is dropped (and rebuilt on its
        next consult).  This bounds the manager's memory even without a
        shared budget — relevant for a long-lived shared manager serving
        many sessions with private columns.
    """

    def __init__(
        self, budget=None, zone_block_rows: int = 4096, max_crackers: int = 64
    ) -> None:
        self.zone_block_rows = zone_block_rows
        self.max_crackers = max_crackers
        self.stats = IndexManagerStats()
        self._lock = threading.RLock()
        #: keyed by (object, column, id(column)); insertion/consultation
        #: order doubles as the reclaim/cap LRU
        self._states: OrderedDict[
            tuple[str, str | None, int], _ColumnIndexState
        ] = OrderedDict()
        self._budget = budget
        self._budget_key = f"index-manager-{id(self):x}"
        if budget is not None:
            budget.register(self._budget_key, self._reclaim_bytes)

    # ------------------------------------------------------------------ #
    # state bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def tracked_keys(self) -> list[tuple[str, str | None]]:
        """Every (object, column) pair the manager currently tracks."""
        with self._lock:
            self._prune_dead_locked()
            seen: list[tuple[str, str | None]] = []
            for state in self._states.values():
                if state.key not in seen:
                    seen.append(state.key)
            return seen

    @property
    def index_bytes(self) -> int:
        """Bytes currently held by cracker state across all columns."""
        with self._lock:
            return sum(state.cracker_bytes for state in self._states.values())

    def has_cracker(self, object_name: str, column_name: str | None = None) -> bool:
        """Whether any live cracker exists for the pair."""
        with self._lock:
            return any(
                state.cracker is not None
                for state in self._states.values()
                if state.key == (object_name, column_name)
            )

    def cracker_for(
        self, object_name: str, column_name: str | None = None
    ) -> CrackerIndex | None:
        """The most recently consulted live cracker of one pair (or ``None``)."""
        with self._lock:
            for key in reversed(self._states):
                state = self._states[key]
                if state.key == (object_name, column_name) and state.cracker is not None:
                    return state.cracker
            return None

    def _prune_dead_locked(self) -> None:
        """Drop states whose column has been garbage collected.

        Caller holds the manager lock.  A state with a live cracker can
        never be dead (the cracker strongly references its column), so
        pruning releases no budget bytes.
        """
        doomed = [key for key, state in self._states.items() if state.column_ref() is None]
        for key in doomed:
            del self._states[key]

    def _state_for(self, object_name: str, column_name: str | None, column: Column):
        """Get-or-create the state for one concrete column object.

        Keyed by identity on top of the name pair: sessions sharing base
        storage by reference land on one state (and one cracker), while a
        session with a *private* same-named column gets its own state —
        serving it rowids cracked from different data would be a
        correctness bug, and discarding the peer's cracker on every
        access would be a quadratic performance one.
        """
        key = (object_name, column_name, id(column))
        with self._lock:
            self._prune_dead_locked()
            state = self._states.get(key)
            if state is None:
                state = _ColumnIndexState(
                    key=(object_name, column_name), column_ref=weakref.ref(column)
                )
                self._states[key] = state
            self._states.move_to_end(key)  # LRU refresh
        return state

    def _enforce_cracker_cap(self, keep: _ColumnIndexState) -> None:
        """Drop least-recently-consulted crackers beyond ``max_crackers``.

        ``keep`` (the state just built or adopted) is never the victim.
        Called with no locks held; bytes are released after unlinking.
        """
        released = 0
        with self._lock:
            live = [
                state
                for state in self._states.values()
                if state.cracker is not None and state is not keep
            ]
            excess = (len(live) + 1) - self.max_crackers
            for state in live[:max(0, excess)]:
                state.cracker = None
                released += state.cracker_bytes
                state.cracker_bytes = 0
                self.stats.crackers_dropped += 1
        self._release_bytes(released)

    # ------------------------------------------------------------------ #
    # shared-budget accounting
    # ------------------------------------------------------------------ #
    def _charge_bytes(self, nbytes: int) -> None:
        if self._budget is not None and nbytes > 0:
            self._budget.charge(self._budget_key, nbytes)

    def _release_bytes(self, nbytes: int) -> None:
        if self._budget is not None and nbytes > 0:
            self._budget.release(self._budget_key, nbytes)

    def _reclaim_bytes(self, nbytes: int) -> int:
        """Budget hook: drop least-recently-consulted crackers.

        Crackers are unlinked without taking their column lock — a lookup
        holding a reference to the orphaned index completes correctly on
        it; the next consultation rebuilds.  Only charged state
        (``cracker_bytes > 0``) is dropped, so a cracker built but not yet
        charged is never double-counted.
        """
        freed = 0
        with self._lock:
            for state in list(self._states.values()):
                if freed >= nbytes:
                    break
                if state.cracker is None or state.cracker_bytes == 0:
                    continue
                state.cracker = None
                freed += state.cracker_bytes
                state.cracker_bytes = 0
                self.stats.crackers_dropped += 1
        return freed

    # ------------------------------------------------------------------ #
    # building / adopting crackers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _cracker_supported(column: Column) -> bool:
        """Whether a cracker's float64 copy represents ``column`` exactly."""
        if _is_chunked(column):
            # materializing a full float64 copy would defeat out-of-core
            # storage; paged columns use their chunk zonemaps instead
            return False
        if not column.is_numeric or not len(column):
            return False
        if np.issubdtype(column.values.dtype, np.integer):
            lo, hi = column.values.min(), column.values.max()
            if abs(int(lo)) > EXACT_INT_LIMIT or abs(int(hi)) > EXACT_INT_LIMIT:
                return False
        return True

    def _ensure_cracker(
        self, state: _ColumnIndexState, column: Column
    ) -> CrackerIndex | None:
        """Build (or return) the state's cracker.  Caller holds state.lock.

        Returns ``None`` when the column cannot be cracked (paged, empty,
        non-representable).  Budget charging happens after the caller
        releases the column lock, via the returned state's
        ``cracker_bytes == 0`` marker — see :meth:`_settle_cracker`.
        """
        if state.cracker is not None or state.cracker_refused:
            return state.cracker
        if not self._cracker_supported(column):
            state.cracker_refused = True
            return None
        state.cracker = CrackerIndex(column)
        with self._lock:
            self.stats.crackers_built += 1
        return state.cracker

    def _settle_cracker(self, state: _ColumnIndexState) -> None:
        """Charge a freshly built cracker's bytes (no locks held)."""
        with state.lock:
            cracker = state.cracker
            if cracker is None or state.cracker_bytes:
                return
            nbytes = cracker.size_bytes
        self._charge_bytes(nbytes)
        with state.lock:
            # record the charge only if the cracker survived AND no
            # concurrent settle beat us to it — otherwise undo ours, or
            # the budget carries phantom bytes forever
            if state.cracker is cracker and state.cracker_bytes == 0:
                state.cracker_bytes = nbytes
                return
        self._release_bytes(nbytes)

    def adopt_cracker(
        self,
        object_name: str,
        column_name: str | None,
        column: Column,
        cracker_state: CrackerState,
    ) -> CrackerIndex:
        """Revive persisted cracker state for a live column (warm start).

        Raises :class:`repro.errors.StorageError` when the state does not
        fit the column (length mismatch, malformed piece structure); the
        snapshot attach path treats that as "start cold for this column".
        """
        cracker = CrackerIndex.from_state(column, cracker_state)
        state = self._state_for(object_name, column_name, column)
        with state.lock:
            previous_bytes = state.cracker_bytes
            state.cracker = cracker
            state.cracker_bytes = 0
            state.cracker_refused = False
        self._release_bytes(previous_bytes)
        with self._lock:
            self.stats.crackers_adopted += 1
        self._settle_cracker(state)
        self._enforce_cracker_cap(keep=state)
        return cracker

    def cracked_states(self) -> list[tuple[tuple[str, str | None], CrackerState]]:
        """Export live cracker state for snapshot persistence.

        At most one export per (object, column) pair: when several column
        identities share a name (private per-session copies), the most
        recently consulted cracker wins.
        """
        with self._lock:
            latest: dict[tuple[str, str | None], _ColumnIndexState] = {}
            for state in self._states.values():  # LRU order: later = fresher
                if state.cracker is not None:
                    latest[state.key] = state
            states = list(latest.values())
        exported = []
        for state in states:
            with state.lock:
                if state.cracker is not None:
                    exported.append((state.key, state.cracker.export_state()))
        return exported

    # ------------------------------------------------------------------ #
    # refinement (the gesture side effect)
    # ------------------------------------------------------------------ #
    def observe_predicate(
        self,
        object_name: str,
        column_name: str | None,
        column: Column,
        predicate: Predicate,
    ) -> bool:
        """Refine the pair's index around a gesture's predicate bounds.

        This is the touch-driven cracking hook the kernel calls after a
        qualifying gesture executed.  It mutates only index-tier state —
        never the gesture's outcome — and returns whether any new crack
        was performed.
        """
        bounds = predicate_range(predicate)
        if bounds is None or not column.is_numeric:
            return False
        state = self._state_for(object_name, column_name, column)
        with state.lock:
            cracker = self._ensure_cracker(state, column)
            if cracker is None:
                return False
            before = cracker.cracks_performed
            cracker.crack_range(*bounds)
            new_cracks = cracker.cracks_performed - before
        self._settle_cracker(state)
        self._enforce_cracker_cap(keep=state)
        with self._lock:
            self.stats.refinements += 1
            self.stats.cracks_performed += new_cracks
        return new_cracks > 0

    # ------------------------------------------------------------------ #
    # consultation (the read side)
    # ------------------------------------------------------------------ #
    def select_rowids(
        self,
        object_name: str,
        column_name: str | None,
        column: Column,
        predicate: Predicate,
    ) -> RangeSelection | None:
        """Rowids satisfying ``predicate``, scanning as little as possible.

        Returns ``None`` when the tier has no strategy for this predicate
        or column (non-range predicate, non-numeric or non-representable
        column) — the caller then runs the full scan itself.  The returned
        rowids are always sorted and bit-identical to
        ``np.nonzero(predicate.mask(column.values))[0]``.
        """
        with self._lock:
            self.stats.consultations += 1
        bounds = predicate_range(predicate)
        if bounds is None or not column.is_numeric:
            return None
        low, high = bounds
        state = self._state_for(object_name, column_name, column)
        refined = False
        new_cracks = 0
        strategy = None
        with state.lock:
            cracker = self._ensure_cracker(state, column)
            if cracker is not None:
                before = cracker.cracks_performed
                scanned_before = cracker.values_scanned_total
                cracker.crack_range(low, high)
                rowids = cracker.rowids_in_range(low, high, crack=False)
                rows_scanned = cracker.values_scanned_total - scanned_before
                new_cracks = cracker.cracks_performed - before
                refined = new_cracks > 0
                strategy = "cracker"
        if strategy is not None:
            self._settle_cracker(state)
            self._enforce_cracker_cap(keep=state)
        elif _is_chunked(column) and len(column):
            # chunk pruning touches no mutable index state: run the I/O
            # and masking outside the column lock so concurrent sessions
            # selecting over one shared paged column do not serialize
            rowids, rows_scanned = self._chunk_pruned_select(column, predicate, low, high)
            strategy = "zonemap"
        else:
            return None
        with self._lock:
            self.stats.indexed_consultations += 1
            self.stats.cracks_performed += new_cracks
            if refined:
                self.stats.refinements += 1
        return RangeSelection(
            object_name=object_name,
            column_name=column_name,
            predicate=predicate,
            rowids=rowids,
            strategy=strategy,
            rows_scanned=rows_scanned,
            refined=refined,
        )

    @staticmethod
    def _chunk_pruned_select(
        column: Column, predicate: Predicate, low: float, high: float
    ) -> tuple[np.ndarray, int]:
        """Exact selection over a paged column, faulting only candidate chunks.

        The persisted chunk zonemap excludes chunks whose ``[min, max]``
        cannot overlap ``[low, high]``; the surviving chunks are read
        through the store's chunk cache and masked with the *predicate
        itself*, so inclusivity and NaN semantics are exactly the full
        scan's.
        """
        chunk_rows = column.chunk_rows
        n = len(column)
        parts: list[np.ndarray] = []
        scanned = 0
        for index in column.chunks_for_predicate(low, high):
            start = index * chunk_rows
            stop = min(n, start + chunk_rows)
            chunk = column.slice(start, stop)
            scanned += len(chunk)
            hits = np.nonzero(predicate.mask(chunk))[0]
            if hits.size:
                parts.append(hits.astype(np.int64) + start)
        if not parts:
            return np.empty(0, dtype=np.int64), scanned
        return np.concatenate(parts), scanned

    # ------------------------------------------------------------------ #
    # zonemap introspection for in-memory columns
    # ------------------------------------------------------------------ #
    def zonemap_for(
        self, object_name: str, column_name: str | None, column: Column
    ) -> ZoneMap | None:
        """The (lazily built) block zonemap of an in-memory numeric column.

        Paged columns answer pruning questions from their persisted chunk
        directory instead, so this returns ``None`` for them; callers
        wanting chunk candidates should use
        :meth:`repro.persist.paged_column.PagedColumn.chunks_for_predicate`.
        """
        if _is_chunked(column) or not column.is_numeric or not len(column):
            return None
        state = self._state_for(object_name, column_name, column)
        with state.lock:
            if state.zonemap is None:
                state.zonemap = ZoneMap(column, block_rows=self.zone_block_rows)
            return state.zonemap

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, object_name: str) -> int:
        """Drop every index derived from ``object_name`` (its data changed).

        Returns how many column states were discarded.  Called by the
        kernel's replace-reload path; a shared manager invalidates for
        every session at once, which is exactly right — the old data is
        gone for all of them.
        """
        released = 0
        dropped = 0
        with self._lock:
            doomed = [
                key
                for key, state in self._states.items()
                if state.key[0] == object_name
            ]
            for key in doomed:
                state = self._states.pop(key)
                released += state.cracker_bytes
                if state.cracker is not None:
                    self.stats.crackers_dropped += 1
                state.cracker = None
                state.cracker_bytes = 0
                dropped += 1
            if dropped:
                self.stats.invalidations += 1
        self._release_bytes(released)
        return dropped

    def clear(self) -> int:
        """Drop all index state (returns how many column states existed)."""
        released = 0
        with self._lock:
            count = len(self._states)
            for state in self._states.values():
                released += state.cracker_bytes
                if state.cracker is not None:
                    self.stats.crackers_dropped += 1
                state.cracker = None
                state.cracker_bytes = 0
            self._states.clear()
        self._release_bytes(released)
        return count
