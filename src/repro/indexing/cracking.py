"""Touch-driven cracking: adaptive indexing from touched ranges.

Database cracking (which the paper cites as one of its inspirations)
refines a column's physical organization as a side effect of the queries
that run.  In dbTouch the "queries" are gestures: every slide that filters
a value range is an opportunity to partition the index around that range.
The cracker index below maintains a sorted set of cracked pieces over a
*copy* of the column (the base data is never reordered) and narrows the
region that must be scanned for subsequent predicates on the same column.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.storage.column import Column


@dataclass(frozen=True)
class CrackPiece:
    """A contiguous piece of the cracker column known to lie in [low, high)."""

    start: int
    stop: int
    low: float
    high: float

    @property
    def num_rows(self) -> int:
        """Rows inside this piece."""
        return self.stop - self.start


class CrackerIndex:
    """An adaptive index refined by the value ranges gestures touch.

    The cracker column is a reordered copy of the base column together with
    the original rowids, so lookups can report base rowids.  Each call to
    :meth:`crack` partitions one or more pieces around the requested value
    bounds; subsequent range lookups only scan the pieces overlapping the
    requested range.
    """

    def __init__(self, column: Column):
        if not column.is_numeric:
            raise StorageError("cracking requires a numeric column")
        self.column = column
        self._values = column.values.astype(np.float64).copy()
        self._rowids = np.arange(len(column), dtype=np.int64)
        # crack boundaries: sorted positions; piece i spans [bounds[i], bounds[i+1])
        self._bounds: list[int] = [0, len(column)]
        # the value pivots applied so far, kept sorted for piece bookkeeping
        self._pivots: list[float] = []
        self.cracks_performed = 0
        self.values_scanned_total = 0

    # ------------------------------------------------------------------ #
    # cracking
    # ------------------------------------------------------------------ #
    def _piece_containing_value(self, value: float) -> tuple[int, int]:
        """Return the (start, stop) positions of the piece a pivot falls in."""
        idx = bisect.bisect_right(self._pivots, value)
        return self._bounds[idx], self._bounds[idx + 1]

    def crack(self, pivot: float) -> None:
        """Partition the cracker column around ``pivot`` (two-way crack)."""
        if pivot in self._pivots:
            return
        start, stop = self._piece_containing_value(pivot)
        segment = self._values[start:stop]
        order = np.argsort(segment < pivot, kind="stable")[::-1]  # < pivot first
        self._values[start:stop] = segment[order]
        self._rowids[start:stop] = self._rowids[start:stop][order]
        boundary = start + int((segment < pivot).sum())
        insert_at = bisect.bisect_right(self._pivots, pivot)
        self._pivots.insert(insert_at, pivot)
        self._bounds.insert(insert_at + 1, boundary)
        self.cracks_performed += 1

    def crack_range(self, low: float, high: float) -> None:
        """Crack on both bounds of ``[low, high)`` (as a range query would)."""
        if high < low:
            raise StorageError("crack_range requires low <= high")
        self.crack(low)
        self.crack(high)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def _pieces(self) -> list[CrackPiece]:
        pieces = []
        lows = [-np.inf] + self._pivots
        highs = self._pivots + [np.inf]
        for i in range(len(self._bounds) - 1):
            pieces.append(
                CrackPiece(
                    start=self._bounds[i],
                    stop=self._bounds[i + 1],
                    low=lows[i],
                    high=highs[i],
                )
            )
        return pieces

    @property
    def pieces(self) -> list[CrackPiece]:
        """The current cracked pieces, in value order."""
        return self._pieces()

    def rowids_in_range(self, low: float, high: float, crack: bool = True) -> np.ndarray:
        """Base rowids whose values lie in ``[low, high)``.

        When ``crack`` is True (the default) the lookup also refines the
        index around the requested bounds, so the next similar lookup scans
        less data — the essence of adaptive indexing.
        """
        if high < low:
            raise StorageError("range lookup requires low <= high")
        if crack:
            self.crack_range(low, high)
        result_parts = []
        scanned = 0
        for piece in self._pieces():
            if piece.high <= low or piece.low >= high:
                continue  # piece cannot overlap the requested range
            values = self._values[piece.start : piece.stop]
            rowids = self._rowids[piece.start : piece.stop]
            scanned += len(values)
            if piece.low >= low and piece.high <= high:
                result_parts.append(rowids)  # fully covered, no per-value test
            else:
                mask = (values >= low) & (values < high)
                result_parts.append(rowids[mask])
        self.values_scanned_total += scanned
        if not result_parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(result_parts))

    def scan_cost_for_range(self, low: float, high: float) -> int:
        """How many values a lookup of ``[low, high)`` would scan right now."""
        cost = 0
        for piece in self._pieces():
            if piece.high <= low or piece.low >= high:
                continue
            if piece.low >= low and piece.high <= high:
                continue  # fully covered pieces are returned wholesale
            cost += piece.num_rows
        return cost
