"""Touch-driven cracking: adaptive indexing from touched ranges.

Database cracking (which the paper cites as one of its inspirations)
refines a column's physical organization as a side effect of the queries
that run.  In dbTouch the "queries" are gestures: every slide that filters
a value range is an opportunity to partition the index around that range.
The cracker index below maintains cracked pieces over a *copy* of the
column (the base data is never reordered) and narrows the region that
must be scanned for subsequent predicates on the same column.

**Array-native piece storage.**  Pieces are not objects: the whole piece
structure is two flat numpy vectors — ``_pivots`` (sorted float64 crack
values) and ``_bounds`` (sorted int64 positions, one more than the piece
count) — binary-searched with ``np.searchsorted``.  A range lookup
resolves to at most two masked boundary scans plus one wholesale slice of
the fully-covered middle run; no per-piece Python loop survives.

**Dtype preservation.**  The cracker column keeps the base column's
native dtype — an int64 column cracks as int64.  Exactness with
``Predicate.mask`` is by construction: pivots and range bounds are
float64, and comparing a native integer array against a Python float is
*the same numpy promotion* ``Predicate.mask`` performs, so piece
membership and mask agree bit-for-bit even beyond 2**53 where the old
float64 copy had to refuse integer columns.

**Coalescing.**  Long sessions accumulate tiny pieces.  Every crack that
pushes the piece count past ``max_pieces`` triggers :meth:`coalesce`,
which repeatedly deletes the pivot between the narrowest adjacent piece
pair (pieces under ``min_piece_rows`` are the natural first victims)
until the count is back at the cap.  Merging only removes a pivot/bound
entry — no data moves — so lookups stay exact; a merged-away query pivot
is simply re-cracked by the next lookup that needs it.

**Stochastic crack mix.**  With ``stochastic=True`` each query-bound
crack is preceded by one MDD1R-style crack at a value sampled (seeded,
hence deterministic per session) from the piece the bound falls in.
Skewed gesture patterns — e.g. monotonically advancing bounds that leave
one giant tail piece — then still converge: the random pivot halves the
big piece in expectation regardless of where queries land.  Stochastic
cracks mutate only index organization, never lookup results.

NaN values need special care: ``x < pivot`` is False for NaN, so a naive
two-way crack would sweep NaNs into whatever bounded piece happens to sit
above the pivot — and a later range lookup that covers that piece
wholesale would wrongly report the NaN rows as matches.  The index
therefore segregates NaNs once, at construction: the cracker column keeps
all non-NaN values in ``[0, num_valid)`` and parks the NaN rows behind
them, outside every piece, so range lookups can never return a NaN row —
exactly the semantics of ``Predicate.mask`` on the base data.

**Validity windows.**  A live append grows the base column without
touching the cracker: the index keeps answering exactly for the prefix it
was built over (``covered_rows``) while the appended tail is scanned by
the caller (:class:`repro.indexing.manager.IndexManager` merges the two
answer sets).  :meth:`merge_tail` — scheduled off the gesture path, on
the background lane — folds the tail rows into their pieces in one pass
and advances the window, so steady-state lookups regain full piece
pruning without ever discarding cracked state.

The full cracked state (the reordered copy, the rowid permutation and the
piece structure) can be exported with :meth:`CrackerIndex.export_state`
and restored with :meth:`CrackerIndex.from_state`; the snapshot tier uses
this to make cracked organization survive restarts.  Because appends
never mutate existing rows, a snapshot taken *before* an append is still
a valid prefix of the grown column — ``from_state`` therefore accepts
state covering any prefix and revives it with a correspondingly narrowed
validity window.  Each data-permuting mutation is also recorded in a
bounded mutation log (generation, start, stop), which lets the snapshot
tier write *incremental piece-level deltas* — only the regions permuted
since the last persisted generation — instead of rewriting the full
arrays.
"""

from __future__ import annotations

import math
import uuid
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StorageError
from repro.storage.column import Column

#: Default hard cap on the piece count; cracks beyond it coalesce.
DEFAULT_MAX_PIECES = 512
#: Pieces narrower than this are preferred merge victims and too small to
#: be worth a stochastic split.
DEFAULT_MIN_PIECE_ROWS = 32
#: Mutation-log entries kept before the log collapses (a collapse forces
#: the next incremental snapshot to fall back to a full rewrite).
MUTATION_LOG_CAP = 2048


def dirty_ranges_from_log(
    mutation_log, log_floor: int, generation: int
) -> list[tuple[int, int]] | None:
    """Merged ``[start, stop)`` ranges logged after ``generation``.

    Works on a live index's log or a :class:`CrackerState`'s exported
    copy.  Returns ``None`` when the log has been collapsed past
    ``generation`` — the caller must treat everything as dirty.
    """
    if generation < log_floor:
        return None
    ranges = sorted(
        (start, stop)
        for gen, start, stop in mutation_log
        if gen > generation and stop > start
    )
    merged: list[tuple[int, int]] = []
    for start, stop in ranges:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
        else:
            merged.append((start, stop))
    return merged


@dataclass(frozen=True)
class CrackPiece:
    """A contiguous piece of the cracker column known to lie in [low, high)."""

    start: int
    stop: int
    low: float
    high: float

    @property
    def num_rows(self) -> int:
        """Rows inside this piece."""
        return self.stop - self.start


@dataclass(frozen=True)
class CrackerState:
    """The exportable state of a :class:`CrackerIndex`.

    ``values``/``rowids`` are the cracker column (a reordered *native
    dtype* copy of the base data) and its base-rowid permutation;
    ``pivots`` and ``bounds`` describe the piece structure; ``num_valid``
    is the number of non-NaN rows (the prefix the pieces partition).  The
    snapshot tier persists these fields and :meth:`CrackerIndex.from_state`
    revives them against the live base column.

    ``epoch``/``generation``/``mutation_log``/``log_floor`` describe the
    mutation history for incremental snapshots: ``epoch`` identifies one
    live cracker's delta chain, ``generation`` counts its mutations, and
    ``mutation_log`` holds ``(generation, start, stop)`` permuted ranges
    back to ``log_floor`` (older history has been collapsed away — a
    consumer needing it must rewrite in full).
    """

    values: np.ndarray
    rowids: np.ndarray
    pivots: tuple[float, ...]
    bounds: tuple[int, ...]
    num_valid: int
    cracks_performed: int = 0
    epoch: str = ""
    generation: int = 0
    log_floor: int = 0
    mutation_log: tuple[tuple[int, int, int], ...] = field(default=())


class CrackerIndex:
    """An adaptive index refined by the value ranges gestures touch.

    The cracker column is a reordered copy of the base column together with
    the original rowids, so lookups can report base rowids.  Each call to
    :meth:`crack` partitions one or more pieces around the requested value
    bounds; subsequent range lookups only scan the pieces overlapping the
    requested range.

    Parameters
    ----------
    max_pieces:
        Piece-count cap; cracks beyond it coalesce the narrowest adjacent
        pairs back under it.
    min_piece_rows:
        Row-width floor: pieces at least this wide are worth keeping (and
        worth splitting stochastically).
    stochastic:
        Enable the MDD1R-style random crack mixed in before each
        query-bound crack.
    seed:
        Seed for the stochastic pivot stream (deterministic per index).
    """

    def __init__(
        self,
        column: Column,
        *,
        max_pieces: int = DEFAULT_MAX_PIECES,
        min_piece_rows: int = DEFAULT_MIN_PIECE_ROWS,
        stochastic: bool = False,
        seed: int = 0,
    ):
        if not column.is_numeric:
            raise StorageError("cracking requires a numeric column")
        if max_pieces < 2:
            raise StorageError("max_pieces must be at least 2")
        self.column = column
        self._values = np.array(column.values, copy=True)
        self._rowids = np.arange(len(column), dtype=np.int64)
        # NaNs are segregated behind the valid prefix once, so no crack or
        # wholesale piece-append can ever surface them (see module docstring)
        self._num_nan = 0
        if np.issubdtype(self._values.dtype, np.floating):
            nan_mask = np.isnan(self._values)
            self._num_nan = int(nan_mask.sum())
            if self._num_nan:
                order = np.argsort(nan_mask, kind="stable")  # non-NaN first
                self._values = self._values[order]
                self._rowids = self._rowids[order]
        self._num_valid = len(column) - self._num_nan
        # flat piece structure: piece i spans positions
        # [_bounds[i], _bounds[i+1]) and values [pivot[i-1], pivot[i])
        self._bounds = np.array([0, self._num_valid], dtype=np.int64)
        self._pivots = np.empty(0, dtype=np.float64)
        self.max_pieces = int(max_pieces)
        self.min_piece_rows = int(min_piece_rows)
        self.stochastic = bool(stochastic)
        self._rng = np.random.default_rng(seed)
        self.cracks_performed = 0
        self.stochastic_cracks = 0
        self.coalesces_performed = 0
        self.pieces_merged = 0
        self.values_scanned_total = 0
        self.tail_merges = 0
        self.rows_merged_total = 0
        # incremental-snapshot bookkeeping (see CrackerState)
        self.epoch = uuid.uuid4().hex[:16]
        self.generation = 0
        self._log_floor = 0
        self._mutation_log: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------ #
    # state export / restore (snapshot warm starts)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_state(cls, column: Column, state: CrackerState) -> "CrackerIndex":
        """Revive a cracker from exported state, bound to ``column``.

        The arrays are copied (a snapshot hands in read-only memmaps) and
        the structural invariants are validated: a row count covering a
        *prefix* of the column, a rowid permutation of that prefix, sorted
        pivots and sorted bounds spanning exactly the valid prefix — plus
        a sampled value-consistency probe proving the state was built from
        this column's data (not a same-shaped predecessor of a reload).
        State shorter than the column is legal because appends never
        mutate existing rows: the revived index simply covers the
        snapshotted prefix (``covered_rows``) and the appended tail is
        scanned until :meth:`merge_tail` folds it in.  State whose values
        were stored in a different dtype (e.g. the float64 arrays of
        pre-dtype-preserving snapshots) is cast to the column's native
        dtype and rejected if the cast is lossy.  A state that does not
        fit the live column raises :class:`repro.errors.StorageError` —
        the caller (e.g. a snapshot warm start against reloaded data)
        should fall back to a fresh index.
        """
        if not column.is_numeric:
            raise StorageError("cracking requires a numeric column")
        source = np.asarray(state.values)
        target_dtype = column.values.dtype
        if source.dtype == target_dtype:
            values = source.astype(target_dtype, copy=True)
        else:
            # legacy snapshots stored every cracker as float64; accept them
            # only when the cast back to the native dtype is lossless
            values = source.astype(target_dtype, copy=True)
            floaty = np.issubdtype(source.dtype, np.floating)
            roundtrip = values.astype(source.dtype, copy=False)
            if not np.array_equal(roundtrip, source, equal_nan=floaty):
                raise StorageError(
                    f"cracker state dtype {source.dtype} does not losslessly "
                    f"represent column {column.name!r} ({target_dtype})"
                )
        rowids = np.array(state.rowids, dtype=np.int64, copy=True)
        pivots = np.asarray([float(p) for p in state.pivots], dtype=np.float64)
        bounds = np.asarray([int(b) for b in state.bounds], dtype=np.int64)
        num_valid = int(state.num_valid)
        n = len(column)
        m = int(values.shape[0]) if values.ndim == 1 else -1
        if values.ndim != 1 or rowids.shape != values.shape or m > n:
            raise StorageError(
                f"cracker state of {values.shape[0] if values.ndim else 0} rows "
                f"does not fit column {column.name!r} of length {n}"
            )
        if not 0 <= num_valid <= m:
            raise StorageError(f"cracker state num_valid {num_valid} out of range")
        if not np.issubdtype(values.dtype, np.floating) and num_valid != m:
            raise StorageError(
                "cracker state parks NaN rows but the column dtype has no NaN"
            )
        if bounds.size != pivots.size + 2 or bounds[0] != 0 or bounds[-1] != num_valid:
            raise StorageError("cracker state bounds do not span the valid prefix")
        if np.any(bounds[:-1] > bounds[1:]):
            raise StorageError("cracker state bounds are not sorted")
        if np.any(pivots[:-1] >= pivots[1:]):
            raise StorageError("cracker state pivots are not strictly increasing")
        if pivots.size and not np.isfinite(pivots).all():
            raise StorageError("cracker state pivots must be finite")
        if rowids.size and not np.array_equal(
            np.sort(rowids), np.arange(m, dtype=np.int64)
        ):
            raise StorageError("cracker state rowids are not a permutation")
        # sampled data-consistency check: the state must actually derive
        # from ``column``.  A snapshot taken against since-reloaded data
        # passes every structural check above (still a prefix, still a
        # permutation) but would silently serve rowids for values the
        # column no longer holds; probing evenly spaced positions catches
        # any substantive data swap at the cost of a few reads.
        if m:
            probes = np.unique(np.linspace(0, m - 1, num=min(m, 64), dtype=np.int64))
            for pos in probes.tolist():
                expected = values[pos]
                actual = column.value_at(int(rowids[pos]))
                both_nan = expected != expected and actual != actual
                if not (both_nan or bool(expected == actual)):
                    raise StorageError(
                        f"cracker state does not match column {column.name!r}: "
                        f"position {pos} holds {expected!r} but the column's "
                        f"row {int(rowids[pos])} is {actual!r}"
                    )
        index = cls.__new__(cls)
        index.column = column
        index._values = values
        index._rowids = rowids
        index._num_nan = m - num_valid
        index._num_valid = num_valid
        index._bounds = bounds
        index._pivots = pivots
        index.max_pieces = max(DEFAULT_MAX_PIECES, pivots.size + 1)
        index.min_piece_rows = DEFAULT_MIN_PIECE_ROWS
        index.stochastic = False
        index._rng = np.random.default_rng(0)
        index.cracks_performed = int(state.cracks_performed)
        index.stochastic_cracks = 0
        index.coalesces_performed = 0
        index.pieces_merged = 0
        index.values_scanned_total = 0
        index.tail_merges = 0
        index.rows_merged_total = 0
        # an adopted cracker starts a fresh delta chain: diffs against any
        # previously persisted epoch are unknowable from here
        index.epoch = uuid.uuid4().hex[:16]
        index.generation = int(state.generation) or int(state.cracks_performed)
        index._log_floor = index.generation
        index._mutation_log = []
        return index

    def export_state(self) -> CrackerState:
        """Export a deep copy of the cracked state (see :class:`CrackerState`)."""
        return CrackerState(
            values=self._values.copy(),
            rowids=self._rowids.copy(),
            pivots=tuple(float(p) for p in self._pivots),
            bounds=tuple(int(b) for b in self._bounds),
            num_valid=self._num_valid,
            cracks_performed=self.cracks_performed,
            epoch=self.epoch,
            generation=self.generation,
            log_floor=self._log_floor,
            mutation_log=tuple(self._mutation_log),
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_valid(self) -> int:
        """Rows the piece structure covers (everything but the NaN rows)."""
        return self._num_valid

    @property
    def covered_rows(self) -> int:
        """Base rows inside the validity window ``[0, covered_rows)``.

        Rows at or beyond this offset were appended after the cracker was
        built (or after its snapshot was taken) and are not yet folded
        into any piece; lookups answer exactly for the window and the
        caller scans the tail until :meth:`merge_tail` advances it.
        """
        return self._num_valid + self._num_nan

    @property
    def tail_rows(self) -> int:
        """Appended base rows not yet folded into the piece structure."""
        return len(self.column) - self.covered_rows

    @property
    def num_nan(self) -> int:
        """NaN rows parked behind the valid prefix, outside every piece."""
        return self._num_nan

    @property
    def num_pieces(self) -> int:
        """How many pieces the valid prefix is currently cracked into."""
        return int(self._bounds.size - 1)

    @property
    def size_bytes(self) -> int:
        """Bytes held by the cracker column, rowids and piece vectors."""
        return int(
            self._values.nbytes
            + self._rowids.nbytes
            + self._pivots.nbytes
            + self._bounds.nbytes
        )

    @property
    def pieces(self) -> list[CrackPiece]:
        """The current cracked pieces, in value order."""
        lows = np.concatenate([[-np.inf], self._pivots])
        highs = np.concatenate([self._pivots, [np.inf]])
        return [
            CrackPiece(
                start=int(self._bounds[i]),
                stop=int(self._bounds[i + 1]),
                low=float(lows[i]),
                high=float(highs[i]),
            )
            for i in range(self.num_pieces)
        ]

    # ------------------------------------------------------------------ #
    # cracking
    # ------------------------------------------------------------------ #
    def _log_mutation(self, start: int, stop: int) -> None:
        """Record one permuted range for incremental snapshots."""
        self._mutation_log.append((self.generation, start, stop))
        if len(self._mutation_log) > MUTATION_LOG_CAP:
            # collapse: consumers older than the current generation must
            # fall back to a full rewrite
            self._mutation_log.clear()
            self._log_floor = self.generation

    def dirty_ranges_since(self, generation: int) -> list[tuple[int, int]] | None:
        """Merged ``[start, stop)`` ranges permuted after ``generation``.

        Returns ``None`` when the log no longer reaches back that far (the
        caller must treat everything as dirty).  Coalesces bump the
        generation without logging a range — they move no data.
        """
        return dirty_ranges_from_log(self._mutation_log, self._log_floor, generation)

    def _piece_containing_value(self, value: float) -> tuple[int, int]:
        """Return the (start, stop) positions of the piece a pivot falls in."""
        idx = int(np.searchsorted(self._pivots, value, side="right"))
        return int(self._bounds[idx]), int(self._bounds[idx + 1])

    def crack(self, pivot: float) -> None:
        """Partition the cracker column around ``pivot`` (two-way crack)."""
        pivot = float(pivot)
        if not math.isfinite(pivot):
            raise StorageError(
                f"crack pivots must be finite (got {pivot!r}); "
                "infinite bounds need no crack"
            )
        idx = int(np.searchsorted(self._pivots, pivot, side="right"))
        if idx and self._pivots[idx - 1] == pivot:
            return  # duplicate pivot: the boundary already exists
        start, stop = int(self._bounds[idx]), int(self._bounds[idx + 1])
        segment = self._values[start:stop]
        # native-dtype comparison against a float pivot: the same numpy
        # promotion Predicate.mask performs, so membership agrees exactly
        mask = segment < pivot
        n_left = int(mask.sum())
        self.generation += 1
        if 0 < n_left < segment.size:
            inv = ~mask
            self._values[start:stop] = np.concatenate([segment[mask], segment[inv]])
            row_segment = self._rowids[start:stop]
            self._rowids[start:stop] = np.concatenate(
                [row_segment[mask], row_segment[inv]]
            )
            self._log_mutation(start, stop)
        self._pivots = np.insert(self._pivots, idx, pivot)
        self._bounds = np.insert(self._bounds, idx + 1, start + n_left)
        self.cracks_performed += 1
        if self.num_pieces > self.max_pieces:
            self.coalesce()

    def coalesce(self, max_pieces: int | None = None) -> int:
        """Merge pieces until at most ``max_pieces`` remain; returns merges.

        The pivot between the narrowest adjacent piece pair is deleted
        first, so pieces under ``min_piece_rows`` — too small to bound a
        scan meaningfully — are the natural victims.  Merging never moves
        data: the surviving piece's bounds simply widen, and lookups that
        relied on a removed pivot re-crack it on demand.
        """
        target = self.max_pieces if max_pieces is None else max(1, int(max_pieces))
        merged = 0
        while self.num_pieces > target and self._pivots.size:
            widths = np.diff(self._bounds)
            pair_widths = widths[:-1] + widths[1:]
            victim = int(np.argmin(pair_widths))
            self._pivots = np.delete(self._pivots, victim)
            self._bounds = np.delete(self._bounds, victim + 1)
            merged += 1
        if merged:
            self.pieces_merged += merged
            self.coalesces_performed += 1
            self.generation += 1
        return merged

    # ------------------------------------------------------------------ #
    # validity-window maintenance (live appends)
    # ------------------------------------------------------------------ #
    def merge_tail(self) -> int:
        """Fold appended base rows into the pieces; returns rows merged.

        One pass over the tail: each appended row is routed to the piece
        whose value envelope contains it (piece membership uses the same
        ``< pivot`` comparison :meth:`crack` splits with, so exactness
        against ``Predicate.mask`` is preserved even for int64 beyond
        2**53), appended NaN rows are parked behind the valid prefix with
        the rest, and the validity window advances to the column's new
        length.  No existing piece boundary moves — the structure keeps
        every crack it has earned.  Intended to run on the background
        lane, off the gesture path; a no-op when the window is current.
        """
        n = len(self.column)
        covered = self.covered_rows
        if n <= covered:
            return 0
        tail = np.asarray(self.column.values[covered:])
        tail_rowids = np.arange(covered, n, dtype=np.int64)
        if np.issubdtype(tail.dtype, np.floating):
            nan_mask = np.isnan(tail)
        else:
            nan_mask = np.zeros(tail.shape, dtype=bool)
        valid = tail[~nan_mask]
        valid_rowids = tail_rowids[~nan_mask]
        # route each row to its piece: membership is #{pivot <= value},
        # evaluated pivot-by-pivot with the exact promotion crack() uses
        piece_idx = np.zeros(valid.shape[0], dtype=np.int64)
        for pivot in self._pivots.tolist():
            piece_idx += valid >= pivot
        order = np.argsort(piece_idx, kind="stable")
        valid = valid[order]
        valid_rowids = valid_rowids[order]
        counts = np.bincount(piece_idx, minlength=self.num_pieces)
        shifts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        old_bounds = self._bounds
        new_bounds = old_bounds + shifts
        new_values = np.empty(n, dtype=self._values.dtype)
        new_rowids = np.empty(n, dtype=np.int64)
        for i in range(self.num_pieces):
            old_start, old_stop = int(old_bounds[i]), int(old_bounds[i + 1])
            new_start = int(new_bounds[i])
            width = old_stop - old_start
            new_values[new_start : new_start + width] = self._values[old_start:old_stop]
            new_rowids[new_start : new_start + width] = self._rowids[old_start:old_stop]
            t_start, t_stop = int(shifts[i]), int(shifts[i + 1])
            new_values[new_start + width : int(new_bounds[i + 1])] = valid[t_start:t_stop]
            new_rowids[new_start + width : int(new_bounds[i + 1])] = valid_rowids[
                t_start:t_stop
            ]
        new_num_valid = self._num_valid + int(valid.shape[0])
        new_values[new_num_valid : new_num_valid + self._num_nan] = self._values[
            self._num_valid : self._num_valid + self._num_nan
        ]
        new_rowids[new_num_valid : new_num_valid + self._num_nan] = self._rowids[
            self._num_valid : self._num_valid + self._num_nan
        ]
        new_values[new_num_valid + self._num_nan :] = tail[nan_mask]
        new_rowids[new_num_valid + self._num_nan :] = tail_rowids[nan_mask]
        self._values = new_values
        self._rowids = new_rowids
        self._bounds = new_bounds
        self._num_valid = new_num_valid
        self._num_nan = n - new_num_valid
        self.generation += 1
        # growing the arrays invalidates deltas against any shorter base:
        # collapse the log so the next snapshot falls back to a full write
        self._mutation_log.clear()
        self._log_floor = self.generation
        merged = int(tail.shape[0])
        self.tail_merges += 1
        self.rows_merged_total += merged
        return merged

    def _stochastic_crack(self, near: float) -> None:
        """One MDD1R-style crack at a sampled value from ``near``'s piece."""
        start, stop = self._piece_containing_value(near)
        if stop - start < max(2, 2 * self.min_piece_rows):
            return  # piece already small enough; a random split buys nothing
        position = int(self._rng.integers(start, stop))
        pivot = float(self._values[position])
        if not math.isfinite(pivot):
            return
        before = self.cracks_performed
        self.crack(pivot)
        self.stochastic_cracks += self.cracks_performed - before

    def crack_range(self, low: float, high: float) -> None:
        """Crack on both bounds of ``[low, high)`` (as a range query would).

        Infinite bounds are skipped rather than cracked: a piece boundary
        at ±inf can never shrink a scan.  With ``stochastic`` enabled each
        bound's piece is first split at a sampled value (seeded), so
        convergence does not depend on where the query bounds land.
        """
        if high < low:
            raise StorageError("crack_range requires low <= high")
        for bound in (low, high):
            if math.isfinite(bound):
                if self.stochastic:
                    self._stochastic_crack(bound)
                self.crack(bound)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def _overlap_run(self, low: float, high: float) -> tuple[int, int]:
        """Indices ``(first, last)`` of the pieces overlapping ``[low, high)``.

        ``first > last`` means no piece overlaps.  Pieces strictly between
        the two are always fully covered by the range.
        """
        first = int(np.searchsorted(self._pivots, low, side="right"))
        last = int(np.searchsorted(self._pivots, high, side="left"))
        return first, last

    def _piece_covered(self, i: int, low: float, high: float) -> bool:
        piece_low = -math.inf if i == 0 else float(self._pivots[i - 1])
        piece_high = (
            float(self._pivots[i]) if i < self._pivots.size else math.inf
        )
        return piece_low >= low and piece_high <= high

    def _masked_piece(self, i: int, low: float, high: float) -> np.ndarray:
        start, stop = int(self._bounds[i]), int(self._bounds[i + 1])
        values = self._values[start:stop]
        mask = (values >= low) & (values < high)
        return self._rowids[start:stop][mask]

    def rowids_in_range(self, low: float, high: float, crack: bool = True) -> np.ndarray:
        """Base rowids whose values lie in ``[low, high)``.

        When ``crack`` is True (the default) the lookup also refines the
        index around the requested bounds, so the next similar lookup scans
        less data — the essence of adaptive indexing.  An empty range
        (``low == high``) returns no rowids; NaN rows are never returned.
        """
        if math.isnan(low) or math.isnan(high):
            return np.empty(0, dtype=np.int64)
        if high < low:
            raise StorageError("range lookup requires low <= high")
        if crack:
            self.crack_range(low, high)
        first, last = self._overlap_run(low, high)
        if first > last:
            return np.empty(0, dtype=np.int64)
        self.values_scanned_total += int(self._bounds[last + 1] - self._bounds[first])
        first_covered = self._piece_covered(first, low, high)
        last_covered = (
            first_covered if last == first else self._piece_covered(last, low, high)
        )
        # the fully-covered middle run is appended wholesale — one slice,
        # no per-value test; at most the two boundary pieces are masked
        run_start = first if first_covered else first + 1
        run_stop = last if last_covered else last - 1
        parts: list[np.ndarray] = []
        if run_start <= run_stop:
            parts.append(
                self._rowids[self._bounds[run_start] : self._bounds[run_stop + 1]]
            )
        if not first_covered:
            parts.append(self._masked_piece(first, low, high))
        if last != first and not last_covered:
            parts.append(self._masked_piece(last, low, high))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def scan_cost_for_range(self, low: float, high: float) -> int:
        """How many values a lookup of ``[low, high)`` would scan right now.

        Fully covered pieces are returned wholesale, so only the (at most
        two) boundary pieces whose envelopes straddle a bound count.
        """
        first, last = self._overlap_run(low, high)
        if first > last:
            return 0
        cost = 0
        if not self._piece_covered(first, low, high):
            cost += int(self._bounds[first + 1] - self._bounds[first])
        if last != first and not self._piece_covered(last, low, high):
            cost += int(self._bounds[last + 1] - self._bounds[last])
        return cost
