"""Touch-driven cracking: adaptive indexing from touched ranges.

Database cracking (which the paper cites as one of its inspirations)
refines a column's physical organization as a side effect of the queries
that run.  In dbTouch the "queries" are gestures: every slide that filters
a value range is an opportunity to partition the index around that range.
The cracker index below maintains a sorted set of cracked pieces over a
*copy* of the column (the base data is never reordered) and narrows the
region that must be scanned for subsequent predicates on the same column.

NaN values need special care: ``x < pivot`` is False for NaN, so a naive
two-way crack would sweep NaNs into whatever bounded piece happens to sit
above the pivot — and a later range lookup that covers that piece
wholesale would wrongly report the NaN rows as matches.  The index
therefore segregates NaNs once, at construction: the cracker column keeps
all non-NaN values in ``[0, num_valid)`` and parks the NaN rows behind
them, outside every piece, so range lookups can never return a NaN row —
exactly the semantics of ``Predicate.mask`` on the base data.

The full cracked state (the reordered copy, the rowid permutation and the
piece structure) can be exported with :meth:`CrackerIndex.export_state`
and restored with :meth:`CrackerIndex.from_state`; the snapshot tier uses
this to make cracked organization survive restarts.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.storage.column import Column


@dataclass(frozen=True)
class CrackPiece:
    """A contiguous piece of the cracker column known to lie in [low, high)."""

    start: int
    stop: int
    low: float
    high: float

    @property
    def num_rows(self) -> int:
        """Rows inside this piece."""
        return self.stop - self.start


@dataclass(frozen=True)
class CrackerState:
    """The exportable state of a :class:`CrackerIndex`.

    ``values``/``rowids`` are the cracker column (a reordered float64 copy
    of the base data) and its base-rowid permutation; ``pivots`` and
    ``bounds`` describe the piece structure; ``num_valid`` is the number
    of non-NaN rows (the prefix the pieces partition).  The snapshot tier
    persists these fields and :meth:`CrackerIndex.from_state` revives them
    against the live base column.
    """

    values: np.ndarray
    rowids: np.ndarray
    pivots: tuple[float, ...]
    bounds: tuple[int, ...]
    num_valid: int
    cracks_performed: int = 0


class CrackerIndex:
    """An adaptive index refined by the value ranges gestures touch.

    The cracker column is a reordered copy of the base column together with
    the original rowids, so lookups can report base rowids.  Each call to
    :meth:`crack` partitions one or more pieces around the requested value
    bounds; subsequent range lookups only scan the pieces overlapping the
    requested range.
    """

    def __init__(self, column: Column):
        if not column.is_numeric:
            raise StorageError("cracking requires a numeric column")
        self.column = column
        self._values = column.values.astype(np.float64).copy()
        self._rowids = np.arange(len(column), dtype=np.int64)
        # NaNs are segregated behind the valid prefix once, so no crack or
        # wholesale piece-append can ever surface them (see module docstring)
        nan_mask = np.isnan(self._values)
        self._num_nan = int(nan_mask.sum())
        if self._num_nan:
            order = np.argsort(nan_mask, kind="stable")  # non-NaN first, stable
            self._values = self._values[order]
            self._rowids = self._rowids[order]
        self._num_valid = len(column) - self._num_nan
        # crack boundaries: sorted positions; piece i spans [bounds[i], bounds[i+1])
        self._bounds: list[int] = [0, self._num_valid]
        # the value pivots applied so far, kept sorted for piece bookkeeping
        self._pivots: list[float] = []
        self.cracks_performed = 0
        self.values_scanned_total = 0

    # ------------------------------------------------------------------ #
    # state export / restore (snapshot warm starts)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_state(cls, column: Column, state: CrackerState) -> "CrackerIndex":
        """Revive a cracker from exported state, bound to ``column``.

        The arrays are copied (a snapshot hands in read-only memmaps) and
        the structural invariants are validated: matching row counts, a
        rowid permutation of the right length, sorted pivots and sorted
        bounds spanning exactly the valid prefix — plus a sampled
        value-consistency probe proving the state was built from this
        column's data (not a same-shaped predecessor of a reload).  A
        state that does not fit the live column raises
        :class:`repro.errors.StorageError` — the caller (e.g. a snapshot
        warm start against reloaded data) should fall back to a fresh
        index.
        """
        if not column.is_numeric:
            raise StorageError("cracking requires a numeric column")
        values = np.array(state.values, dtype=np.float64, copy=True)
        rowids = np.array(state.rowids, dtype=np.int64, copy=True)
        pivots = [float(p) for p in state.pivots]
        bounds = [int(b) for b in state.bounds]
        num_valid = int(state.num_valid)
        n = len(column)
        if values.shape != (n,) or rowids.shape != (n,):
            raise StorageError(
                f"cracker state of {values.shape[0] if values.ndim else 0} rows "
                f"does not fit column {column.name!r} of length {n}"
            )
        if not 0 <= num_valid <= n:
            raise StorageError(f"cracker state num_valid {num_valid} out of range")
        if len(bounds) != len(pivots) + 2 or bounds[0] != 0 or bounds[-1] != num_valid:
            raise StorageError("cracker state bounds do not span the valid prefix")
        if any(b > c for b, c in zip(bounds, bounds[1:])):
            raise StorageError("cracker state bounds are not sorted")
        if any(p >= q for p, q in zip(pivots, pivots[1:])):
            raise StorageError("cracker state pivots are not strictly increasing")
        if not all(map(math.isfinite, pivots)):
            raise StorageError("cracker state pivots must be finite")
        if rowids.size and not np.array_equal(
            np.sort(rowids), np.arange(n, dtype=np.int64)
        ):
            raise StorageError("cracker state rowids are not a permutation")
        # sampled data-consistency check: the state must actually derive
        # from ``column``.  A snapshot taken against since-reloaded data
        # passes every structural check above (same length, still a
        # permutation) but would silently serve rowids for values the
        # column no longer holds; probing evenly spaced positions catches
        # any substantive data swap at the cost of a few reads.
        if n:
            probes = np.unique(np.linspace(0, n - 1, num=min(n, 64), dtype=np.int64))
            for pos in probes.tolist():
                expected = values[pos]
                actual = float(np.float64(column.value_at(int(rowids[pos]))))
                same = math.isnan(expected) if math.isnan(actual) else actual == expected
                if not same:
                    raise StorageError(
                        f"cracker state does not match column {column.name!r}: "
                        f"position {pos} holds {expected!r} but the column's "
                        f"row {int(rowids[pos])} is {actual!r}"
                    )
        index = cls.__new__(cls)
        index.column = column
        index._values = values
        index._rowids = rowids
        index._num_nan = n - num_valid
        index._num_valid = num_valid
        index._bounds = bounds
        index._pivots = pivots
        index.cracks_performed = int(state.cracks_performed)
        index.values_scanned_total = 0
        return index

    def export_state(self) -> CrackerState:
        """Export a deep copy of the cracked state (see :class:`CrackerState`)."""
        return CrackerState(
            values=self._values.copy(),
            rowids=self._rowids.copy(),
            pivots=tuple(self._pivots),
            bounds=tuple(self._bounds),
            num_valid=self._num_valid,
            cracks_performed=self.cracks_performed,
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_valid(self) -> int:
        """Rows the piece structure covers (everything but the NaN rows)."""
        return self._num_valid

    @property
    def num_nan(self) -> int:
        """NaN rows parked behind the valid prefix, outside every piece."""
        return self._num_nan

    @property
    def size_bytes(self) -> int:
        """Bytes held by the cracker column and its rowid permutation."""
        return int(self._values.nbytes + self._rowids.nbytes)

    # ------------------------------------------------------------------ #
    # cracking
    # ------------------------------------------------------------------ #
    def _piece_containing_value(self, value: float) -> tuple[int, int]:
        """Return the (start, stop) positions of the piece a pivot falls in."""
        idx = bisect.bisect_right(self._pivots, value)
        return self._bounds[idx], self._bounds[idx + 1]

    def crack(self, pivot: float) -> None:
        """Partition the cracker column around ``pivot`` (two-way crack)."""
        pivot = float(pivot)
        if not math.isfinite(pivot):
            raise StorageError(
                f"crack pivots must be finite (got {pivot!r}); "
                "infinite bounds need no crack"
            )
        if pivot in self._pivots:
            return
        start, stop = self._piece_containing_value(pivot)
        segment = self._values[start:stop]
        order = np.argsort(segment < pivot, kind="stable")[::-1]  # < pivot first
        self._values[start:stop] = segment[order]
        self._rowids[start:stop] = self._rowids[start:stop][order]
        boundary = start + int((segment < pivot).sum())
        insert_at = bisect.bisect_right(self._pivots, pivot)
        self._pivots.insert(insert_at, pivot)
        self._bounds.insert(insert_at + 1, boundary)
        self.cracks_performed += 1

    def crack_range(self, low: float, high: float) -> None:
        """Crack on both bounds of ``[low, high)`` (as a range query would).

        Infinite bounds are skipped rather than cracked: a piece boundary
        at ±inf can never shrink a scan.
        """
        if high < low:
            raise StorageError("crack_range requires low <= high")
        if math.isfinite(low):
            self.crack(low)
        if math.isfinite(high):
            self.crack(high)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def _pieces(self) -> list[CrackPiece]:
        pieces = []
        lows = [-np.inf] + self._pivots
        highs = self._pivots + [np.inf]
        for i in range(len(self._bounds) - 1):
            pieces.append(
                CrackPiece(
                    start=self._bounds[i],
                    stop=self._bounds[i + 1],
                    low=lows[i],
                    high=highs[i],
                )
            )
        return pieces

    @property
    def pieces(self) -> list[CrackPiece]:
        """The current cracked pieces, in value order."""
        return self._pieces()

    def rowids_in_range(self, low: float, high: float, crack: bool = True) -> np.ndarray:
        """Base rowids whose values lie in ``[low, high)``.

        When ``crack`` is True (the default) the lookup also refines the
        index around the requested bounds, so the next similar lookup scans
        less data — the essence of adaptive indexing.  An empty range
        (``low == high``) returns no rowids; NaN rows are never returned.
        """
        if math.isnan(low) or math.isnan(high):
            return np.empty(0, dtype=np.int64)
        if high < low:
            raise StorageError("range lookup requires low <= high")
        if crack:
            self.crack_range(low, high)
        result_parts = []
        scanned = 0
        for piece in self._pieces():
            if piece.high <= low or piece.low >= high:
                continue  # piece cannot overlap the requested range
            values = self._values[piece.start : piece.stop]
            rowids = self._rowids[piece.start : piece.stop]
            scanned += len(values)
            if piece.low >= low and piece.high <= high:
                result_parts.append(rowids)  # fully covered, no per-value test
            else:
                mask = (values >= low) & (values < high)
                result_parts.append(rowids[mask])
        self.values_scanned_total += scanned
        if not result_parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(result_parts))

    def scan_cost_for_range(self, low: float, high: float) -> int:
        """How many values a lookup of ``[low, high)`` would scan right now."""
        cost = 0
        for piece in self._pieces():
            if piece.high <= low or piece.low >= high:
                continue
            if piece.low >= low and piece.high <= high:
                continue  # fully covered pieces are returned wholesale
            cost += piece.num_rows
        return cost
