"""Zone maps: per-block min/max metadata over a column.

Zone maps are the lightest useful index for exploration: they answer
"could this block contain values matching the predicate?" without touching
the data.  dbTouch uses them to colour data objects (hot/cold regions) and
to let scripted explorers skip regions that cannot contain what they are
looking for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.errors import StorageError
from repro.engine.filter import Predicate
from repro.storage.column import Column


@dataclass(frozen=True)
class Zone:
    """Summary of one block of consecutive rowids.

    The envelope keeps the block's native scalar type: integer columns
    carry exact ``int`` bounds, float columns carry ``float``.  Coercing
    int64 bounds through float64 would round values beyond 2**53 to the
    nearest representable double — and a max rounded *down* (or a min
    rounded *up*) makes :meth:`may_contain` prune a block that actually
    holds matches, turning an optimization into wrong answers.  Python
    compares int to float exactly, so mixed-type predicates stay correct.
    """

    start: int
    stop: int
    minimum: float | int
    maximum: float | int

    @property
    def num_rows(self) -> int:
        """Number of rows covered by this zone."""
        return self.stop - self.start

    def may_contain(self, predicate: Predicate) -> bool:
        """Whether the zone could contain a value satisfying ``predicate``.

        Conservative: returns True whenever the predicate range overlaps the
        zone's [min, max] envelope.  A zone whose envelope is NaN (it holds
        at least one NaN value, which poisons ``block.min()``/``max()``)
        has an *unknown* envelope: every comparison against NaN is False,
        so the inclusion tests below would wrongly prune it — such a zone
        is always reported as a candidate instead.
        """
        # evaluate the predicate on the envelope's corners plus overlap logic
        from repro.engine.filter import Comparison  # local import to avoid cycle at module load

        if math.isnan(self.minimum) or math.isnan(self.maximum):
            return True  # unknown envelope: never prune
        comparison = predicate.comparison
        if comparison is Comparison.EQ:
            return self.minimum <= predicate.operand <= self.maximum
        if comparison is Comparison.NE:
            return not (self.minimum == self.maximum == predicate.operand)
        if comparison is Comparison.LT:
            return self.minimum < predicate.operand
        if comparison is Comparison.LE:
            return self.minimum <= predicate.operand
        if comparison is Comparison.GT:
            return self.maximum > predicate.operand
        if comparison is Comparison.GE:
            return self.maximum >= predicate.operand
        # BETWEEN
        return not (self.maximum < predicate.operand or self.minimum > predicate.upper)


class ZoneMap:
    """Min/max summaries for fixed-size blocks of a column."""

    def __init__(self, column: Column, block_rows: int = 4096):
        if block_rows <= 0:
            raise StorageError("block_rows must be positive")
        if not column.is_numeric:
            raise StorageError("zone maps require a numeric column")
        self.column = column
        self.block_rows = block_rows
        self._zones: list[Zone] = []
        self._build()

    def _build(self) -> None:
        values = self.column.values
        n = len(values)
        for start in range(0, n, self.block_rows):
            stop = min(n, start + self.block_rows)
            block = values[start:stop]
            # .item() preserves the native scalar: exact int for integer
            # dtypes (no 2**53 float64 rounding), float for float dtypes
            self._zones.append(
                Zone(
                    start=start,
                    stop=stop,
                    minimum=block.min().item(),
                    maximum=block.max().item(),
                )
            )

    def extend(self) -> int:
        """Extend the map over rows appended since the last build/extend.

        Incremental: only the last zone — which may have been a partial
        block that the appended rows topped up — is recomputed; every
        earlier zone is left untouched, and new full/tail blocks are
        summarized fresh.  Returns how many zones were (re)built.
        """
        values = self.column.values
        n = len(values)
        covered = self._zones[-1].stop if self._zones else 0
        if n <= covered:
            return 0
        rebuilt = 0
        if self._zones and self._zones[-1].num_rows < self.block_rows:
            # the appended rows grow the trailing partial block in place
            self._zones.pop()
            covered = self._zones[-1].stop if self._zones else 0
        for start in range(covered, n, self.block_rows):
            stop = min(n, start + self.block_rows)
            block = values[start:stop]
            self._zones.append(
                Zone(
                    start=start,
                    stop=stop,
                    minimum=block.min().item(),
                    maximum=block.max().item(),
                )
            )
            rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def covered_rows(self) -> int:
        """Rows the zones currently summarize (appends grow past this)."""
        return self._zones[-1].stop if self._zones else 0

    @property
    def zones(self) -> list[Zone]:
        """All zones, in rowid order."""
        return list(self._zones)

    @property
    def num_zones(self) -> int:
        """Number of blocks summarized."""
        return len(self._zones)

    def zone_for(self, rowid: int) -> Zone:
        """The zone covering ``rowid``."""
        if not 0 <= rowid < len(self.column):
            raise StorageError(f"rowid {rowid} out of range")
        return self._zones[rowid // self.block_rows]

    # ------------------------------------------------------------------ #
    # pruning
    # ------------------------------------------------------------------ #
    def candidate_zones(self, predicate: Predicate) -> list[Zone]:
        """Zones that may contain matches for ``predicate``."""
        return [z for z in self._zones if z.may_contain(predicate)]

    def candidate_rowid_ranges(self, predicate: Predicate) -> list[tuple[int, int]]:
        """Rowid ranges (half-open) that may contain matches."""
        return [(z.start, z.stop) for z in self.candidate_zones(predicate)]

    def pruned_fraction(self, predicate: Predicate) -> float:
        """Fraction of rows that can be skipped outright for ``predicate``."""
        total = len(self.column)
        if not total:
            return 0.0
        kept = sum(z.num_rows for z in self.candidate_zones(predicate))
        return 1.0 - kept / total

    def count_matches(self, predicate: Predicate) -> int:
        """Exact match count, scanning only non-pruned zones."""
        count = 0
        values = self.column.values
        for start, stop in self.candidate_rowid_ranges(predicate):
            count += int(predicate.mask(values[start:stop]).sum())
        return count
