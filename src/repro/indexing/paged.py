"""Disk-resident cracking for paged (out-of-core) columns.

A :class:`PagedCrackerIndex` gives an mmap-backed
:class:`repro.persist.paged_column.PagedColumn` the same adaptive
indexing an in-memory column gets from
:class:`repro.indexing.cracking.CrackerIndex` — without ever holding the
whole column's cracked copy in RAM.  The column's persisted zonemap
partitions it into chunks; each chunk that a predicate actually touches
gets its *own* small cracker over a private copy of that chunk's values,
and only a bounded number of those chunk crackers stay resident:

* **Zonemap pruning first.**  ``chunks_for_predicate`` (conservative
  under NaN) names the candidate chunks; everything else is never read,
  let alone cracked.
* **Per-chunk crackers.**  Each candidate chunk is cracked independently
  with local rowids; global rowids are ``local + chunk_start``.  Because
  chunks are processed in ascending order and each per-chunk result is
  sorted, the concatenated answer is globally sorted with no extra sort.
* **LRU residency with spill-through.**  At most ``max_resident_chunks``
  chunk crackers stay in memory.  When one is evicted and a
  ``spill_store`` (a :class:`repro.persist.diskstore.DiskColumnStore`)
  was provided, its reordered values/rowids are written through the
  store as ordinary stored columns and only the tiny piece structure
  (pivots/bounds) is kept; the next lookup that needs the chunk revives
  the cracker from disk instead of re-cracking from scratch.  Without a
  store the cracked organization is simply dropped and rebuilt on
  demand — still correct, just colder.
* **Scan-only fallback for huge predicates.**  A predicate whose
  candidate set exceeds the residency cap would thrash the LRU; such
  lookups answer resident chunks through their crackers and raw-scan the
  rest without building anything.

**Deadlock freedom.**  The :class:`repro.indexing.manager.IndexManager`
mutates this index while holding a per-column lock, and the shared
:class:`repro.persist.budget.MemoryBudget` must never be charged while
any such lock is held (budget reclaim may need those locks).  The paged
cracker therefore reads chunk data straight off the column's read-only
memmap (``column.values[start:stop]``) — *bypassing* the budget-charging
``ChunkCache`` — and its spill writes are pure file I/O.  The resident
crackers' bytes are themselves accounted to the budget by the manager,
which charges/releases the size delta after dropping the lock.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.errors import StorageError
from repro.indexing.cracking import (
    DEFAULT_MIN_PIECE_ROWS,
    CrackerIndex,
    CrackerState,
)
from repro.storage.column import Column

#: Default cap on simultaneously resident chunk crackers.
DEFAULT_MAX_RESIDENT_CHUNKS = 64
#: Default per-chunk piece cap (chunks are small; a handful of pieces
#: already bounds the scan to a few hundred rows).
DEFAULT_MAX_PIECES_PER_CHUNK = 64
#: How many *new* chunk crackers one refinement pass may build.  Lookups
#: build whatever they need; pure refinement (observe_predicate) must
#: stay cheap for broad predicates.
REFINE_BUILD_BUDGET = 8

_COUNTERS = (
    "cracks_performed",
    "stochastic_cracks",
    "coalesces_performed",
    "pieces_merged",
    "values_scanned_total",
)


class PagedCrackerIndex:
    """Adaptive index over a chunked on-disk column (see module docstring).

    Exposes the same consultation surface as
    :class:`~repro.indexing.cracking.CrackerIndex` — ``crack_range``,
    ``rowids_in_range``, ``scan_cost_for_range``, the counter and size
    attributes — so the :class:`~repro.indexing.manager.IndexManager`
    treats both uniformly, plus ``release_bytes`` so budget pressure can
    spill resident chunk crackers instead of dropping the whole index.
    """

    def __init__(
        self,
        column: Any,
        *,
        spill_store: Any = None,
        spill_prefix: str = "",
        max_resident_chunks: int = DEFAULT_MAX_RESIDENT_CHUNKS,
        max_pieces_per_chunk: int = DEFAULT_MAX_PIECES_PER_CHUNK,
        min_piece_rows: int = DEFAULT_MIN_PIECE_ROWS,
        stochastic: bool = False,
        seed: int = 0,
    ):
        if not column.is_numeric:
            raise StorageError("cracking requires a numeric column")
        if getattr(column, "num_chunks", 0) <= 0:
            raise StorageError(
                f"paged cracking requires a chunked column; {column.name!r} has none"
            )
        if max_resident_chunks < 1:
            raise StorageError("max_resident_chunks must be at least 1")
        self.column = column
        self._num_rows = len(column)
        self._chunk_rows = int(column.chunk_rows)
        self._store = spill_store
        self._prefix = spill_prefix or str(column.name)
        self.max_resident_chunks = int(max_resident_chunks)
        self.max_pieces_per_chunk = int(max_pieces_per_chunk)
        self.min_piece_rows = int(min_piece_rows)
        self.stochastic = bool(stochastic)
        self.seed = int(seed)
        # chunk index -> resident CrackerIndex, in LRU order (MRU last)
        self._chunks: OrderedDict[int, CrackerIndex] = OrderedDict()
        # chunk index -> piece metadata for spilled chunk crackers
        self._spilled: dict[int, dict[str, Any]] = {}
        # every chunk index that ever had spill columns written: revived
        # chunks leave their store columns behind (the next spill simply
        # overwrites them), so cleanup must cover this superset
        self._spill_written: set[int] = set()
        self.cracks_performed = 0
        self.stochastic_cracks = 0
        self.coalesces_performed = 0
        self.pieces_merged = 0
        self.values_scanned_total = 0
        self.chunk_crackers_built = 0
        self.spills = 0
        self.spill_loads = 0
        self.tail_merges = 0
        self.rows_merged_total = 0

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_pieces(self) -> int:
        """Total pieces across resident and spilled chunk crackers."""
        resident = sum(c.num_pieces for c in self._chunks.values())
        spilled = sum(len(meta["bounds"]) - 1 for meta in self._spilled.values())
        return resident + spilled

    @property
    def num_resident_chunks(self) -> int:
        """Chunk crackers currently held in memory."""
        return len(self._chunks)

    @property
    def num_spilled_chunks(self) -> int:
        """Chunk crackers whose arrays live in the spill store."""
        return len(self._spilled)

    @property
    def size_bytes(self) -> int:
        """Bytes held in memory (resident chunk crackers only)."""
        return sum(c.size_bytes for c in self._chunks.values())

    @property
    def covered_rows(self) -> int:
        """Base rows inside the validity window ``[0, covered_rows)``.

        Frozen when the index is built; rows appended to the column since
        then are outside every chunk cracker and are scanned by the
        manager until :meth:`merge_tail` advances the window.
        """
        return self._num_rows

    @property
    def tail_rows(self) -> int:
        """Appended base rows not yet covered by the chunk crackers."""
        return len(self.column) - self._num_rows

    # ------------------------------------------------------------------ #
    # chunk cracker lifecycle
    # ------------------------------------------------------------------ #
    def _chunk_span(self, index: int) -> tuple[int, int]:
        start = index * self._chunk_rows
        return start, max(start, min(self._num_rows, start + self._chunk_rows))

    def _chunk_values(self, index: int) -> np.ndarray:
        # read straight off the memmap: no ChunkCache, no budget charge
        # while the manager's column lock is held (see module docstring).
        # raw_slice assembles memmap + append-tail rows, equally cache-free
        start, stop = self._chunk_span(index)
        raw = getattr(self.column, "raw_slice", None)
        if callable(raw):
            return np.array(raw(start, stop), copy=True)
        return np.array(self.column.values[start:stop], copy=True)

    def _counters_of(self, cracker: CrackerIndex) -> tuple[int, ...]:
        return tuple(getattr(cracker, name) for name in _COUNTERS)

    def _absorb(self, cracker: CrackerIndex, before: tuple[int, ...]) -> None:
        after = self._counters_of(cracker)
        for name, prev, now in zip(_COUNTERS, before, after):
            setattr(self, name, getattr(self, name) + now - prev)

    def _configure(self, cracker: CrackerIndex, index: int) -> None:
        cracker.max_pieces = self.max_pieces_per_chunk
        cracker.min_piece_rows = self.min_piece_rows
        cracker.stochastic = self.stochastic
        cracker._rng = np.random.default_rng((self.seed, index))

    def _build(self, index: int) -> CrackerIndex:
        local = Column(f"{self._prefix}#chunk{index}", self._chunk_values(index))
        cracker = CrackerIndex(
            local,
            max_pieces=self.max_pieces_per_chunk,
            min_piece_rows=self.min_piece_rows,
            stochastic=self.stochastic,
            seed=(self.seed, index),
        )
        self.chunk_crackers_built += 1
        return cracker

    def _spill_names(self, index: int) -> tuple[str, str]:
        return (
            f"{self._prefix}#spill-c{index}-v",
            f"{self._prefix}#spill-c{index}-r",
        )

    def _revive(self, index: int) -> CrackerIndex | None:
        """Reload a spilled chunk cracker; ``None`` falls back to a build."""
        meta = self._spilled.pop(index)
        if self._store is None:
            return None
        try:
            values = np.array(self._store.open_column(meta["values_store"]).values)
            rowids = np.array(
                self._store.open_column(meta["rowids_store"]).values, dtype=np.int64
            )
            state = CrackerState(
                values=values,
                rowids=rowids,
                pivots=meta["pivots"],
                bounds=meta["bounds"],
                num_valid=meta["num_valid"],
                cracks_performed=meta["cracks_performed"],
            )
            local = Column(f"{self._prefix}#chunk{index}", self._chunk_values(index))
            cracker = CrackerIndex.from_state(local, state)
        except StorageError:
            # spill file gone or stale: rebuild from the base chunk
            return None
        self._configure(cracker, index)
        self.spill_loads += 1
        return cracker

    def _spill_one(self) -> int:
        """Evict the LRU chunk cracker; returns the bytes freed."""
        index, cracker = self._chunks.popitem(last=False)
        freed = cracker.size_bytes
        if self._store is not None and cracker.cracks_performed:
            state = cracker.export_state()
            values_store, rowids_store = self._spill_names(index)
            self._store.write_column(
                Column(values_store, state.values),
                name=values_store,
                chunk_rows=max(1, len(state.values)),
                replace=True,
            )
            self._store.write_column(
                Column(rowids_store, state.rowids),
                name=rowids_store,
                chunk_rows=max(1, len(state.rowids)),
                replace=True,
            )
            self._spilled[index] = {
                "pivots": state.pivots,
                "bounds": state.bounds,
                "num_valid": state.num_valid,
                "cracks_performed": state.cracks_performed,
                "values_store": values_store,
                "rowids_store": rowids_store,
            }
            self._spill_written.add(index)
            self.spills += 1
        return freed

    def _enforce_residency(self) -> None:
        while len(self._chunks) > self.max_resident_chunks:
            self._spill_one()

    def _chunk_cracker(self, index: int) -> CrackerIndex:
        """The chunk's cracker, made resident (reviving or building)."""
        cracker = self._chunks.get(index)
        if cracker is not None:
            self._chunks.move_to_end(index)
            return cracker
        if index in self._spilled:
            cracker = self._revive(index)
            if cracker is None:
                cracker = self._build(index)
        else:
            cracker = self._build(index)
        self._chunks[index] = cracker
        self._enforce_residency()
        return cracker

    def release_bytes(self, nbytes: int) -> int:
        """Spill resident chunk crackers until ``nbytes`` are freed.

        Budget-pressure hook: the cracked organization moves to the spill
        store (or is dropped without one) instead of being lost outright.
        Returns how many bytes were actually freed.
        """
        freed = 0
        while freed < nbytes and self._chunks:
            freed += self._spill_one()
        return freed

    def discard_spills(self) -> None:
        """Delete this index's spill columns from the store — including
        leftovers of chunks that were spilled and later revived."""
        if self._store is not None:
            for index in self._spill_written:
                for name in self._spill_names(index):
                    try:
                        self._store.delete_column(name)
                    except StorageError:
                        pass
        self._spill_written.clear()
        self._spilled.clear()

    # ------------------------------------------------------------------ #
    # validity-window maintenance (live appends)
    # ------------------------------------------------------------------ #
    def merge_tail(self) -> int:
        """Advance the validity window over appended rows; returns them.

        Cheap by construction: appended rows either start new chunks
        (whose crackers build lazily on first consult) or top up the one
        logical chunk the old window ended inside — only *that* chunk's
        cracker is stale and gets dropped (resident or spilled); every
        other chunk's cracked organization survives untouched.
        """
        n = len(self.column)
        if n <= self._num_rows:
            return 0
        merged = n - self._num_rows
        if self._num_rows % self._chunk_rows:
            boundary = self._num_rows // self._chunk_rows
            self._chunks.pop(boundary, None)
            self._spilled.pop(boundary, None)
        self._num_rows = n
        self.tail_merges += 1
        self.rows_merged_total += merged
        return merged

    # ------------------------------------------------------------------ #
    # cracking and lookups
    # ------------------------------------------------------------------ #
    def _candidates(self, low: float, high: float) -> list[int]:
        # chunks_for_predicate is closed-interval and NaN-conservative;
        # for our half-open [low, high) it can only over-include, and the
        # per-chunk crackers restore exactness.  Chunks lying entirely
        # beyond the validity window hold only appended rows — those are
        # the manager's tail scan, not ours.
        return [
            index
            for index in self.column.chunks_for_predicate(low, high)
            if index * self._chunk_rows < self._num_rows
        ]

    def crack_range(self, low: float, high: float) -> None:
        """Refine candidate chunks around ``[low, high)``.

        Builds at most :data:`REFINE_BUILD_BUDGET` new chunk crackers per
        call; beyond that only already-resident chunks are refined, so a
        broad predicate cannot stampede the whole column into memory just
        to record its bounds.
        """
        if high < low:
            raise StorageError("crack_range requires low <= high")
        builds_left = REFINE_BUILD_BUDGET
        for index in self._candidates(low, high):
            resident = index in self._chunks
            if not resident:
                if builds_left <= 0:
                    continue
                builds_left -= 1
            cracker = self._chunk_cracker(index)
            before = self._counters_of(cracker)
            cracker.crack_range(low, high)
            self._absorb(cracker, before)

    def _scan_chunk(self, index: int, low: float, high: float) -> np.ndarray:
        """Raw half-open range scan of one chunk (no cracker built)."""
        start, _ = self._chunk_span(index)
        values = self._chunk_values(index)
        self.values_scanned_total += int(values.size)
        mask = (values >= low) & (values < high)
        return np.nonzero(mask)[0].astype(np.int64) + start

    def rowids_in_range(
        self, low: float, high: float, crack: bool = True
    ) -> np.ndarray:
        """Base rowids whose values lie in ``[low, high)``, sorted.

        Candidate chunks (by zonemap) answer through their chunk crackers,
        built or revived on demand; when the candidate set exceeds the
        residency cap, non-resident chunks are raw-scanned instead so one
        huge predicate cannot thrash the LRU.
        """
        if math.isnan(low) or math.isnan(high):
            return np.empty(0, dtype=np.int64)
        if high < low:
            raise StorageError("range lookup requires low <= high")
        candidates = self._candidates(low, high)
        thrashing = len(candidates) > self.max_resident_chunks
        parts: list[np.ndarray] = []
        for index in candidates:
            if thrashing and index not in self._chunks:
                part = self._scan_chunk(index, low, high)
            else:
                cracker = self._chunk_cracker(index)
                before = self._counters_of(cracker)
                local = cracker.rowids_in_range(low, high, crack=crack)
                self._absorb(cracker, before)
                start, _ = self._chunk_span(index)
                part = local + start
            if part.size:
                parts.append(part)
        if not parts:
            return np.empty(0, dtype=np.int64)
        # ascending chunk order + sorted per-chunk results = sorted output
        return np.concatenate(parts)

    def scan_cost_for_range(self, low: float, high: float) -> int:
        """Values a lookup of ``[low, high)`` would scan right now."""
        cost = 0
        for index in self._candidates(low, high):
            cracker = self._chunks.get(index)
            if cracker is not None:
                cost += cracker.scan_cost_for_range(low, high)
            elif index in self._spilled:
                # piece structure is known even while spilled; approximate
                # with the boundary-piece widths a revived cracker would scan
                bounds = self._spilled[index]["bounds"]
                cost += min(
                    bounds[-1], 2 * max(bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1))
                )
            else:
                start, stop = self._chunk_span(index)
                cost += stop - start
        return cost
