"""Per-sample-level indexes.

The paper suggests that when a hierarchy of samples exists, dbTouch can
maintain a separate index for each sample level, treating each copy
independently depending on how often index support is needed for that
copy.  The :class:`SampleLevelIndex` below wraps a sorted index per level,
built lazily on first use, and answers value-range lookups at whichever
granularity the gesture is currently exploring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SampleError
from repro.storage.sample import SampleHierarchy, SampleLevel


@dataclass(frozen=True)
class RangeLookupResult:
    """The outcome of a value-range lookup against one sample level."""

    level: int
    step: int
    sample_rowids: np.ndarray
    base_rowids: np.ndarray

    @property
    def count(self) -> int:
        """Number of matching sample entries."""
        return int(len(self.sample_rowids))


class SampleLevelIndex:
    """Lazily built sorted indexes, one per sample-hierarchy level."""

    def __init__(self, hierarchy: SampleHierarchy):
        self.hierarchy = hierarchy
        self._sorted_orders: dict[int, np.ndarray] = {}
        self.builds = 0

    # ------------------------------------------------------------------ #
    # index construction
    # ------------------------------------------------------------------ #
    def _order_for(self, level: SampleLevel) -> np.ndarray:
        if level.level not in self._sorted_orders:
            self._sorted_orders[level.level] = np.argsort(
                level.column.values, kind="stable"
            )
            self.builds += 1
        return self._sorted_orders[level.level]

    @property
    def levels_indexed(self) -> list[int]:
        """Which levels have a materialized index so far."""
        return sorted(self._sorted_orders)

    def build_all(self) -> None:
        """Eagerly index every level (normally they are built on demand)."""
        for level in self.hierarchy.levels:
            self._order_for(level)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def lookup_range(
        self,
        low: float,
        high: float,
        stride_hint: int = 1,
    ) -> RangeLookupResult:
        """Find sample entries with values in ``[low, high]``.

        The lookup is served by the sample level matching ``stride_hint``,
        i.e. the same level a slide at that granularity would read, so the
        index scan is the equivalent of an index-supported slide.
        """
        if high < low:
            raise SampleError("lookup_range requires low <= high")
        level = self.hierarchy.level_for_stride(stride_hint)
        order = self._order_for(level)
        values_sorted = level.column.values[order]
        left = int(np.searchsorted(values_sorted, low, side="left"))
        right = int(np.searchsorted(values_sorted, high, side="right"))
        sample_rowids = np.sort(order[left:right])
        base_rowids = sample_rowids * level.step
        return RangeLookupResult(
            level=level.level,
            step=level.step,
            sample_rowids=sample_rowids,
            base_rowids=base_rowids,
        )

    def estimate_selectivity(self, low: float, high: float, stride_hint: int = 1) -> float:
        """Fraction of entries (at the chosen level) within ``[low, high]``."""
        result = self.lookup_range(low, high, stride_hint)
        level = self.hierarchy.level_for_stride(stride_hint)
        if not level.num_rows:
            return 0.0
        return result.count / level.num_rows
