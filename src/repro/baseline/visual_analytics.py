"""A Polaris/Tableau-style visual-analytics shim over the monolithic engine.

The paper positions dbTouch against visual-analytics systems (Polaris,
Tableau and friends): those systems make *query construction* graphical —
drag a field onto a shelf, pick an aggregate — but the underlying engine is
still a traditional DBMS that runs the full, monolithic query.  This module
reproduces that architecture so the benchmarks can compare "graphical input
over a traditional kernel" with "touch-driven kernel" directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BaselineError
from repro.baseline.engine import MonolithicEngine, QueryResult
from repro.engine.filter import Predicate


@dataclass
class ShelfSpec:
    """The state of the drag-and-drop shelves in a Polaris-like UI.

    Attributes
    ----------
    table:
        The data source dropped onto the canvas.
    rows / columns:
        Field names dragged to the row and column shelves.
    measure:
        The measure field to aggregate.
    aggregate:
        The aggregate function selected from the measure's menu.
    filters:
        Field → predicate mappings dragged to the filter shelf.
    """

    table: str
    rows: list[str] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    measure: str | None = None
    aggregate: str = "avg"
    filters: dict[str, Predicate] = field(default_factory=dict)

    def dimensions(self) -> list[str]:
        """All dimension fields in shelf order (rows then columns)."""
        return [*self.rows, *self.columns]


@dataclass(frozen=True)
class ChartResult:
    """A rendered chart: the marks plus the query cost that produced them."""

    chart_type: str
    marks: list[dict[str, object]]
    query_result: QueryResult


class VisualAnalyticsInterface:
    """Compile shelf specifications into monolithic queries and 'render' them."""

    def __init__(self, engine: MonolithicEngine):
        self.engine = engine
        self.charts_rendered = 0

    # ------------------------------------------------------------------ #
    # shelf manipulation helpers (the drag-and-drop vocabulary)
    # ------------------------------------------------------------------ #
    def new_sheet(self, table: str) -> ShelfSpec:
        """Start a new sheet with ``table`` as the data source."""
        if table not in self.engine.table_names:
            raise BaselineError(f"unknown data source {table!r}")
        return ShelfSpec(table=table)

    @staticmethod
    def drag_to_rows(spec: ShelfSpec, field_name: str) -> ShelfSpec:
        """Drag a dimension to the rows shelf."""
        spec.rows.append(field_name)
        return spec

    @staticmethod
    def drag_to_columns(spec: ShelfSpec, field_name: str) -> ShelfSpec:
        """Drag a dimension to the columns shelf."""
        spec.columns.append(field_name)
        return spec

    @staticmethod
    def set_measure(spec: ShelfSpec, field_name: str, aggregate: str = "avg") -> ShelfSpec:
        """Choose the measure field and its aggregate."""
        spec.measure = field_name
        spec.aggregate = aggregate
        return spec

    @staticmethod
    def add_filter(spec: ShelfSpec, field_name: str, predicate: Predicate) -> ShelfSpec:
        """Drag a field to the filter shelf with a predicate."""
        spec.filters[field_name] = predicate
        return spec

    # ------------------------------------------------------------------ #
    # rendering (compiles to a monolithic query)
    # ------------------------------------------------------------------ #
    def render(self, spec: ShelfSpec) -> ChartResult:
        """Compile the shelves to a query, run it fully, return the chart.

        A bar chart is produced when exactly one dimension is present, a
        scalar "big number" card when none is, and a table otherwise — a
        simplified version of Polaris' table-algebra-to-chart mapping.
        """
        predicates = spec.filters if spec.filters else None
        dimensions = spec.dimensions()
        if spec.measure is None:
            result = self.engine.select(
                spec.table, columns=dimensions or None, predicates=predicates
            )
            chart_type = "table"
            marks = result.rows
        elif not dimensions:
            result = self.engine.aggregate(
                spec.table, column=spec.measure, function=spec.aggregate, predicates=predicates
            )
            chart_type = "big-number"
            marks = result.rows
        elif len(dimensions) == 1:
            result = self.engine.group_by(
                spec.table,
                key_column=dimensions[0],
                measure_column=spec.measure,
                function=spec.aggregate,
                predicates=predicates,
            )
            chart_type = "bar"
            marks = result.rows
        else:
            # multi-dimensional breakdown: group by the first dimension and
            # carry the remaining dimensions as mark attributes
            result = self.engine.group_by(
                spec.table,
                key_column=dimensions[0],
                measure_column=spec.measure,
                function=spec.aggregate,
                predicates=predicates,
            )
            chart_type = "heatmap"
            marks = result.rows
        self.charts_rendered += 1
        return ChartResult(chart_type=chart_type, marks=marks, query_result=result)
