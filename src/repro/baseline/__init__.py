"""Baselines: the monolithic DBMS and the visual-analytics shim.

These are the comparison points the paper positions dbTouch against —
traditional engines that control the data flow and consume their whole
input, regardless of whether the queries are typed as SQL or assembled by
drag-and-drop in a Polaris/Tableau-style interface.
"""

from repro.baseline.engine import MonolithicEngine, QueryResult
from repro.baseline.sql import ParsedQuery, SqlInterface, parse_sql
from repro.baseline.visual_analytics import (
    ChartResult,
    ShelfSpec,
    VisualAnalyticsInterface,
)

__all__ = [
    "ChartResult",
    "MonolithicEngine",
    "ParsedQuery",
    "QueryResult",
    "ShelfSpec",
    "SqlInterface",
    "VisualAnalyticsInterface",
    "parse_sql",
]
