"""The monolithic baseline engine (the "traditional DBMS" in the demo).

The dbTouch demo proposes an exploration contest: one person explores data
with the dbTouch prototype, another with the SQL interface of an
open-source column-store DBMS.  This module provides that opponent — a
small but honest monolithic engine: queries are declared up front, the
engine controls the data flow, every query scans all the rows it needs
(there is no sampling, no incremental refinement), and blocking operators
(hash join, hash aggregation, sorting) consume their whole input before
producing the first result.

Work is accounted in *cells read* alongside wall-clock time so benchmark
comparisons do not depend solely on Python-level timing noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import BaselineError
from repro.engine.filter import Predicate
from repro.engine.join import BlockingHashJoin
from repro.storage.table import Table


@dataclass
class QueryResult:
    """The result of one monolithic query.

    Attributes
    ----------
    rows:
        Result rows as attribute → value mappings (aggregates produce one).
    cells_read:
        Number of fixed-width cells the query had to read.
    elapsed_s:
        Wall-clock execution time.
    rows_examined:
        Number of base tuples examined.
    """

    rows: list[dict[str, object]]
    cells_read: int = 0
    elapsed_s: float = 0.0
    rows_examined: int = 0

    @property
    def num_rows(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def scalar(self) -> object:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise BaselineError("scalar() requires a 1x1 result")
        return next(iter(self.rows[0].values()))


_AGG_FUNCS = {
    "count": lambda v: int(v.size),
    "sum": lambda v: float(v.sum()) if v.size else 0.0,
    "avg": lambda v: float(v.mean()) if v.size else None,
    "min": lambda v: float(v.min()) if v.size else None,
    "max": lambda v: float(v.max()) if v.size else None,
    "std": lambda v: float(v.std()) if v.size else None,
}


class MonolithicEngine:
    """A traditional, full-scan, blocking query engine over registered tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self.total_cells_read = 0
        self.queries_executed = 0

    # ------------------------------------------------------------------ #
    # catalog
    # ------------------------------------------------------------------ #
    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table with the engine."""
        if table.name in self._tables and not replace:
            raise BaselineError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a registered table."""
        if name not in self._tables:
            raise BaselineError(f"unknown table {name!r}; registered: {sorted(self._tables)}")
        return self._tables[name]

    @property
    def table_names(self) -> list[str]:
        """Names of registered tables."""
        return sorted(self._tables)

    # ------------------------------------------------------------------ #
    # query execution
    # ------------------------------------------------------------------ #
    def _apply_predicates(
        self, table: Table, predicates: Mapping[str, Predicate] | None
    ) -> tuple[np.ndarray, int]:
        """Return (selected rowids, cells read evaluating the predicates)."""
        n = len(table)
        mask = np.ones(n, dtype=bool)
        cells = 0
        if predicates:
            for column_name, predicate in predicates.items():
                values = table.column(column_name).values
                cells += n  # a monolithic engine scans the full column
                mask &= predicate.mask(values)
        return np.nonzero(mask)[0], cells

    def select(
        self,
        table_name: str,
        columns: Sequence[str] | None = None,
        predicates: Mapping[str, Predicate] | None = None,
        limit: int | None = None,
    ) -> QueryResult:
        """SELECT columns FROM table [WHERE ...] [LIMIT n], full scan."""
        started = time.perf_counter()
        table = self.table(table_name)
        wanted = list(columns) if columns else table.column_names
        for name in wanted:
            if name not in table:
                raise BaselineError(f"table {table_name!r} has no column {name!r}")
        rowids, cells = self._apply_predicates(table, predicates)
        if limit is not None:
            rowids = rowids[: max(0, limit)]
        gathered = table.gather(rowids, wanted)
        cells += len(rowids) * len(wanted)
        rows = [
            {name: gathered[name][i] for name in wanted} for i in range(len(rowids))
        ]
        elapsed = time.perf_counter() - started
        self.total_cells_read += cells
        self.queries_executed += 1
        return QueryResult(rows=rows, cells_read=cells, elapsed_s=elapsed, rows_examined=len(table))

    def aggregate(
        self,
        table_name: str,
        column: str,
        function: str,
        predicates: Mapping[str, Predicate] | None = None,
    ) -> QueryResult:
        """SELECT f(column) FROM table [WHERE ...], full scan."""
        started = time.perf_counter()
        function = function.lower()
        if function not in _AGG_FUNCS:
            raise BaselineError(f"unknown aggregate {function!r}; known: {sorted(_AGG_FUNCS)}")
        table = self.table(table_name)
        rowids, cells = self._apply_predicates(table, predicates)
        values = table.column(column).values[rowids].astype(np.float64)
        cells += len(rowids)
        result_value = _AGG_FUNCS[function](values)
        elapsed = time.perf_counter() - started
        self.total_cells_read += cells
        self.queries_executed += 1
        return QueryResult(
            rows=[{f"{function}({column})": result_value}],
            cells_read=cells,
            elapsed_s=elapsed,
            rows_examined=len(table),
        )

    def group_by(
        self,
        table_name: str,
        key_column: str,
        measure_column: str,
        function: str = "avg",
        predicates: Mapping[str, Predicate] | None = None,
    ) -> QueryResult:
        """SELECT key, f(measure) FROM table GROUP BY key — blocking hash aggregation."""
        started = time.perf_counter()
        function = function.lower()
        if function not in _AGG_FUNCS:
            raise BaselineError(f"unknown aggregate {function!r}")
        table = self.table(table_name)
        rowids, cells = self._apply_predicates(table, predicates)
        keys = table.column(key_column).values[rowids]
        measures = table.column(measure_column).values[rowids].astype(np.float64)
        cells += 2 * len(rowids)
        rows = []
        for key in np.unique(keys):
            group_values = measures[keys == key]
            rows.append(
                {
                    key_column: key.item() if hasattr(key, "item") else key,
                    f"{function}({measure_column})": _AGG_FUNCS[function](group_values),
                }
            )
        elapsed = time.perf_counter() - started
        self.total_cells_read += cells
        self.queries_executed += 1
        return QueryResult(rows=rows, cells_read=cells, elapsed_s=elapsed, rows_examined=len(table))

    def join(
        self,
        left_table: str,
        right_table: str,
        left_column: str,
        right_column: str,
        limit: int | None = None,
    ) -> QueryResult:
        """Blocking hash join between two registered tables on equality."""
        started = time.perf_counter()
        left = self.table(left_table)
        right = self.table(right_table)
        join = BlockingHashJoin()
        matches = join.join(
            left.column(left_column).values.tolist(),
            right.column(right_column).values.tolist(),
        )
        if limit is not None:
            matches = matches[: max(0, limit)]
        cells = len(left) + len(right)
        rows = [
            {
                f"{left_table}.rowid": m.left_rowid,
                f"{right_table}.rowid": m.right_rowid,
                "key": m.key,
            }
            for m in matches
        ]
        elapsed = time.perf_counter() - started
        self.total_cells_read += cells
        self.queries_executed += 1
        return QueryResult(
            rows=rows,
            cells_read=cells,
            elapsed_s=elapsed,
            rows_examined=len(left) + len(right),
        )
