"""A tiny SQL-like front-end for the monolithic baseline engine.

The demo's contest opponent types SQL into a laptop DBMS.  This parser
supports the slice of SQL that opponent realistically needs:

* ``SELECT col1, col2 FROM t``
* ``SELECT * FROM t WHERE col > 10 AND col2 <= 5 LIMIT 20``
* ``SELECT AVG(col) FROM t WHERE col BETWEEN 10 AND 20``
* ``SELECT key, AVG(measure) FROM t GROUP BY key``

It compiles the statement into calls on :class:`MonolithicEngine` and is
deliberately strict: anything outside the supported grammar raises
:class:`~repro.errors.BaselineError` with a pointed message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import BaselineError
from repro.baseline.engine import MonolithicEngine, QueryResult
from repro.engine.filter import Comparison, Predicate

_AGG_RE = re.compile(r"^(count|sum|avg|min|max|std)\((\*|[\w\.]+)\)$", re.IGNORECASE)
_CONDITION_RE = re.compile(
    r"^(?P<column>[\w\.]+)\s*(?P<op><=|>=|!=|=|<|>)\s*(?P<value>-?\d+(?:\.\d+)?)$"
)
_BETWEEN_RE = re.compile(
    r"^(?P<column>[\w\.]+)\s+between\s+(?P<low>-?\d+(?:\.\d+)?)\s+and\s+(?P<high>-?\d+(?:\.\d+)?)$",
    re.IGNORECASE,
)
_DANGLING_BETWEEN_RE = re.compile(
    r"between\s+-?\d+(?:\.\d+)?$", re.IGNORECASE
)


def _split_conditions(where_part: str) -> list[str]:
    """Split a WHERE clause on AND, keeping BETWEEN ... AND ... intact."""
    raw = re.split(r"\s+and\s+", where_part, flags=re.IGNORECASE)
    conditions: list[str] = []
    for part in raw:
        if conditions and _DANGLING_BETWEEN_RE.search(conditions[-1]):
            conditions[-1] = f"{conditions[-1]} AND {part}"
        else:
            conditions.append(part)
    return conditions

_OP_MAP = {
    "=": Comparison.EQ,
    "!=": Comparison.NE,
    "<": Comparison.LT,
    "<=": Comparison.LE,
    ">": Comparison.GT,
    ">=": Comparison.GE,
}


@dataclass(frozen=True)
class ParsedQuery:
    """The normalized form of a parsed SQL statement."""

    table: str
    select_columns: tuple[str, ...] = ()
    aggregate_function: str | None = None
    aggregate_column: str | None = None
    group_by_column: str | None = None
    predicates: tuple[tuple[str, Predicate], ...] = ()
    limit: int | None = None


def _parse_condition(text: str) -> tuple[str, Predicate]:
    text = text.strip()
    between = _BETWEEN_RE.match(text)
    if between:
        return (
            between.group("column"),
            Predicate(
                Comparison.BETWEEN,
                float(between.group("low")),
                float(between.group("high")),
            ),
        )
    match = _CONDITION_RE.match(text)
    if not match:
        raise BaselineError(f"cannot parse WHERE condition {text!r}")
    return (
        match.group("column"),
        Predicate(_OP_MAP[match.group("op")], float(match.group("value"))),
    )


def parse_sql(statement: str) -> ParsedQuery:
    """Parse a supported SQL statement into a :class:`ParsedQuery`."""
    text = " ".join(statement.strip().rstrip(";").split())
    if not text:
        raise BaselineError("empty SQL statement")
    pattern = re.compile(
        r"^select\s+(?P<select>.+?)\s+from\s+(?P<table>\w+)"
        r"(?:\s+where\s+(?P<where>.+?))?"
        r"(?:\s+group\s+by\s+(?P<group>\w+))?"
        r"(?:\s+limit\s+(?P<limit>\d+))?$",
        re.IGNORECASE,
    )
    match = pattern.match(text)
    if not match:
        raise BaselineError(
            f"unsupported SQL statement {statement!r}; supported forms are "
            "SELECT cols|agg(col) FROM t [WHERE ...] [GROUP BY col] [LIMIT n]"
        )
    select_part = match.group("select").strip()
    table = match.group("table")
    where_part = match.group("where")
    group_column = match.group("group")
    limit = int(match.group("limit")) if match.group("limit") else None

    predicates: list[tuple[str, Predicate]] = []
    if where_part:
        for condition in _split_conditions(where_part):
            predicates.append(_parse_condition(condition))

    select_items = [item.strip() for item in select_part.split(",")]
    agg_function: str | None = None
    agg_column: str | None = None
    plain_columns: list[str] = []
    for item in select_items:
        agg_match = _AGG_RE.match(item)
        if agg_match:
            if agg_function is not None:
                raise BaselineError("only one aggregate per statement is supported")
            agg_function = agg_match.group(1).lower()
            agg_column = agg_match.group(2)
        else:
            plain_columns.append(item)

    if group_column is not None:
        if agg_function is None or agg_column is None:
            raise BaselineError("GROUP BY requires an aggregate in the SELECT list")
        extra = [c for c in plain_columns if c not in ("*", group_column)]
        if extra:
            raise BaselineError(
                f"non-aggregated columns {extra} are not allowed with GROUP BY"
            )
    elif agg_function is not None and plain_columns and plain_columns != ["*"]:
        raise BaselineError("mixing aggregates and plain columns requires GROUP BY")

    return ParsedQuery(
        table=table,
        select_columns=tuple(plain_columns),
        aggregate_function=agg_function,
        aggregate_column=agg_column,
        group_by_column=group_column,
        predicates=tuple(predicates),
        limit=limit,
    )


class SqlInterface:
    """Execute supported SQL statements against a :class:`MonolithicEngine`."""

    def __init__(self, engine: MonolithicEngine):
        self.engine = engine
        self.statements_executed = 0

    def execute(self, statement: str) -> QueryResult:
        """Parse and execute ``statement``, returning its :class:`QueryResult`."""
        parsed = parse_sql(statement)
        predicates = dict(parsed.predicates) if parsed.predicates else None
        self.statements_executed += 1
        if parsed.group_by_column is not None:
            if parsed.aggregate_column in (None, "*"):
                raise BaselineError("GROUP BY aggregates need an explicit measure column")
            return self.engine.group_by(
                parsed.table,
                key_column=parsed.group_by_column,
                measure_column=parsed.aggregate_column,
                function=parsed.aggregate_function or "avg",
                predicates=predicates,
            )
        if parsed.aggregate_function is not None:
            if parsed.aggregate_function == "count" and parsed.aggregate_column == "*":
                table = self.engine.table(parsed.table)
                column = table.column_names[0]
            else:
                column = parsed.aggregate_column or ""
            return self.engine.aggregate(
                parsed.table,
                column=column,
                function=parsed.aggregate_function,
                predicates=predicates,
            )
        columns = None
        if parsed.select_columns and parsed.select_columns != ("*",):
            columns = list(parsed.select_columns)
        return self.engine.select(
            parsed.table,
            columns=columns,
            predicates=predicates,
            limit=parsed.limit,
        )
