"""Shard topology: session-pinned worker processes behind command pipes.

:func:`shard_for_session` is the whole placement policy — a stable hash
of the session id modulo the worker count — which gives the serving tier
its central invariant: *every gesture of one session executes in one
process*.  Session affinity is what keeps the adaptive state a session's
gestures build (cracked pieces, sample read-ahead, result streams) in one
kernel, so per-session outcome counters stay bit-identical to a serial
replay no matter how many shards serve the fleet.

:class:`ShardManager` owns the fleet: it spawns every worker process
*before* starting any thread (fork safety — forking a multi-threaded
parent is how deadlocks are born), then runs one reader thread per pipe
to match responses to pending futures.  A worker death is detected as
pipe EOF and converted into :class:`repro.errors.WorkerCrashedError` on
every pending and future request routed to that shard — sessions pinned
to a dead shard fail loudly and immediately while the surviving shards
keep serving, which is the blast-radius story of sharding in the first
place.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import threading
from concurrent.futures import Future
from typing import Any

from repro.errors import ServiceError, WorkerCrashedError
from repro.obs.registry import merge_numeric
from repro.serving.protocol import exception_from_payload
from repro.serving.worker import WorkerConfig, worker_main

#: How long ShardManager waits for each worker's ready handshake.
DEFAULT_READY_TIMEOUT_S = 30.0


def shard_for_session(session_id: str, num_workers: int) -> int:
    """Pin one session to one worker: stable hash, independent of Python's
    per-process ``hash()`` randomization (clients and servers must agree).
    """
    if num_workers <= 0:
        raise ServiceError("num_workers must be positive")
    digest = hashlib.sha256(session_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_workers


class WorkerHandle:
    """Parent-side handle of one worker process: pipe, futures, liveness."""

    def __init__(self, worker_id: int, config: WorkerConfig, ctx: mp.context.BaseContext):
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._alive = False
        self._ready: Future = Future()
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, config),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the child's end lives in the child now
        self._alive = True
        self._reader: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start_reader(self) -> None:
        """Start the response-reader thread (after ALL workers are forked)."""
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-shard-{self.worker_id}-reader", daemon=True
        )
        self._reader.start()

    def wait_ready(self, timeout: float = DEFAULT_READY_TIMEOUT_S) -> None:
        """Block until the worker's ready handshake (or typed setup error)."""
        self._ready.result(timeout=timeout)

    @property
    def alive(self) -> bool:
        """Whether this shard is still accepting requests."""
        with self._lock:
            return self._alive

    # ------------------------------------------------------------------ #
    # request/response plumbing
    # ------------------------------------------------------------------ #
    def submit(self, op: str, session: str | None = None, payload: dict | None = None) -> Future:
        """Send one op to the worker; the future resolves with its payload."""
        future: Future = Future()
        with self._lock:
            if not self._alive:
                future.set_exception(
                    WorkerCrashedError(
                        f"worker {self.worker_id} is down; sessions pinned to this "
                        "shard are lost"
                    )
                )
                return future
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
            message: dict[str, Any] = {"id": request_id, "op": op}
            if session is not None:
                message["session"] = session
            if payload:
                message["payload"] = payload
            try:
                self._conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                del self._pending[request_id]
                self._mark_dead_locked()
                future.set_exception(
                    WorkerCrashedError(f"worker {self.worker_id} pipe is closed")
                )
        return future

    def request(
        self,
        op: str,
        session: str | None = None,
        payload: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Synchronous :meth:`submit` (raises the typed error on failure)."""
        return self.submit(op, session=session, payload=payload).result(timeout=timeout)

    def _read_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                self._on_crash()
                return
            self._dispatch(message)

    def _dispatch(self, message: Any) -> None:
        if not isinstance(message, dict):
            return  # a worker never sends these; ignore rather than die
        request_id = message.get("id")
        if request_id == -1:  # ready handshake (or setup failure)
            if not self._ready.done():
                if message.get("ok"):
                    self._ready.set_result(message.get("payload", {}))
                else:
                    self._ready.set_exception(exception_from_payload(message.get("error")))
            return
        with self._lock:
            future = self._pending.pop(request_id, None)
        if future is None:
            return  # late response for an abandoned request
        if message.get("ok"):
            future.set_result(message.get("payload", {}))
        else:
            future.set_exception(exception_from_payload(message.get("error")))

    # ------------------------------------------------------------------ #
    # crash handling
    # ------------------------------------------------------------------ #
    def _mark_dead_locked(self) -> None:
        self._alive = False

    def _on_crash(self) -> None:
        """Pipe EOF: fail everything pending with a typed crash error."""
        with self._lock:
            already_dead = not self._alive
            self._alive = False
            pending = list(self._pending.values())
            self._pending.clear()
        exitcode = self.process.exitcode
        detail = f" (exit code {exitcode})" if exitcode not in (None, 0) else ""
        for future in pending:
            if not future.done():
                future.set_exception(
                    WorkerCrashedError(
                        f"worker {self.worker_id} died mid-request{detail}; "
                        "sessions pinned to this shard are lost"
                    )
                )
        if not self._ready.done():
            self._ready.set_exception(
                WorkerCrashedError(f"worker {self.worker_id} exited before serving{detail}")
            )
        if already_dead:
            return

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it will not."""
        if self.alive:
            try:
                self.submit("stop").result(timeout=timeout)
            except Exception:  # noqa: BLE001 - stopping must not raise
                pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout)
        with self._lock:
            self._alive = False
        try:
            self._conn.close()
        except OSError:
            pass


class ShardManager:
    """The worker fleet: spawn, route, aggregate, drain, stop.

    Parameters
    ----------
    num_workers:
        Shard count; sessions hash across exactly this many processes.
    config:
        Per-worker :class:`repro.serving.worker.WorkerConfig` (every shard
        gets the same one — workers are deliberately interchangeable
        modulo the sessions hashed onto them).
    start_method:
        ``multiprocessing`` start method (``None`` uses the platform
        default, fork on Linux).  All processes are spawned before any
        reader thread starts, so forking is safe here by construction.
    """

    def __init__(
        self,
        num_workers: int = 4,
        config: WorkerConfig | None = None,
        start_method: str | None = None,
        ready_timeout_s: float = DEFAULT_READY_TIMEOUT_S,
    ) -> None:
        if num_workers <= 0:
            raise ServiceError("num_workers must be positive")
        self.config = config if config is not None else WorkerConfig()
        ctx = mp.get_context(start_method)
        # phase 1: fork/spawn every process while this process is still
        # effectively single-threaded...
        self.workers = [WorkerHandle(i, self.config, ctx) for i in range(num_workers)]
        # ...phase 2: only then start reader threads and wait for handshakes
        for handle in self.workers:
            handle.start_reader()
        try:
            for handle in self.workers:
                handle.wait_ready(timeout=ready_timeout_s)
        except BaseException:
            self.shutdown()
            raise

    @property
    def num_workers(self) -> int:
        """How many shards this manager runs."""
        return len(self.workers)

    def worker_for_session(self, session_id: str) -> WorkerHandle:
        """The shard one session is pinned to (alive or not — the caller
        gets the typed crash error from the handle, not a routing error).
        """
        return self.workers[shard_for_session(session_id, len(self.workers))]

    def submit(
        self, op: str, session: str, payload: dict | None = None
    ) -> Future:
        """Route one session-scoped op to its shard."""
        return self.worker_for_session(session).submit(op, session=session, payload=payload)

    @property
    def alive_workers(self) -> list[int]:
        """Ids of the shards still serving."""
        return [handle.worker_id for handle in self.workers if handle.alive]

    # ------------------------------------------------------------------ #
    # fleet-wide operations
    # ------------------------------------------------------------------ #
    def stats(self, timeout: float | None = 30.0) -> dict[str, Any]:
        """Aggregate every live shard's stats (dead shards are reported,
        not raised — a half-dead fleet can still describe itself)."""
        futures = [
            (handle.worker_id, handle.submit("stats")) for handle in self.workers if handle.alive
        ]
        per_worker: dict[str, Any] = {}
        sessions: dict[str, dict[str, int]] = {}
        index_totals: dict[str, int] = {}
        storage_totals: dict[str, int] = {}
        speculation_totals: dict[str, int] = {}
        any_index = False
        any_storage = False
        any_speculation = False
        for worker_id, future in futures:
            try:
                report = future.result(timeout=timeout)
            except Exception as exc:  # noqa: BLE001 - reported as data
                per_worker[str(worker_id)] = {"error": str(exc)}
                continue
            per_worker[str(worker_id)] = report
            worker_sessions = report.get("sessions")
            if isinstance(worker_sessions, dict):
                sessions.update(worker_sessions)
            worker_index = report.get("index")
            if isinstance(worker_index, dict):
                any_index = True
                for key, value in worker_index.items():
                    index_totals[key] = index_totals.get(key, 0) + int(value)
            worker_storage = report.get("storage")
            if isinstance(worker_storage, dict):
                any_storage = True
                for key, value in worker_storage.items():
                    storage_totals[key] = storage_totals.get(key, 0) + int(value)
            worker_speculation = report.get("speculation")
            if isinstance(worker_speculation, dict):
                any_speculation = True
                for key, value in worker_speculation.items():
                    speculation_totals[key] = speculation_totals.get(key, 0) + int(value)
        return {
            "num_workers": len(self.workers),
            "alive_workers": self.alive_workers,
            "sessions": {sid: sessions[sid] for sid in sorted(sessions)},
            # key-wise sum of every shard's adaptive-index counters and
            # gauges; None when no shard runs the indexing tier
            "index": index_totals if any_index else None,
            # same treatment for the chunk-cache / memory-budget counters
            # of each shard's attached store; None when serving in-memory
            "storage": storage_totals if any_storage else None,
            # and for every shard's mined-speculation counters; None when
            # no shard serves with a speculation checkpoint
            "speculation": speculation_totals if any_speculation else None,
            "workers": per_worker,
        }

    def telemetry(self, timeout: float | None = 30.0) -> dict[str, Any]:
        """Drain and merge every live shard's telemetry plane.

        Returns the fleet-wide merged metric snapshot (key-wise sums via
        :func:`repro.obs.registry.merge_numeric`), every shard's drained
        traces and slow traces as wire dicts, and the per-worker detail
        (including each worker's own Prometheus exposition text).  Like
        :meth:`stats`, a dead shard is reported as data, never raised.
        """
        futures = [
            (handle.worker_id, handle.submit("telemetry"))
            for handle in self.workers
            if handle.alive
        ]
        per_worker: dict[str, Any] = {}
        snapshots: list[dict[str, float]] = []
        traces: list[dict[str, Any]] = []
        slow_traces: list[dict[str, Any]] = []
        for worker_id, future in futures:
            try:
                report = future.result(timeout=timeout)
            except Exception as exc:  # noqa: BLE001 - reported as data
                per_worker[str(worker_id)] = {"error": str(exc)}
                continue
            per_worker[str(worker_id)] = report
            metrics = report.get("metrics")
            if isinstance(metrics, dict):
                snapshots.append(metrics)
            for key, into in (("traces", traces), ("slow_traces", slow_traces)):
                drained = report.get(key)
                if isinstance(drained, list):
                    into.extend(part for part in drained if isinstance(part, dict))
        return {
            "num_workers": len(self.workers),
            "alive_workers": self.alive_workers,
            "metrics": merge_numeric(snapshots),
            "traces": traces,
            "slow_traces": slow_traces,
            "workers": per_worker,
        }

    def drain(self, timeout: float | None = None) -> bool:
        """Finish every in-flight gesture on every live shard."""
        futures = [
            handle.submit("drain", payload={"timeout": timeout})
            for handle in self.workers
            if handle.alive
        ]
        drained = True
        for future in futures:
            try:
                drained = bool(future.result(timeout=timeout).get("drained")) and drained
            except Exception:  # noqa: BLE001 - a crashed shard has nothing in flight
                drained = False
        return drained

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker process (idempotent)."""
        for handle in self.workers:
            handle.stop(timeout=timeout)

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown()
        return False
