"""The serving wire protocol: newline-delimited JSON frames.

One frame is one JSON object on one line, terminated by ``\\n``.  Frames
carry the *existing* serializable payloads of the command protocol —
:meth:`repro.core.commands.GestureCommand.to_dict`,
:meth:`repro.core.commands.GestureScript.to_dict`,
:meth:`repro.service.OutcomeEnvelope.to_dict` — wrapped in typed
request/response envelopes with request ids, so responses can be matched
to requests and errors arrive as data instead of dropped connections:

* request:  ``{"id": 7, "verb": "execute", "session": "u1", "payload": {...}}``
* success:  ``{"id": 7, "ok": true, "payload": {...}}``
* failure:  ``{"id": 7, "ok": false, "error": {"kind": "admission", "message": "..."}}``

Every decoding failure is a *typed* exception from the
:class:`repro.errors.ProtocolError` hierarchy — oversized frames, bad
JSON, non-object frames and malformed envelopes each have their own class
— which is what lets the front door turn hostile bytes into error
responses instead of crashing a worker (see
``tests/test_serving_protocol.py`` for the fuzz suite).  The ``error.kind``
string maps back to the same exception classes on the client side via
:func:`exception_from_payload`, so a :class:`repro.errors.AdmissionError`
shed at the front door is raised as an ``AdmissionError`` in the client
process too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    AdmissionError,
    CommandError,
    DbTouchError,
    FrameTooLargeError,
    IngestError,
    MalformedFrameError,
    ProtocolError,
    ServiceError,
    SnapshotError,
    UnknownVerbError,
    WorkerCrashedError,
)

#: Version tag carried by ``hello`` responses; a client refuses to talk to
#: a server speaking a different protocol generation.
PROTOCOL_VERSION = 1

#: Default upper bound on one encoded frame (request or response).
DEFAULT_MAX_FRAME_BYTES = 1 << 20

#: The request vocabulary of the sharded serving protocol.
VERBS = frozenset(
    {
        "hello",  # protocol handshake: server version + topology
        "open-session",  # create a session (pinned to a shard)
        "close-session",  # tear a session down, returning final counters
        "execute",  # one GestureCommand -> one OutcomeEnvelope
        "run-script",  # a whole GestureScript -> envelopes, in order
        "load-column",  # host a small session-private column by value
        "append",  # grow a loaded object in place (live ingestion)
        "stats",  # aggregate per-worker SessionMetrics + scheduler stats
        "telemetry",  # merged metrics snapshot + drained gesture traces
        "drain",  # finish all in-flight gestures, then refuse new work
    }
)

#: ``error.kind`` wire tags for the typed errors the protocol can carry.
#: The mapping is deliberately explicit (no ``__name__`` reflection): wire
#: tags are a compatibility surface and must not drift with refactors.
_ERROR_KINDS: dict[str, type[DbTouchError]] = {
    "protocol": ProtocolError,
    "malformed-frame": MalformedFrameError,
    "frame-too-large": FrameTooLargeError,
    "unknown-verb": UnknownVerbError,
    "admission": AdmissionError,
    "worker-crashed": WorkerCrashedError,
    "command": CommandError,
    "snapshot": SnapshotError,
    "ingest": IngestError,
    "service": ServiceError,
    "error": DbTouchError,
}
_KIND_BY_TYPE: dict[type[DbTouchError], str] = {
    cls: kind for kind, cls in reversed(_ERROR_KINDS.items())
}


def error_payload(exc: BaseException) -> dict[str, str]:
    """Encode an exception as a wire error: most-specific known kind wins.

    Unknown exception types degrade to the generic ``"error"`` kind rather
    than leaking arbitrary class names onto the wire.
    """
    for cls in type(exc).__mro__:
        kind = _KIND_BY_TYPE.get(cls)
        if kind is not None:
            return {"kind": kind, "message": str(exc)}
    return {"kind": "error", "message": f"{type(exc).__name__}: {exc}"}


def exception_from_payload(payload: Any) -> DbTouchError:
    """Rebuild the typed exception an ``error`` payload describes."""
    if not isinstance(payload, dict):
        return DbTouchError(f"malformed error payload: {payload!r}")
    kind = payload.get("kind")
    message = str(payload.get("message", ""))
    cls = _ERROR_KINDS.get(kind, DbTouchError)
    return cls(message)


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #


def encode_frame(payload: dict[str, Any], max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Encode one JSON object as a newline-terminated frame."""
    try:
        line = json.dumps(payload, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise MalformedFrameError(f"payload is not JSON-encodable: {exc}") from exc
    data = line.encode("utf-8") + b"\n"
    if len(data) > max_bytes:
        raise FrameTooLargeError(
            f"encoded frame is {len(data)} bytes (limit {max_bytes})"
        )
    return data


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Decode one frame line into a JSON object (newline optional)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MalformedFrameError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise MalformedFrameError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise MalformedFrameError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed it whatever the transport produced — half a frame, three frames,
    a frame split across ten TCP segments — and it yields complete decoded
    objects in order.  A partial frame simply stays buffered (truncated
    input never errors until the peer disconnects mid-frame), while a
    frame that grows past ``max_bytes`` without a newline raises
    :class:`repro.errors.FrameTooLargeError` *before* buffering unbounded
    garbage, which is the protocol's memory-safety property.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_bytes < 2:
            raise ProtocolError("max_bytes must allow at least one byte plus newline")
        self.max_bytes = max_bytes
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for their frame's newline."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Buffer ``data`` and return every frame it completed."""
        self._buffer.extend(data)
        frames: list[dict[str, Any]] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > self.max_bytes:
                    self._buffer.clear()
                    raise FrameTooLargeError(
                        f"frame exceeded {self.max_bytes} bytes without a newline"
                    )
                return frames
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if len(line) > self.max_bytes:
                raise FrameTooLargeError(
                    f"frame is {len(line)} bytes (limit {self.max_bytes})"
                )
            if not line.strip():
                continue  # bare keep-alive newline
            frames.append(decode_frame(line))


# --------------------------------------------------------------------- #
# envelopes
# --------------------------------------------------------------------- #


def _require_str(payload: dict, key: str, optional: bool = False) -> str | None:
    value = payload.get(key)
    if value is None and optional:
        return None
    if not isinstance(value, str) or not value:
        raise MalformedFrameError(f"envelope field {key!r} must be a non-empty string")
    return value


def _require_id(payload: dict) -> int:
    value = payload.get("id")
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise MalformedFrameError("envelope field 'id' must be a non-negative integer")
    return value


@dataclass(frozen=True)
class Request:
    """One client request: a verb plus its payload, tagged with an id.

    ``trace`` is the optional distributed-tracing capsule
    (:meth:`repro.obs.trace.TraceContext.to_dict`): a caller that wants
    this request's server-side spans stitched into its own trace sends
    one.  The field is strictly additive — servers that predate it ignore
    unknown envelope keys, and a malformed capsule degrades to untraced
    rather than erroring, so tracing can never fail a request.
    """

    id: int
    verb: str
    session: str | None = None
    payload: dict[str, Any] = field(default_factory=dict)
    trace: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """The request's wire form."""
        wire: dict[str, Any] = {"id": self.id, "verb": self.verb}
        if self.session is not None:
            wire["session"] = self.session
        if self.payload:
            wire["payload"] = self.payload
        if self.trace is not None:
            wire["trace"] = self.trace
        return wire

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Request":
        """Validate and rebuild a request envelope from wire data.

        Raises :class:`repro.errors.MalformedFrameError` for structural
        problems and :class:`repro.errors.UnknownVerbError` for a
        well-formed envelope naming a verb outside :data:`VERBS` — the
        distinction matters to the front door, which can still answer an
        unknown verb *by id* but must drop an envelope with no usable id.
        """
        request_id = _require_id(payload)
        verb = _require_str(payload, "verb")
        body = payload.get("payload", {})
        if not isinstance(body, dict):
            raise MalformedFrameError("request 'payload' must be an object")
        session = _require_str(payload, "session", optional=True)
        if verb not in VERBS:
            raise UnknownVerbError(f"unknown verb {verb!r} (request id {request_id})")
        trace = payload.get("trace")
        if not isinstance(trace, dict):
            trace = None  # absent or mangled: untraced, never an error
        return cls(id=request_id, verb=verb, session=session, payload=body, trace=trace)


@dataclass(frozen=True)
class Response:
    """One server response: success payload or a typed error, by request id."""

    id: int
    ok: bool
    payload: dict[str, Any] = field(default_factory=dict)
    error: dict[str, str] | None = None

    def to_dict(self) -> dict[str, Any]:
        """The response's wire form."""
        wire: dict[str, Any] = {"id": self.id, "ok": self.ok}
        if self.ok:
            wire["payload"] = self.payload
        else:
            wire["error"] = self.error if self.error is not None else {}
        return wire

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Response":
        """Validate and rebuild a response envelope from wire data."""
        response_id = _require_id(payload)
        ok = payload.get("ok")
        if not isinstance(ok, bool):
            raise MalformedFrameError("response field 'ok' must be a boolean")
        if ok:
            body = payload.get("payload", {})
            if not isinstance(body, dict):
                raise MalformedFrameError("response 'payload' must be an object")
            return cls(id=response_id, ok=True, payload=body)
        error = payload.get("error")
        if not isinstance(error, dict):
            raise MalformedFrameError("error response must carry an 'error' object")
        return cls(id=response_id, ok=False, error=error)

    @classmethod
    def success(cls, request_id: int, payload: dict[str, Any] | None = None) -> "Response":
        """A success response for ``request_id``."""
        return cls(id=request_id, ok=True, payload=payload if payload is not None else {})

    @classmethod
    def failure(cls, request_id: int, exc: BaseException) -> "Response":
        """A typed error response for ``request_id``."""
        return cls(id=request_id, ok=False, error=error_payload(exc))

    def raise_if_error(self) -> dict[str, Any]:
        """Return the payload, or raise the typed error this response carries."""
        if self.ok:
            return self.payload
        raise exception_from_payload(self.error)
