"""The front door: an asyncio TCP server over the shard fleet.

:class:`ShardedServer` accepts connections, decodes newline-delimited
JSON frames (:mod:`repro.serving.protocol`), validates each request
envelope, and routes session-scoped verbs to the pinned shard via
:class:`repro.serving.shards.ShardManager`.  Responses stream back
per-connection in completion order — slow gestures from one session never
head-of-line-block another session sharing the socket.

The front door is also the shed layer: a server-wide bound on in-flight
requests reuses the existing :class:`repro.errors.AdmissionError`
contract, so overload turns into an immediate typed refusal on the wire
(exactly like the in-process scheduler's ``max_pending``) instead of
unbounded queueing.  And it is the *armor* layer: every decode failure is
answered (or, with no usable request id, the connection dropped) at the
boundary — hostile bytes never reach a worker process, which is what the
fuzz suite in ``tests/test_serving_protocol.py`` pins down.

The asyncio loop runs on a background thread so blocking clients and
tests can drive the server without owning an event loop.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import (
    AdmissionError,
    DbTouchError,
    MalformedFrameError,
    ProtocolError,
    ServiceError,
)
from repro.obs.registry import TelemetryRegistry, merge_numeric, render_exposition
from repro.obs.trace import RootSpan, TraceConfig, TraceContext, Tracer
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    Request,
    Response,
    encode_frame,
)
from repro.serving.shards import ShardManager, shard_for_session
from repro.serving.worker import WorkerConfig


@dataclass(frozen=True)
class ShardedServerConfig:
    """Tuning knobs of the front door.

    Attributes
    ----------
    host / port:
        Listen address; port ``0`` asks the OS for a free port (read the
        bound one back from :attr:`ShardedServer.port`).
    num_workers:
        Shard (worker process) count.
    worker:
        Per-worker config, shipped to every shard at spawn.
    max_frame_bytes:
        Per-frame byte bound, both directions.
    max_inflight:
        Server-wide cap on requests admitted but not yet answered — the
        front-door shed layer.  ``None`` disables shedding here (the
        per-worker scheduler admission still applies).
    tracing:
        Front-door :class:`repro.obs.trace.TraceConfig` (``None`` serves
        untraced).  When set, every forwarded ``execute``/``run-script``/
        ``append`` opens a front-door root span and ships its context to
        the shard on the pipe payload's ``trace`` key, so the ``telemetry``
        verb can stitch one distributed trace per gesture.  The config's
        ``site`` is overridden to ``"front-door"``; enable the *workers'*
        tracers via :attr:`WorkerConfig.trace_sample_rate`.
    """

    host: str = "127.0.0.1"
    port: int = 0
    num_workers: int = 4
    worker: WorkerConfig = WorkerConfig()
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    max_inflight: int | None = 1024
    start_method: str | None = None
    tracing: TraceConfig | None = None


#: Verbs the front door forwards to a shard, keyed to the worker-side op.
_FORWARDED_OPS = {
    "open-session": "open",
    "close-session": "close",
    "execute": "execute",
    "run-script": "run",
    "load-column": "load-column",
    "append": "append",
}

#: Forwarded verbs that open a front-door root span when tracing is on.
_TRACED_VERBS = frozenset({"execute", "run-script", "append"})


class ShardedServer:
    """Accepts TCP clients and serves them off the worker fleet."""

    def __init__(self, config: ShardedServerConfig | None = None) -> None:
        self.config = config if config is not None else ShardedServerConfig()
        # fork the whole fleet before the asyncio loop thread exists
        self.shards = ShardManager(
            num_workers=self.config.num_workers,
            config=self.config.worker,
            start_method=self.config.start_method,
        )
        self.telemetry = TelemetryRegistry()
        if self.config.tracing is not None:
            self.tracer = Tracer(
                replace(self.config.tracing, site="front-door"), registry=self.telemetry
            )
        else:
            self.tracer = Tracer(TraceConfig(enabled=False))
        self.telemetry.register_collector("frontdoor", self._frontdoor_metrics)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._port: int | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._lock = threading.Lock()
        self._inflight = 0
        self._draining = False
        self._idle = threading.Event()
        self._idle.set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound listen port (valid after :meth:`start`)."""
        if self._port is None:
            raise ServiceError("server is not started")
        return self._port

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return (self.config.host, self.port)

    def start(self, timeout: float = 30.0) -> "ShardedServer":
        """Bind the listen socket on a background event-loop thread."""
        if self._thread is not None:
            raise ServiceError("server is already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-sharded-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=timeout):
            raise ServiceError("server failed to start in time")
        if self._start_error is not None:
            raise ServiceError(f"server failed to bind: {self._start_error}")
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def bootstrap() -> None:
            try:
                self._server = await asyncio.start_server(
                    self._serve_connection, self.config.host, self.config.port
                )
                self._port = self._server.sockets[0].getsockname()[1]
            except OSError as exc:
                self._start_error = exc
            finally:
                self._started.set()

        loop.run_until_complete(bootstrap())
        if self._start_error is None:
            loop.run_forever()
        # cancel whatever the stop left behind, then close down cleanly
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(asyncio.gather(*pending, return_exceptions=True))
        loop.close()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting work, finish what is in flight, drain every shard.

        Returns ``True`` when every admitted request was answered and
        every shard finished its queued gestures within ``timeout``.
        """
        with self._lock:
            self._draining = True
            if self._inflight == 0:
                self._idle.set()
        finished = self._idle.wait(timeout=timeout)
        return self.shards.drain(timeout=timeout) and finished

    def shutdown(self) -> None:
        """Close the listen socket, stop the loop, stop every worker."""
        loop = self._loop
        if loop is not None and loop.is_running():

            def stop() -> None:
                if self._server is not None:
                    self._server.close()
                loop.stop()

            loop.call_soon_threadsafe(stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.shards.shutdown()

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown()
        return False

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _admit(self) -> None:
        with self._lock:
            if self._draining:
                raise AdmissionError("server is draining; no new work admitted")
            limit = self.config.max_inflight
            if limit is not None and self._inflight >= limit:
                raise AdmissionError(
                    f"server is at its in-flight limit ({limit}); retry later"
                )
            self._inflight += 1
            self._idle.clear()

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    @property
    def inflight(self) -> int:
        """Requests admitted but not yet answered."""
        with self._lock:
            return self._inflight

    def _frontdoor_metrics(self) -> dict[str, int]:
        """The front door's own gauges (a telemetry collector)."""
        return {
            "inflight": self.inflight,
            "num_workers": self.shards.num_workers,
            "alive_workers": len(self.shards.alive_workers),
        }

    # ------------------------------------------------------------------ #
    # per-connection protocol loop
    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(max_bytes=self.config.max_frame_bytes)
        write_lock = asyncio.Lock()  # responses interleave from many tasks
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # undecodable stream: answer once (id 0), then hang up —
                    # resynchronizing inside a corrupt byte stream is a lie
                    await self._send(writer, write_lock, Response.failure(0, exc))
                    return
                for frame in frames:
                    if not await self._handle_frame(frame, writer, write_lock):
                        return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            return  # shutdown cancelled us mid-read: close quietly below
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, response: Response
    ) -> None:
        try:
            data = encode_frame(response.to_dict(), max_bytes=self.config.max_frame_bytes)
        except ProtocolError as exc:
            # a response too large for the wire degrades to a typed error
            data = encode_frame(
                Response.failure(response.id, exc).to_dict(),
                max_bytes=self.config.max_frame_bytes,
            )
        async with write_lock:
            writer.write(data)
            await writer.drain()

    async def _handle_frame(
        self, frame: dict, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> bool:
        """Answer one decoded frame; ``False`` drops the connection."""
        try:
            request = Request.from_dict(frame)
        except DbTouchError as exc:
            # a malformed envelope may still carry a usable id to answer on
            request_id = frame.get("id")
            if not isinstance(request_id, int) or isinstance(request_id, bool) or request_id < 0:
                await self._send(writer, write_lock, Response.failure(0, exc))
                return False  # no id the client could match: drop the line
            await self._send(writer, write_lock, Response.failure(request_id, exc))
            return True
        await self._handle_request(request, writer, write_lock)
        return True

    async def _handle_request(
        self, request: Request, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if request.verb == "hello":
                await self._send(
                    writer, write_lock, Response.success(request.id, self._hello_payload())
                )
                return
            if request.verb == "stats":
                self._admit()
                try:
                    stats = await loop.run_in_executor(None, self.shards.stats)
                finally:
                    self._release()
                await self._send(writer, write_lock, Response.success(request.id, stats))
                return
            if request.verb == "telemetry":
                self._admit()
                try:
                    report = await loop.run_in_executor(None, self._telemetry_report)
                finally:
                    self._release()
                await self._send(writer, write_lock, Response.success(request.id, report))
                return
            if request.verb == "drain":
                timeout = request.payload.get("timeout")
                drained = await loop.run_in_executor(
                    None, lambda: self.drain(None if timeout is None else float(timeout))
                )
                await self._send(
                    writer, write_lock, Response.success(request.id, {"drained": drained})
                )
                return
            # everything else is session-scoped and runs on a shard
            op = _FORWARDED_OPS[request.verb]
            if request.session is None:
                raise MalformedFrameError(f"verb {request.verb!r} needs a 'session'")
            if request.verb == "run-script" and bool(request.payload.get("stream", False)):
                self._admit()
                try:
                    self._stream_script(request, writer, write_lock, loop)
                except BaseException:
                    self._release()
                    raise
                return
            self._admit()
            payload, root = self._traced_payload(request)
            try:
                future = self.shards.submit(op, request.session, payload)
            except BaseException as exc:
                if root is not None:
                    root.finish(error=exc)
                self._release()
                raise
            self._stream_back(future, request.id, writer, write_lock, loop, root=root)
        except DbTouchError as exc:
            await self._send(writer, write_lock, Response.failure(request.id, exc))

    def _traced_payload(self, request: Request) -> tuple[dict, RootSpan | None]:
        """The forwarded payload plus the front-door root span, if any.

        A traced verb opens a root here (continuing the client's capsule
        when one rode in on the request) and ships the root's own context
        to the shard, so the worker's spans attach *under* the front-door
        span.  Untraced (or non-gesture) verbs forward the client capsule
        untouched — the front door never blocks someone else's trace.
        """
        root = None
        capsule = request.trace
        if request.verb in _TRACED_VERBS:
            root = self.tracer.begin(
                request.verb,
                ctx=TraceContext.from_dict(request.trace),
                activate=False,
                session=request.session,
            )
            if root is not None:
                capsule = root.context().to_dict()
        if capsule is None:
            return request.payload, root
        payload = dict(request.payload)
        payload["trace"] = capsule
        return payload, root

    def _telemetry_report(self) -> dict[str, Any]:
        """Fleet-wide telemetry: merged metrics, drained traces, exposition.

        ``metrics`` key-wise sums every worker's snapshot with the front
        door's own (:func:`repro.obs.registry.merge_numeric`), ``traces``
        concatenates every site's drained partials (stitch them client-side
        with :func:`repro.obs.trace.stitch_traces`), and ``exposition`` is
        the merged view in Prometheus text format.  Per-worker detail stays
        under ``workers``.
        """
        fleet = self.shards.telemetry()
        front_metrics = self.telemetry.snapshot()
        recorder = self.tracer.recorder
        front_traces = [t.to_dict() for t in recorder.drain()] if recorder else []
        front_slow = [t.to_dict() for t in recorder.drain_slow()] if recorder else []
        merged = merge_numeric([fleet["metrics"], front_metrics])
        return {
            "num_workers": fleet["num_workers"],
            "alive_workers": fleet["alive_workers"],
            "metrics": merged,
            "exposition": render_exposition(merged),
            "traces": fleet["traces"] + front_traces,
            "slow_traces": fleet["slow_traces"] + front_slow,
            "front_door": {
                "metrics": front_metrics,
                "exposition": self.telemetry.exposition(),
            },
            "workers": fleet["workers"],
        }

    def _stream_back(
        self,
        future: Future,
        request_id: int,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        loop: asyncio.AbstractEventLoop,
        root: RootSpan | None = None,
    ) -> None:
        """Forward a shard future's outcome to the connection when it lands.

        The callback fires on a shard reader thread; the actual socket
        write is marshalled back onto the event loop, so many outstanding
        gestures stream back in completion order without blocking the
        connection's read loop.
        """

        def deliver(done: Future) -> None:
            self._release()
            try:
                payload = done.result()
            except Exception as exc:  # noqa: BLE001 - typed onto the wire
                if root is not None:
                    root.finish(error=exc)
                response = Response.failure(request_id, exc)
            else:
                if root is not None:
                    root.finish()
                response = Response.success(request_id, payload)
            try:
                asyncio.run_coroutine_threadsafe(
                    self._send(writer, write_lock, response), loop
                )
            except RuntimeError:
                pass  # loop already closed mid-shutdown: nobody to answer

        future.add_done_callback(deliver)

    def _stream_script(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """Stream one partial frame per completed gesture of a ``run-script``.

        The script is decomposed into per-command ``execute`` ops on the
        session's shard — same session, same FIFO queue, so gesture order
        (and outcome parity with a non-streamed run) is preserved.  Each
        completed gesture streams back as a success frame tagged
        ``partial`` with its sequence number, and the run closes with a
        ``done`` frame; the first failing gesture instead closes the run
        with that typed error, after which later results are dropped.
        One front-door admission covers the whole streamed run.
        """
        script = request.payload.get("script")
        commands = script.get("commands") if isinstance(script, dict) else None
        if not isinstance(commands, list):
            raise MalformedFrameError(
                "run-script needs a 'script' object with a 'commands' list"
            )
        total = len(commands)
        state = {"closed": False}
        state_lock = threading.Lock()
        # one front-door root covers the whole streamed script: every
        # per-command span on the shard attaches under it, so a script is
        # one distributed trace, not N
        root = self.tracer.begin(
            "run-script",
            ctx=TraceContext.from_dict(request.trace),
            activate=False,
            session=request.session,
            commands=total,
        )
        capsule = root.context().to_dict() if root is not None else request.trace

        def post(response: Response) -> None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self._send(writer, write_lock, response), loop
                )
            except RuntimeError:
                pass  # loop already closed mid-shutdown: nobody to answer

        def close(response: Response, error: BaseException | None = None) -> None:
            with state_lock:
                if state["closed"]:
                    return
                state["closed"] = True
            if root is not None:
                root.finish(error=error)
            self._release()
            post(response)

        if total == 0:
            close(Response.success(request.id, {"done": True, "total": 0}))
            return

        def deliver(seq: int):
            def callback(done: Future) -> None:
                try:
                    payload = done.result()
                except Exception as exc:  # noqa: BLE001 - typed onto the wire
                    close(Response.failure(request.id, exc), error=exc)
                    return
                with state_lock:
                    if state["closed"]:
                        return
                post(
                    Response.success(
                        request.id,
                        {
                            "partial": True,
                            "seq": seq,
                            "envelope": payload.get("envelope"),
                        },
                    )
                )
                if seq == total - 1:
                    close(Response.success(request.id, {"done": True, "total": total}))

            return callback

        try:
            for seq, command in enumerate(commands):
                payload: dict[str, Any] = {"command": command}
                if capsule is not None:
                    payload["trace"] = capsule
                future = self.shards.submit("execute", request.session, payload)
                future.add_done_callback(deliver(seq))
        except DbTouchError as exc:
            close(Response.failure(request.id, exc), error=exc)

    def _hello_payload(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "num_workers": self.shards.num_workers,
            "alive_workers": self.shards.alive_workers,
            "max_frame_bytes": self.config.max_frame_bytes,
        }


__all__ = ["ShardedServer", "ShardedServerConfig", "shard_for_session"]
