"""The front door: an asyncio TCP server over the shard fleet.

:class:`ShardedServer` accepts connections, decodes newline-delimited
JSON frames (:mod:`repro.serving.protocol`), validates each request
envelope, and routes session-scoped verbs to the pinned shard via
:class:`repro.serving.shards.ShardManager`.  Responses stream back
per-connection in completion order — slow gestures from one session never
head-of-line-block another session sharing the socket.

The front door is also the shed layer: a server-wide bound on in-flight
requests reuses the existing :class:`repro.errors.AdmissionError`
contract, so overload turns into an immediate typed refusal on the wire
(exactly like the in-process scheduler's ``max_pending``) instead of
unbounded queueing.  And it is the *armor* layer: every decode failure is
answered (or, with no usable request id, the connection dropped) at the
boundary — hostile bytes never reach a worker process, which is what the
fuzz suite in ``tests/test_serving_protocol.py`` pins down.

The asyncio loop runs on a background thread so blocking clients and
tests can drive the server without owning an event loop.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    AdmissionError,
    DbTouchError,
    MalformedFrameError,
    ProtocolError,
    ServiceError,
)
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    Request,
    Response,
    encode_frame,
)
from repro.serving.shards import ShardManager, shard_for_session
from repro.serving.worker import WorkerConfig


@dataclass(frozen=True)
class ShardedServerConfig:
    """Tuning knobs of the front door.

    Attributes
    ----------
    host / port:
        Listen address; port ``0`` asks the OS for a free port (read the
        bound one back from :attr:`ShardedServer.port`).
    num_workers:
        Shard (worker process) count.
    worker:
        Per-worker config, shipped to every shard at spawn.
    max_frame_bytes:
        Per-frame byte bound, both directions.
    max_inflight:
        Server-wide cap on requests admitted but not yet answered — the
        front-door shed layer.  ``None`` disables shedding here (the
        per-worker scheduler admission still applies).
    """

    host: str = "127.0.0.1"
    port: int = 0
    num_workers: int = 4
    worker: WorkerConfig = WorkerConfig()
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    max_inflight: int | None = 1024
    start_method: str | None = None


#: Verbs the front door forwards to a shard, keyed to the worker-side op.
_FORWARDED_OPS = {
    "open-session": "open",
    "close-session": "close",
    "execute": "execute",
    "run-script": "run",
    "load-column": "load-column",
    "append": "append",
}


class ShardedServer:
    """Accepts TCP clients and serves them off the worker fleet."""

    def __init__(self, config: ShardedServerConfig | None = None) -> None:
        self.config = config if config is not None else ShardedServerConfig()
        # fork the whole fleet before the asyncio loop thread exists
        self.shards = ShardManager(
            num_workers=self.config.num_workers,
            config=self.config.worker,
            start_method=self.config.start_method,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._port: int | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._lock = threading.Lock()
        self._inflight = 0
        self._draining = False
        self._idle = threading.Event()
        self._idle.set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound listen port (valid after :meth:`start`)."""
        if self._port is None:
            raise ServiceError("server is not started")
        return self._port

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return (self.config.host, self.port)

    def start(self, timeout: float = 30.0) -> "ShardedServer":
        """Bind the listen socket on a background event-loop thread."""
        if self._thread is not None:
            raise ServiceError("server is already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-sharded-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=timeout):
            raise ServiceError("server failed to start in time")
        if self._start_error is not None:
            raise ServiceError(f"server failed to bind: {self._start_error}")
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def bootstrap() -> None:
            try:
                self._server = await asyncio.start_server(
                    self._serve_connection, self.config.host, self.config.port
                )
                self._port = self._server.sockets[0].getsockname()[1]
            except OSError as exc:
                self._start_error = exc
            finally:
                self._started.set()

        loop.run_until_complete(bootstrap())
        if self._start_error is None:
            loop.run_forever()
        # cancel whatever the stop left behind, then close down cleanly
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(asyncio.gather(*pending, return_exceptions=True))
        loop.close()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting work, finish what is in flight, drain every shard.

        Returns ``True`` when every admitted request was answered and
        every shard finished its queued gestures within ``timeout``.
        """
        with self._lock:
            self._draining = True
            if self._inflight == 0:
                self._idle.set()
        finished = self._idle.wait(timeout=timeout)
        return self.shards.drain(timeout=timeout) and finished

    def shutdown(self) -> None:
        """Close the listen socket, stop the loop, stop every worker."""
        loop = self._loop
        if loop is not None and loop.is_running():

            def stop() -> None:
                if self._server is not None:
                    self._server.close()
                loop.stop()

            loop.call_soon_threadsafe(stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.shards.shutdown()

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown()
        return False

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _admit(self) -> None:
        with self._lock:
            if self._draining:
                raise AdmissionError("server is draining; no new work admitted")
            limit = self.config.max_inflight
            if limit is not None and self._inflight >= limit:
                raise AdmissionError(
                    f"server is at its in-flight limit ({limit}); retry later"
                )
            self._inflight += 1
            self._idle.clear()

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    @property
    def inflight(self) -> int:
        """Requests admitted but not yet answered."""
        with self._lock:
            return self._inflight

    # ------------------------------------------------------------------ #
    # per-connection protocol loop
    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(max_bytes=self.config.max_frame_bytes)
        write_lock = asyncio.Lock()  # responses interleave from many tasks
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # undecodable stream: answer once (id 0), then hang up —
                    # resynchronizing inside a corrupt byte stream is a lie
                    await self._send(writer, write_lock, Response.failure(0, exc))
                    return
                for frame in frames:
                    if not await self._handle_frame(frame, writer, write_lock):
                        return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            return  # shutdown cancelled us mid-read: close quietly below
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, response: Response
    ) -> None:
        try:
            data = encode_frame(response.to_dict(), max_bytes=self.config.max_frame_bytes)
        except ProtocolError as exc:
            # a response too large for the wire degrades to a typed error
            data = encode_frame(
                Response.failure(response.id, exc).to_dict(),
                max_bytes=self.config.max_frame_bytes,
            )
        async with write_lock:
            writer.write(data)
            await writer.drain()

    async def _handle_frame(
        self, frame: dict, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> bool:
        """Answer one decoded frame; ``False`` drops the connection."""
        try:
            request = Request.from_dict(frame)
        except DbTouchError as exc:
            # a malformed envelope may still carry a usable id to answer on
            request_id = frame.get("id")
            if not isinstance(request_id, int) or isinstance(request_id, bool) or request_id < 0:
                await self._send(writer, write_lock, Response.failure(0, exc))
                return False  # no id the client could match: drop the line
            await self._send(writer, write_lock, Response.failure(request_id, exc))
            return True
        await self._handle_request(request, writer, write_lock)
        return True

    async def _handle_request(
        self, request: Request, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if request.verb == "hello":
                await self._send(
                    writer, write_lock, Response.success(request.id, self._hello_payload())
                )
                return
            if request.verb == "stats":
                self._admit()
                try:
                    stats = await loop.run_in_executor(None, self.shards.stats)
                finally:
                    self._release()
                await self._send(writer, write_lock, Response.success(request.id, stats))
                return
            if request.verb == "drain":
                timeout = request.payload.get("timeout")
                drained = await loop.run_in_executor(
                    None, lambda: self.drain(None if timeout is None else float(timeout))
                )
                await self._send(
                    writer, write_lock, Response.success(request.id, {"drained": drained})
                )
                return
            # everything else is session-scoped and runs on a shard
            op = _FORWARDED_OPS[request.verb]
            if request.session is None:
                raise MalformedFrameError(f"verb {request.verb!r} needs a 'session'")
            if request.verb == "run-script" and bool(request.payload.get("stream", False)):
                self._admit()
                try:
                    self._stream_script(request, writer, write_lock, loop)
                except BaseException:
                    self._release()
                    raise
                return
            self._admit()
            future = self.shards.submit(op, request.session, request.payload)
            self._stream_back(future, request.id, writer, write_lock, loop)
        except DbTouchError as exc:
            await self._send(writer, write_lock, Response.failure(request.id, exc))

    def _stream_back(
        self,
        future: Future,
        request_id: int,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """Forward a shard future's outcome to the connection when it lands.

        The callback fires on a shard reader thread; the actual socket
        write is marshalled back onto the event loop, so many outstanding
        gestures stream back in completion order without blocking the
        connection's read loop.
        """

        def deliver(done: Future) -> None:
            self._release()
            try:
                payload = done.result()
            except Exception as exc:  # noqa: BLE001 - typed onto the wire
                response = Response.failure(request_id, exc)
            else:
                response = Response.success(request_id, payload)
            try:
                asyncio.run_coroutine_threadsafe(
                    self._send(writer, write_lock, response), loop
                )
            except RuntimeError:
                pass  # loop already closed mid-shutdown: nobody to answer

        future.add_done_callback(deliver)

    def _stream_script(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """Stream one partial frame per completed gesture of a ``run-script``.

        The script is decomposed into per-command ``execute`` ops on the
        session's shard — same session, same FIFO queue, so gesture order
        (and outcome parity with a non-streamed run) is preserved.  Each
        completed gesture streams back as a success frame tagged
        ``partial`` with its sequence number, and the run closes with a
        ``done`` frame; the first failing gesture instead closes the run
        with that typed error, after which later results are dropped.
        One front-door admission covers the whole streamed run.
        """
        script = request.payload.get("script")
        commands = script.get("commands") if isinstance(script, dict) else None
        if not isinstance(commands, list):
            raise MalformedFrameError(
                "run-script needs a 'script' object with a 'commands' list"
            )
        total = len(commands)
        state = {"closed": False}
        state_lock = threading.Lock()

        def post(response: Response) -> None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self._send(writer, write_lock, response), loop
                )
            except RuntimeError:
                pass  # loop already closed mid-shutdown: nobody to answer

        def close(response: Response) -> None:
            with state_lock:
                if state["closed"]:
                    return
                state["closed"] = True
            self._release()
            post(response)

        if total == 0:
            close(Response.success(request.id, {"done": True, "total": 0}))
            return

        def deliver(seq: int):
            def callback(done: Future) -> None:
                try:
                    payload = done.result()
                except Exception as exc:  # noqa: BLE001 - typed onto the wire
                    close(Response.failure(request.id, exc))
                    return
                with state_lock:
                    if state["closed"]:
                        return
                post(
                    Response.success(
                        request.id,
                        {
                            "partial": True,
                            "seq": seq,
                            "envelope": payload.get("envelope"),
                        },
                    )
                )
                if seq == total - 1:
                    close(Response.success(request.id, {"done": True, "total": total}))

            return callback

        try:
            for seq, command in enumerate(commands):
                future = self.shards.submit(
                    "execute", request.session, {"command": command}
                )
                future.add_done_callback(deliver(seq))
        except DbTouchError as exc:
            close(Response.failure(request.id, exc))

    def _hello_payload(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "num_workers": self.shards.num_workers,
            "alive_workers": self.shards.alive_workers,
            "max_frame_bytes": self.config.max_frame_bytes,
        }


__all__ = ["ShardedServer", "ShardedServerConfig", "shard_for_session"]
