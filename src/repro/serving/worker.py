"""The shard worker: one process, one MultiSessionServer, one pipe.

A worker process is the unit of CPU scale-out in the sharded serving
topology.  :func:`worker_main` runs in a child process spawned by
:class:`repro.serving.shards.ShardManager` and does three things:

* **attach the published snapshot read-only** — the
  :class:`repro.persist.snapshot.StoreCatalog` opened via
  :meth:`~repro.persist.snapshot.StoreCatalog.open_read_only` maps the
  same on-disk chunk files every sibling worker maps (the ILDG "publish
  once, attach everywhere" pattern), so N workers share base data through
  the page cache instead of holding N copies;
* **host a scheduler-mode** :class:`repro.service.MultiSessionServer` —
  sessions pinned to this worker run concurrently on its thread pool with
  the usual per-session FIFO and admission guarantees;
* **serve the command pipe** — requests arrive as plain dicts over a
  :mod:`multiprocessing` pipe, gesture work is queued on the scheduler
  (the pipe loop never blocks on a gesture), and responses are written
  back from completion callbacks under a send lock, tagged with the
  request id so the parent can match them out of order.

Every failure path answers with a typed error payload
(:func:`repro.serving.protocol.error_payload`); the worker loop itself
only exits on an explicit ``stop`` or a closed pipe, so malformed or
hostile requests can never take the process down with them.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any

from repro.core.commands import GestureCommand, GestureScript
from repro.core.kernel import KernelConfig
from repro.core.scheduler import SchedulerConfig
from repro.errors import DbTouchError, MalformedFrameError, UnknownVerbError
from repro.obs.trace import TraceConfig
from repro.persist.snapshot import StoreCatalog
from repro.serving.protocol import error_payload
from repro.service import LocalExplorationService, MultiSessionServer

#: Pipe operations a worker understands (the pipe-side protocol mirror).
WORKER_OPS = frozenset(
    {
        "open",
        "close",
        "execute",
        "run",
        "load-column",
        "append",
        "stats",
        "telemetry",
        "drain",
        "ping",
        "stop",
    }
)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to build its serving stack.

    The config crosses the process boundary at spawn time, so it holds
    only picklable scalars — the snapshot is referenced by path and
    attached inside the worker, never shipped.

    Attributes
    ----------
    snapshot_path:
        Root directory of a published :class:`StoreCatalog` to attach
        read-only as shared base storage (``None`` serves without one).
    scheduler_workers / max_pending / max_session_pending:
        The worker-local :class:`repro.core.scheduler.SchedulerConfig`
        knobs; admission here is the per-shard backstop behind the front
        door's shed layer.
    result_retention:
        Per-session result-stream bound (``None`` leaves streams
        unbounded).
    latency_budget_s:
        Pin for :attr:`repro.core.kernel.KernelConfig.latency_budget_s`.
        The default pins it effectively-infinite so outcome counters stay
        a pure function of the command sequence — the cross-process parity
        contract; pass ``None`` to keep the kernel's adaptive default.
    shared_index:
        Whether sessions on this worker share one adaptive
        :class:`repro.indexing.manager.IndexManager`.
    cache_bytes:
        Chunk-cache byte budget for the attached snapshot's store.
    trace_sample_rate:
        ``None`` (the default) serves with tracing disabled — the no-op
        spans cost nothing measurable.  A float in ``(0, 1]`` enables the
        worker's tracer at that deterministic sample rate; incoming
        ``trace`` capsules from the front door are honored either way the
        tracer is enabled.
    slow_trace_threshold_s / flight_recorder_capacity:
        The worker-local flight recorder's slow-log threshold and ring
        size (drained by the ``telemetry`` op).
    speculation_checkpoint:
        Optional path to a mined
        :class:`repro.mining.model.GestureTransitionModel` checkpoint.
        The worker loads it at build time and serves with one shared
        :class:`repro.mining.policy.SpeculativePolicy`, so every shard of
        a fleet speculates from the same offline mining pass; its hit/miss
        counters ride the ``stats`` and ``telemetry`` verbs.
    """

    snapshot_path: str | None = None
    scheduler_workers: int = 4
    max_pending: int = 4096
    max_session_pending: int = 512
    result_retention: int | None = 4096
    latency_budget_s: float | None = 1e6
    shared_index: bool = False
    cache_bytes: int = 64 << 20
    trace_sample_rate: float | None = None
    slow_trace_threshold_s: float | None = None
    flight_recorder_capacity: int = 64
    speculation_checkpoint: str | None = None


def _build_server(config: WorkerConfig, worker_id: int = 0) -> MultiSessionServer:
    """Construct the worker's serving stack from its config."""

    def factory() -> LocalExplorationService:
        kernel_config = None
        if config.latency_budget_s is not None:
            kernel_config = KernelConfig(latency_budget_s=config.latency_budget_s)
        return LocalExplorationService(config=kernel_config)

    tracing = None
    if config.trace_sample_rate is not None:
        tracing = TraceConfig(
            sample_rate=config.trace_sample_rate,
            slow_threshold_s=config.slow_trace_threshold_s,
            flight_recorder_capacity=config.flight_recorder_capacity,
            site=f"worker-{worker_id}",
        )
    server = MultiSessionServer(
        service_factory=factory,
        scheduler=SchedulerConfig(
            num_workers=config.scheduler_workers,
            max_pending=config.max_pending,
            max_session_pending=config.max_session_pending,
            result_retention=config.result_retention,
        ),
        shared_index=config.shared_index,
        tracing=tracing,
        speculation=config.speculation_checkpoint,
    )
    if config.snapshot_path is not None:
        snapshot = StoreCatalog.open_read_only(
            config.snapshot_path, cache_bytes=config.cache_bytes
        )
        server.load_shared_store(snapshot)
    return server


class _WorkerRuntime:
    """The in-process state of one worker: server, pipe, send lock."""

    def __init__(self, conn: Connection, worker_id: int, config: WorkerConfig) -> None:
        self.conn = conn
        self.worker_id = worker_id
        self.config = config
        self.server = _build_server(config, worker_id)
        self._send_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # responses
    # ------------------------------------------------------------------ #
    def _send(self, message: dict[str, Any]) -> None:
        # completion callbacks run on scheduler worker threads while the
        # pipe loop may be answering an inline op: one pipe, one lock
        with self._send_lock:
            try:
                self.conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                pass  # parent is gone; the loop will notice EOF and exit

    def _reply(self, request_id: int, payload: dict[str, Any]) -> None:
        self._send({"id": request_id, "ok": True, "payload": payload})

    def _reply_error(self, request_id: int, exc: BaseException) -> None:
        self._send({"id": request_id, "ok": False, "error": error_payload(exc)})

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def _op_open(self, request_id: int, session: str, payload: dict) -> None:
        self.server.open_session(session)
        self._reply(request_id, {"session": session, "worker": self.worker_id})

    def _op_close(self, request_id: int, session: str, payload: dict) -> None:
        metrics = self.server.close_session(session)
        self._reply(request_id, {"counters": metrics.counters_snapshot()})

    def _op_execute(self, request_id: int, session: str, payload: dict) -> None:
        command = GestureCommand.from_dict(_require_dict(payload, "command"))
        future = self.server.submit(session, command, trace=_trace_of(payload))

        def deliver(done: Future) -> None:
            try:
                envelope = done.result()
            except BaseException as exc:  # noqa: BLE001 - typed over the pipe
                self._reply_error(request_id, exc)
            else:
                self._reply(request_id, {"envelope": envelope.to_dict()})

        future.add_done_callback(deliver)

    def _op_run(self, request_id: int, session: str, payload: dict) -> None:
        script = GestureScript.from_dict(_require_dict(payload, "script"))
        if not len(script):
            self._reply(request_id, {"envelopes": []})
            return
        futures = self.server.submit_script(session, script, trace=_trace_of(payload))

        def deliver(_: Future) -> None:
            # same session, FIFO queue: when the last future resolves,
            # every earlier one already has — collecting cannot block
            try:
                envelopes = [f.result().to_dict() for f in futures]
            except BaseException as exc:  # noqa: BLE001 - typed over the pipe
                self._reply_error(request_id, exc)
            else:
                self._reply(request_id, {"envelopes": envelopes})

        futures[-1].add_done_callback(deliver)

    def _op_load_column(self, request_id: int, session: str, payload: dict) -> None:
        name = payload.get("name")
        values = payload.get("values")
        if not isinstance(name, str) or not name:
            raise MalformedFrameError("load-column needs a non-empty 'name'")
        if not isinstance(values, list):
            raise MalformedFrameError("load-column needs a 'values' list")
        column = self.server.load_column(
            session, name, values, replace=bool(payload.get("replace", False))
        )
        self._reply(request_id, {"name": name, "rows": len(column)})

    def _op_append(self, request_id: int, session: str, payload: dict) -> None:
        name = payload.get("name")
        values = payload.get("values")
        columns = payload.get("columns")
        if not isinstance(name, str) or not name:
            raise MalformedFrameError("append needs a non-empty 'name'")
        if (values is None) == (columns is None):
            raise MalformedFrameError(
                "append needs exactly one of 'values' (column) or 'columns' (table)"
            )
        if values is not None and not isinstance(values, list):
            raise MalformedFrameError("append 'values' must be a list")
        if columns is not None and (
            not isinstance(columns, dict)
            or not all(isinstance(rows, list) for rows in columns.values())
        ):
            raise MalformedFrameError("append 'columns' must map names to lists")
        rows = self.server.append_rows(
            session, name, values=values, columns=columns, trace=_trace_of(payload)
        )
        self._reply(request_id, {"name": name, "rows": rows})

    def _op_stats(self, request_id: int, session: str | None, payload: dict) -> None:
        self._reply(
            request_id,
            {
                "worker": self.worker_id,
                "sessions": self.server.counters_report(),
                "aggregate": self.server.aggregate_metrics(),
                "scheduler": self.server.scheduler_stats(),
                "shared_objects": self.server.shared_object_names,
                "index": self.server.index_stats(),
                "storage": self.server.storage_stats(),
                "speculation": self.server.speculation_stats(),
            },
        )

    def _op_telemetry(self, request_id: int, session: str | None, payload: dict) -> None:
        self._reply(
            request_id,
            {
                "worker": self.worker_id,
                "metrics": self.server.telemetry_snapshot(),
                "exposition": self.server.exposition(),
                "traces": [trace.to_dict() for trace in self.server.drain_traces()],
                "slow_traces": [
                    trace.to_dict() for trace in self.server.drain_slow_traces()
                ],
            },
        )

    def _op_drain(self, request_id: int, session: str | None, payload: dict) -> None:
        timeout = payload.get("timeout")
        drained = self.server.drain(timeout=None if timeout is None else float(timeout))
        self._reply(request_id, {"drained": bool(drained)})

    def _op_ping(self, request_id: int, session: str | None, payload: dict) -> None:
        self._reply(request_id, {"worker": self.worker_id})

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    _SESSION_OPS = frozenset({"open", "close", "execute", "run", "load-column", "append"})

    def handle(self, message: Any) -> bool:
        """Dispatch one pipe message; ``False`` means exit the loop."""
        if not isinstance(message, dict):
            # no id to answer under: report on id 0 rather than dying
            self._reply_error(0, MalformedFrameError("pipe message must be a dict"))
            return True
        request_id = message.get("id")
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            self._reply_error(0, MalformedFrameError("pipe message needs an integer id"))
            return True
        op = message.get("op")
        session = message.get("session")
        payload = message.get("payload")
        payload = payload if isinstance(payload, dict) else {}
        try:
            if op == "stop":
                self._reply(request_id, {"stopped": True})
                return False
            if op not in WORKER_OPS:
                raise UnknownVerbError(f"worker does not understand op {op!r}")
            if op in self._SESSION_OPS and (not isinstance(session, str) or not session):
                raise MalformedFrameError(f"op {op!r} needs a 'session' string")
            handler = {
                "open": self._op_open,
                "close": self._op_close,
                "execute": self._op_execute,
                "run": self._op_run,
                "load-column": self._op_load_column,
                "append": self._op_append,
                "stats": self._op_stats,
                "telemetry": self._op_telemetry,
                "drain": self._op_drain,
                "ping": self._op_ping,
            }[op]
            handler(request_id, session, payload)
        except BaseException as exc:  # noqa: BLE001 - the worker must survive anything
            self._reply_error(request_id, exc)
        return True


def _require_dict(payload: dict, key: str) -> dict:
    value = payload.get(key)
    if not isinstance(value, dict):
        raise MalformedFrameError(f"payload field {key!r} must be an object")
    return value


def _trace_of(payload: dict) -> dict | None:
    """The optional trace capsule riding on a pipe payload (mangled: none)."""
    trace = payload.get("trace")
    return trace if isinstance(trace, dict) else None


def worker_main(conn: Connection, worker_id: int, config: WorkerConfig) -> None:
    """Entry point of a shard worker process.

    Builds the serving stack, then answers pipe requests until told to
    ``stop`` or the parent disappears (EOF on the pipe).  Setup failures
    (an unreadable snapshot, say) are reported as an error on the reserved
    id ``-1`` before exiting, so the parent can surface *why* the shard
    never came up instead of seeing a silent early EOF.
    """
    try:
        runtime = _WorkerRuntime(conn, worker_id, config)
    except BaseException as exc:  # noqa: BLE001 - surfaced to the parent
        try:
            conn.send({"id": -1, "ok": False, "error": error_payload(exc)})
        finally:
            conn.close()
        return
    # the parent waits for this to confirm the shard is serving
    runtime._send({"id": -1, "ok": True, "payload": {"worker": worker_id}})
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not runtime.handle(message):
                break
    finally:
        try:
            runtime.server.shutdown(wait=False)
        except DbTouchError:
            pass
        conn.close()
