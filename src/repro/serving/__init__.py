"""Sharded multi-process serving over a real wire protocol.

This package is the network front door of the reproduction: an asyncio
TCP server (:class:`~repro.serving.server.ShardedServer`) that speaks
newline-delimited JSON frames (:mod:`repro.serving.protocol`), pins each
exploration session to one of N worker *processes* by consistent hash of
the session id (:mod:`repro.serving.shards`), and streams typed responses
back per connection.  Each worker process
(:mod:`repro.serving.worker`) attaches the published
:class:`repro.persist.snapshot.StoreCatalog` snapshot read-only via mmap
and hosts a :class:`repro.service.MultiSessionServer` in scheduler mode —
so aggregate gesture throughput scales with cores instead of being
GIL-bound in one interpreter, while per-session
:class:`repro.core.kernel.GestureOutcome` counters stay bit-identical to
a single-process serial replay.

:class:`~repro.serving.client.ShardedClient` mirrors
:class:`repro.service.RemoteExplorationService`'s service surface, so an
:class:`repro.ExplorationSession` works unchanged over the wire.
"""

from repro.serving.client import ShardedClient
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    VERBS,
    FrameDecoder,
    Request,
    Response,
    decode_frame,
    encode_frame,
    error_payload,
    exception_from_payload,
)
from repro.serving.server import ShardedServer, ShardedServerConfig
from repro.serving.shards import ShardManager, WorkerHandle, shard_for_session
from repro.serving.worker import WorkerConfig, worker_main

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "VERBS",
    "FrameDecoder",
    "Request",
    "Response",
    "ShardManager",
    "ShardedClient",
    "ShardedServer",
    "ShardedServerConfig",
    "WorkerConfig",
    "WorkerHandle",
    "decode_frame",
    "encode_frame",
    "error_payload",
    "exception_from_payload",
    "shard_for_session",
    "worker_main",
]
