"""The blocking wire client: the service protocol over one TCP socket.

:class:`ShardedClient` implements the same service surface every other
backend does — ``execute`` / ``run`` / ``load_column`` / ``reset`` — so a
:class:`repro.ExplorationSession` drives a remote shard exactly the way
it drives a :class:`repro.service.LocalExplorationService`:

>>> client = ShardedClient(host, port, session_id="alice")   # doctest: +SKIP
>>> session = ExplorationSession(service=client)             # doctest: +SKIP
>>> session.execute(ShowColumn())                            # doctest: +SKIP

The client is deliberately simple: one socket, one request in flight at a
time, responses matched by id (the id check still matters — a drain or
stats response from an earlier timeout must not be misread as this
request's answer).  Server-side errors come back as data and are re-raised
as the same typed exceptions (:func:`repro.serving.protocol.exception_from_payload`),
so ``AdmissionError`` / ``WorkerCrashedError`` handling code works
unchanged whether the service is in-process or across the wire.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Iterable

from repro.core.commands import AppendCommand, GestureCommand, GestureScript
from repro.core.kernel import GestureOutcome
from repro.errors import MalformedFrameError, ProtocolError, ServiceError
from repro.obs.trace import current_trace_context
from repro.touchio.recognizer import GestureType
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    Request,
    Response,
    encode_frame,
)
from repro.service import OutcomeEnvelope


class ShardedClient:
    """One session's connection to a :class:`ShardedServer`.

    Parameters
    ----------
    host / port:
        The front door's listen address.
    session_id:
        The session this client speaks for; the server pins it to a shard
        by consistent hash.  Opened on the server at construction unless
        ``open_on_connect=False``.
    timeout_s:
        Socket timeout for each blocking receive.
    """

    backend = "sharded"

    def __init__(
        self,
        host: str,
        port: int,
        session_id: str = "session-0",
        timeout_s: float = 60.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        open_on_connect: bool = True,
    ) -> None:
        self.session_id = session_id
        self.max_frame_bytes = max_frame_bytes
        self._lock = threading.Lock()
        self._decoder = FrameDecoder(max_bytes=max_frame_bytes)
        self._next_id = 0
        self._closed = False
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        try:
            hello = self.hello()
            if hello.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"server speaks protocol {hello.get('protocol')!r}, "
                    f"this client speaks {PROTOCOL_VERSION}"
                )
            if open_on_connect:
                self.open_session()
        except BaseException:
            self._sock.close()
            raise

    # ------------------------------------------------------------------ #
    # the wire
    # ------------------------------------------------------------------ #
    def _round_trip(
        self, verb: str, payload: dict | None = None, session: str | None = None
    ) -> dict[str, Any]:
        """Send one request, wait for its matching response, return/raise.

        When the calling thread has an ambient active trace (see
        :mod:`repro.obs.trace`), its context rides along as the request's
        ``trace`` field, so server-side spans stitch under the caller's
        trace.  Untraced callers pay one context-variable read.
        """
        ctx = current_trace_context()
        with self._lock:
            if self._closed:
                raise ServiceError("client is closed")
            request_id = self._next_id
            self._next_id += 1
            request = Request(
                id=request_id,
                verb=verb,
                session=session,
                payload=payload if payload is not None else {},
                trace=ctx.to_dict() if ctx is not None else None,
            )
            self._sock.sendall(encode_frame(request.to_dict(), max_bytes=self.max_frame_bytes))
            while True:
                frames = self._decoder.feed(self._recv())
                for frame in frames:
                    response = Response.from_dict(frame)
                    if response.id != request_id:
                        continue  # stale response from an abandoned request
                    return response.raise_if_error()

    def _recv(self) -> bytes:
        try:
            data = self._sock.recv(64 * 1024)
        except socket.timeout as exc:
            raise ServiceError("timed out waiting for the server") from exc
        if not data:
            self._closed = True
            raise ServiceError("server closed the connection")
        return data

    def _session_call(self, verb: str, payload: dict | None = None) -> dict[str, Any]:
        return self._round_trip(verb, payload=payload, session=self.session_id)

    # ------------------------------------------------------------------ #
    # protocol verbs
    # ------------------------------------------------------------------ #
    def hello(self) -> dict[str, Any]:
        """Handshake: the server's protocol version and topology."""
        return self._round_trip("hello")

    def open_session(self) -> dict[str, Any]:
        """Open this client's session on its pinned shard."""
        return self._session_call("open-session")

    def close_session(self) -> dict[str, int]:
        """Close the session; returns its final outcome counters."""
        reply = self._session_call("close-session")
        counters = reply.get("counters", {})
        return {str(k): int(v) for k, v in counters.items()}

    def stats(self) -> dict[str, Any]:
        """Fleet-wide stats aggregated across every live shard."""
        return self._round_trip("stats")

    def telemetry(self) -> dict[str, Any]:
        """Fleet-wide telemetry: merged metrics, exposition text, and the
        drained traces/slow traces of every site (front door + workers).

        Draining is destructive by design — each call returns the traces
        completed since the last one.  Stitch the partial-trace dicts with
        :func:`repro.obs.trace.stitch_traces` to reassemble one span tree
        per gesture.
        """
        return self._round_trip("telemetry")

    def drain(self, timeout: float | None = None) -> bool:
        """Ask the server to finish all in-flight gestures fleet-wide."""
        payload = {} if timeout is None else {"timeout": timeout}
        return bool(self._round_trip("drain", payload=payload).get("drained"))

    # ------------------------------------------------------------------ #
    # the service protocol (what ExplorationSession needs)
    # ------------------------------------------------------------------ #
    def execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute one gesture command on the session's shard."""
        if isinstance(command, AppendCommand):
            # appends ride the dedicated verb so the new row count comes
            # back (envelope payloads never cross the wire)
            rows = self.append_rows(
                command.object_name, values=command.values, columns=command.columns
            )
            return OutcomeEnvelope(
                command_kind=command.kind,
                backend=self.backend,
                object_name=command.object_name,
                payload={"num_rows": rows},
            )
        reply = self._session_call("execute", {"command": command.to_dict()})
        envelope = reply.get("envelope")
        if not isinstance(envelope, dict):
            raise MalformedFrameError("execute response carried no envelope")
        return _rehydrate_payload(OutcomeEnvelope.from_dict(envelope))

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Execute a whole script in order, in one round trip."""
        reply = self._session_call("run-script", {"script": script.to_dict()})
        envelopes = reply.get("envelopes")
        if not isinstance(envelopes, list):
            raise MalformedFrameError("run-script response carried no envelopes")
        return [_rehydrate_payload(OutcomeEnvelope.from_dict(entry)) for entry in envelopes]

    def run_stream(self, script: GestureScript):
        """Execute a script, yielding each gesture's envelope as it completes.

        Sends ``run-script`` with ``stream=true``: the server answers with
        one ``partial`` frame per completed gesture plus a terminal
        ``done`` frame.  A server that predates streaming answers with a
        single ``envelopes`` frame instead; the generator degrades to
        yielding from it, so callers work against either peer.  Consume
        the stream fully (or abandon it — leftover frames are skipped by
        id) before issuing other requests on this client.
        """
        ctx = current_trace_context()
        with self._lock:
            if self._closed:
                raise ServiceError("client is closed")
            request_id = self._next_id
            self._next_id += 1
            request = Request(
                id=request_id,
                verb="run-script",
                session=self.session_id,
                payload={"script": script.to_dict(), "stream": True},
                trace=ctx.to_dict() if ctx is not None else None,
            )
            self._sock.sendall(
                encode_frame(request.to_dict(), max_bytes=self.max_frame_bytes)
            )
        while True:
            frames = self._decoder.feed(self._recv())
            for frame in frames:
                response = Response.from_dict(frame)
                if response.id != request_id:
                    continue  # stale response from an abandoned request
                payload = response.raise_if_error()
                if payload.get("done"):
                    return
                if payload.get("partial"):
                    envelope = payload.get("envelope")
                    if not isinstance(envelope, dict):
                        raise MalformedFrameError("partial frame carried no envelope")
                    yield _rehydrate_payload(OutcomeEnvelope.from_dict(envelope))
                    continue
                envelopes = payload.get("envelopes")
                if isinstance(envelopes, list):
                    # non-streaming peer: everything arrived in one frame
                    for entry in envelopes:
                        yield _rehydrate_payload(OutcomeEnvelope.from_dict(entry))
                    return
                raise MalformedFrameError("unrecognized run-script response shape")

    def load_column(self, name: str, values: Iterable, replace: bool = False):
        """Ship a session-private column by value (small columns only —
        big base data belongs in the published snapshot, not on the wire).
        """
        reply = self._session_call(
            "load-column",
            {"name": name, "values": [_wire_value(v) for v in values], "replace": replace},
        )
        return reply

    def append_rows(
        self,
        object_name: str,
        values: Iterable | None = None,
        columns: Any = None,
    ) -> int:
        """Append rows to a loaded object on the session's shard.

        Mirrors :meth:`repro.service.LocalExplorationService.append_rows`:
        ``values`` grows a standalone column, ``columns`` a table (every
        attribute, equal lengths).  Values must be finite numerics — the
        JSON wire refuses NaN/inf.  Returns the object's new row count.
        """
        payload: dict[str, Any] = {"name": object_name}
        if values is not None:
            payload["values"] = [_wire_value(v) for v in values]
        if columns is not None:
            payload["columns"] = {
                name: [_wire_value(v) for v in rows] for name, rows in columns.items()
            }
        reply = self._session_call("append", payload)
        return int(reply.get("rows", 0))

    def reset(self) -> None:
        """Recreate the session server-side: close it, then reopen fresh."""
        self._session_call("close-session")
        self.open_session()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the socket (the server-side session stays until closed)."""
        with self._lock:
            if not self._closed:
                self._closed = True
                try:
                    self._sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False


def _wire_value(value: Any) -> Any:
    """Coerce one column value into a JSON-encodable scalar."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bool)):
        return item()  # numpy scalar -> exact Python scalar
    return value


#: Touch-gesture command kinds whose envelopes reconstruct an outcome.
_GESTURE_TYPES = {
    "tap": GestureType.TAP,
    "slide": GestureType.SLIDE,
    "slide-path": GestureType.SLIDE,
    "zoom-in": GestureType.ZOOM_IN,
    "zoom-out": GestureType.ZOOM_OUT,
    "rotate": GestureType.ROTATE,
    "pan": GestureType.PAN,
}


def _rehydrate_payload(envelope: OutcomeEnvelope) -> OutcomeEnvelope:
    """Rebuild a counters-only :class:`GestureOutcome` for touch gestures.

    Live outcome objects never cross the wire, but
    :class:`repro.core.session.ExplorationSession` accounts history and
    summaries off ``envelope.payload`` — so the client reconstructs the
    measurement surface (counters, latency) from the envelope.  Row-level
    detail (rowids, result values) stays server-side by design.
    """
    gesture_type = _GESTURE_TYPES.get(envelope.command_kind)
    if gesture_type is None:
        return envelope
    latency = float(envelope.max_touch_latency_s)
    envelope.payload = GestureOutcome(
        gesture_type=gesture_type,
        view_name=envelope.view_name or "",
        object_name=envelope.object_name or "",
        entries_returned=int(envelope.entries_returned),
        tuples_examined=int(envelope.tuples_examined),
        duration_s=float(envelope.duration_s),
        per_touch_latencies_s=[latency] if latency > 0 else [],
        cache_hits=int(envelope.cache_hits),
        prefetch_hits=int(envelope.prefetch_hits),
    )
    return envelope
