"""Adaptive, on-the-fly optimization decisions.

dbTouch cannot optimize a query up front: it does not know how much data
will be processed, in which order, or which region of the data the gesture
will visit — the user decides all of that while the query runs.  The
optimizer therefore works from *observations*: it tracks per-predicate
selectivities as touches flow, reorders conjunctive predicates so the most
selective one runs first, picks the sample level that matches the gesture's
observed stride, and tunes how aggressively to prefetch based on how
steady the gesture velocity has been.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.engine.filter import Predicate


@dataclass
class PredicateStats:
    """Observed behaviour of one predicate during the running gesture session."""

    predicate: Predicate
    evaluated: int = 0
    passed: int = 0

    @property
    def selectivity(self) -> float:
        """Observed pass rate; optimistically 1.0 before any observation."""
        if not self.evaluated:
            return 1.0
        return self.passed / self.evaluated

    def record(self, passed: bool) -> None:
        """Record one evaluation outcome."""
        self.evaluated += 1
        if passed:
            self.passed += 1


class AdaptivePredicateOrderer:
    """Order conjunctive predicates by observed selectivity, adapting online.

    The cheapest strategy for an AND of predicates is to evaluate the most
    selective (lowest pass-rate) predicate first.  Because different data
    regions have different properties, the ordering is recomputed after
    every ``reorder_every`` touches using only observations from the recent
    window, so the plan follows the gesture into new data areas.
    """

    def __init__(self, predicates: list[Predicate], reorder_every: int = 64):
        if not predicates:
            raise OptimizationError("predicate orderer needs at least one predicate")
        if reorder_every < 1:
            raise OptimizationError("reorder_every must be at least 1")
        self._stats = [PredicateStats(p) for p in predicates]
        self.reorder_every = reorder_every
        self._since_reorder = 0
        self.reorderings = 0

    @property
    def current_order(self) -> list[Predicate]:
        """Predicates in their current evaluation order."""
        return [s.predicate for s in self._stats]

    def evaluate(self, value: float) -> bool:
        """Evaluate the conjunction on ``value`` with short-circuiting.

        Every predicate actually evaluated updates its statistics; the
        ordering is refreshed periodically from those statistics.
        """
        verdict = True
        for stat in self._stats:
            passed = stat.predicate.matches(value)
            stat.record(passed)
            if not passed:
                verdict = False
                break
        self._since_reorder += 1
        if self._since_reorder >= self.reorder_every:
            self._reorder()
        return verdict

    def _reorder(self) -> None:
        previous = [s.predicate for s in self._stats]
        self._stats.sort(key=lambda s: s.selectivity)
        self._since_reorder = 0
        if [s.predicate for s in self._stats] != previous:
            self.reorderings += 1
        # decay the window so old regions do not dominate new ones
        for stat in self._stats:
            stat.evaluated = max(1, stat.evaluated // 2)
            stat.passed = max(0, stat.passed // 2)

    def observed_selectivities(self) -> dict[str, float]:
        """Mapping of predicate description → observed selectivity."""
        return {s.predicate.describe(): s.selectivity for s in self._stats}


@dataclass
class OptimizerDecision:
    """The bundle of adaptive decisions returned for the next touch."""

    sample_stride: int
    prefetch_horizon_touches: int
    summary_k: int


class AdaptiveOptimizer:
    """Combine observed gesture behaviour into per-touch execution decisions.

    Parameters
    ----------
    latency_budget_s:
        The per-touch response-time bound the kernel must honor.
    base_summary_k:
        The user-requested summary half-window; shrunk when the budget is
        violated and restored when there is slack.
    """

    def __init__(self, latency_budget_s: float = 0.05, base_summary_k: int = 8):
        if latency_budget_s <= 0:
            raise OptimizationError("latency budget must be positive")
        if base_summary_k < 0:
            raise OptimizationError("base_summary_k must be non-negative")
        self.latency_budget_s = latency_budget_s
        self.base_summary_k = base_summary_k
        self._current_k = base_summary_k
        self._recent_strides: list[int] = []
        self._recent_latencies: list[float] = []
        self._speculated_kind: str | None = None
        self.budget_violations = 0
        self.k_adjustments = 0

    # ------------------------------------------------------------------ #
    # observations
    # ------------------------------------------------------------------ #
    def observe_touch(self, stride: int, latency_s: float) -> None:
        """Record the stride and processing latency of the latest touch."""
        if latency_s < 0:
            raise OptimizationError("latency cannot be negative")
        self._recent_strides.append(max(1, stride))
        self._recent_latencies.append(latency_s)
        if len(self._recent_strides) > 32:
            self._recent_strides.pop(0)
        if len(self._recent_latencies) > 32:
            self._recent_latencies.pop(0)
        self._adjust_summary_k(latency_s, violations=1)

    def observe_batch(self, strides, latency_s: float) -> None:
        """Batch equivalent of :meth:`observe_touch` for one whole gesture.

        ``strides`` is the per-touch stride sequence of a gesture executed
        by the vectorized batch path and ``latency_s`` the amortized
        per-touch latency (batch wall time / touches).  The stride window
        is updated exactly as a loop of ``observe_touch`` calls would;
        the summary window ``k`` is adjusted once per batch rather than
        once per violating touch, because individual touch latencies do
        not exist on the batch path.
        """
        if latency_s < 0:
            raise OptimizationError("latency cannot be negative")
        count = len(strides)
        tail = [max(1, int(s)) for s in strides[-32:]]
        if not tail:
            return
        self._recent_strides.extend(tail)
        del self._recent_strides[:-32]
        self._recent_latencies.extend([latency_s] * len(tail))
        del self._recent_latencies[:-32]
        self._adjust_summary_k(latency_s, violations=count)

    def _adjust_summary_k(self, latency_s: float, violations: int) -> None:
        """The shared budget-violation / window-adjustment policy.

        Shrink the summary window while the budget is violated (counting
        ``violations`` touches), restore it gradually when there is ample
        slack; both observers apply this one rule so the per-touch and
        batch paths cannot drift apart.
        """
        if latency_s > self.latency_budget_s:
            self.budget_violations += violations
            if self._current_k > 1:
                self._current_k = max(1, self._current_k // 2)
                self.k_adjustments += 1
        elif (
            self._current_k < self.base_summary_k
            and latency_s < 0.5 * self.latency_budget_s
        ):
            self._current_k = min(self.base_summary_k, self._current_k * 2)
            self.k_adjustments += 1

    def speculation_hint(self, predicted_kind: str | None) -> None:
        """Advise the optimizer what a mined policy predicts comes next.

        Advisory only: the hint scales the prefetch horizon
        :meth:`decide` reports (a predicted continued slide justifies a
        deeper horizon; anything else falls back to the observed-velocity
        rule) and never touches the summary window or sample stride, so
        outcome counters are unaffected by hinting.
        """
        self._speculated_kind = predicted_kind

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #
    def decide(self) -> OptimizerDecision:
        """Return the decisions to use for the next touch."""
        if self._recent_strides:
            stride = int(sorted(self._recent_strides)[len(self._recent_strides) // 2])
        else:
            stride = 1
        velocity_steady = self._velocity_is_steady()
        prefetch_horizon = 32 if velocity_steady else 8
        if velocity_steady and self._speculated_kind in ("slide", "slide-path"):
            prefetch_horizon = 64
        return OptimizerDecision(
            sample_stride=stride,
            prefetch_horizon_touches=prefetch_horizon,
            summary_k=self._current_k,
        )

    def _velocity_is_steady(self) -> bool:
        if len(self._recent_strides) < 4:
            return False
        window = self._recent_strides[-8:]
        lo, hi = min(window), max(window)
        if lo == 0:
            return False
        return hi <= 2 * lo

    @property
    def current_summary_k(self) -> int:
        """The currently allowed summary half-window."""
        return self._current_k

    def reset(self) -> None:
        """Forget all observations (a new gesture session starts)."""
        self._recent_strides.clear()
        self._recent_latencies.clear()
        self._speculated_kind = None
        self._current_k = self.base_summary_k
        self.budget_violations = 0
        self.k_adjustments = 0
