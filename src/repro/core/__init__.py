"""The dbTouch kernel: the paper's primary contribution.

The core subpackage maps touch gestures onto query-processing actions:

* :mod:`repro.core.touch_mapping` — the Rule-of-Three touch → rowid map;
* :mod:`repro.core.actions` — declarative query actions bound to objects;
* :mod:`repro.core.commands` — serializable gesture commands and scripts;
* :mod:`repro.core.summaries` — interactive summaries;
* :mod:`repro.core.caching` / :mod:`repro.core.prefetch` — touched-range
  caching and gesture-extrapolating prefetching;
* :mod:`repro.core.optimizer` — adaptive, on-the-fly optimization;
* :mod:`repro.core.result_stream` — in-place, fading result presentation;
* :mod:`repro.core.kernel` — the kernel that executes gestures;
* :mod:`repro.core.scheduler` — the concurrent multi-session gesture
  scheduler (worker pool, per-session FIFO, admission control);
* :mod:`repro.core.session` — the high-level exploration facade.
"""

from repro.core.actions import (
    ActionKind,
    QueryAction,
    aggregate_action,
    group_by_action,
    join_action,
    scan_action,
    select_where_action,
    summary_action,
)
from repro.core.caching import CacheStats, HashTableCache, TouchCache
from repro.core.commands import (
    ChooseAction,
    DragColumnOut,
    GestureCommand,
    GestureScript,
    GroupColumns,
    Pan,
    Rotate,
    ShowColumn,
    ShowTable,
    Slide,
    SlidePath,
    Tap,
    TimedCommand,
    UngroupTable,
    ZoomIn,
    ZoomOut,
)
from repro.core.kernel import DbTouchKernel, GestureOutcome, KernelConfig
from repro.core.optimizer import (
    AdaptiveOptimizer,
    AdaptivePredicateOrderer,
    OptimizerDecision,
    PredicateStats,
)
from repro.core.prefetch import GestureEstimate, GesturePrefetcher
from repro.core.result_stream import ResultStream, ResultValue, VisibleResult
from repro.core.scheduler import GestureScheduler, SchedulerConfig, SchedulerStats
from repro.core.schema_gestures import SchemaGestureOutcome, SchemaGestures
from repro.core.session import ExplorationSession, SessionSummary
from repro.core.summaries import InteractiveSummarizer, SummaryResult
from repro.core.touch_mapping import MappedTouch, TouchMapper

__all__ = [
    "ActionKind",
    "AdaptiveOptimizer",
    "AdaptivePredicateOrderer",
    "CacheStats",
    "ChooseAction",
    "DbTouchKernel",
    "DragColumnOut",
    "ExplorationSession",
    "GestureCommand",
    "GestureEstimate",
    "GestureOutcome",
    "GesturePrefetcher",
    "GestureScheduler",
    "GestureScript",
    "GroupColumns",
    "HashTableCache",
    "InteractiveSummarizer",
    "KernelConfig",
    "MappedTouch",
    "OptimizerDecision",
    "Pan",
    "PredicateStats",
    "QueryAction",
    "ResultStream",
    "ResultValue",
    "Rotate",
    "SchedulerConfig",
    "SchedulerStats",
    "SchemaGestureOutcome",
    "SchemaGestures",
    "SessionSummary",
    "ShowColumn",
    "ShowTable",
    "Slide",
    "SlidePath",
    "SummaryResult",
    "Tap",
    "TimedCommand",
    "TouchCache",
    "TouchMapper",
    "UngroupTable",
    "VisibleResult",
    "ZoomIn",
    "ZoomOut",
    "aggregate_action",
    "group_by_action",
    "join_action",
    "scan_action",
    "select_where_action",
    "summary_action",
]
