"""Query actions: what a gesture *means* for query processing.

Before starting a gesture the user chooses one or more query actions for a
data object — "scan", "running average", "interactive summary with k=10",
"only rows where value > 100", "join these two columns".  The gesture then
drives the chosen actions one touch at a time.  This module defines the
declarative description of those actions; the kernel instantiates the
matching operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import QueryError
from repro.engine.aggregate import AggregateKind
from repro.engine.filter import Predicate
from repro.storage.column import CACHE_LINE_VALUES


class ActionKind(Enum):
    """The query-processing actions a gesture can drive."""

    SCAN = "scan"
    AGGREGATE = "aggregate"
    SUMMARY = "summary"
    GROUP_BY = "group-by"
    JOIN = "join"
    SELECT_WHERE = "select-where"


@dataclass(frozen=True)
class QueryAction:
    """A declarative description of the action attached to a data object.

    Attributes
    ----------
    kind:
        The action kind (scan, running aggregate, interactive summary,
        group-by or join participation).
    aggregate:
        The aggregate function for AGGREGATE, SUMMARY and GROUP_BY actions.
    summary_k:
        Half-window for interactive summaries (the paper's evaluation uses
        windows of 10 data entries).
    predicate:
        Optional WHERE restriction applied to every touched value before it
        reaches the action.
    group_key_attribute / measure_attribute:
        For GROUP_BY over a table object: which attribute provides the
        grouping key and which provides the measure.
    join_partner:
        For JOIN actions: the name of the other data object participating
        in the join.
    where_attribute / select_attributes:
        For SELECT_WHERE plans over a table object: the slide drives the
        where restriction on ``where_attribute`` and, for qualifying
        tuples, the values of ``select_attributes`` are fetched and shown
        (Section 2.9's multi-column query plans).
    """

    kind: ActionKind = ActionKind.SCAN
    aggregate: AggregateKind = AggregateKind.AVG
    summary_k: int = CACHE_LINE_VALUES
    predicate: Predicate | None = None
    group_key_attribute: str | None = None
    measure_attribute: str | None = None
    join_partner: str | None = None
    where_attribute: str | None = None
    select_attributes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.summary_k < 0:
            raise QueryError("summary_k must be non-negative")
        if self.kind is ActionKind.GROUP_BY and (
            self.group_key_attribute is None or self.measure_attribute is None
        ):
            raise QueryError(
                "GROUP_BY actions need both group_key_attribute and measure_attribute"
            )
        if self.kind is ActionKind.JOIN and self.join_partner is None:
            raise QueryError("JOIN actions need a join_partner object name")
        if self.kind is ActionKind.SELECT_WHERE:
            if self.where_attribute is None or not self.select_attributes:
                raise QueryError(
                    "SELECT_WHERE actions need a where_attribute and select_attributes"
                )
            if self.predicate is None:
                raise QueryError("SELECT_WHERE actions need a predicate")

    def describe(self) -> str:
        """Short human-readable description of the action."""
        parts = [self.kind.value]
        if self.kind in (ActionKind.AGGREGATE, ActionKind.SUMMARY, ActionKind.GROUP_BY):
            parts.append(self.aggregate.value)
        if self.kind is ActionKind.SUMMARY:
            parts.append(f"k={self.summary_k}")
        if self.predicate is not None:
            parts.append(f"where {self.predicate.describe()}")
        if self.join_partner is not None:
            parts.append(f"with {self.join_partner}")
        return " ".join(parts)


def scan_action(predicate: Predicate | None = None) -> QueryAction:
    """A plain scan: every touched value is shown as-is."""
    return QueryAction(kind=ActionKind.SCAN, predicate=predicate)


def aggregate_action(
    aggregate: AggregateKind | str = AggregateKind.AVG,
    predicate: Predicate | None = None,
) -> QueryAction:
    """A running aggregate continuously updated as the gesture evolves."""
    if isinstance(aggregate, str):
        aggregate = AggregateKind(aggregate.lower())
    return QueryAction(kind=ActionKind.AGGREGATE, aggregate=aggregate, predicate=predicate)


def summary_action(
    k: int = CACHE_LINE_VALUES,
    aggregate: AggregateKind | str = AggregateKind.AVG,
    predicate: Predicate | None = None,
) -> QueryAction:
    """An interactive summary: one aggregate over ``2k + 1`` entries per touch."""
    if isinstance(aggregate, str):
        aggregate = AggregateKind(aggregate.lower())
    return QueryAction(
        kind=ActionKind.SUMMARY, aggregate=aggregate, summary_k=k, predicate=predicate
    )


def group_by_action(
    key_attribute: str,
    measure_attribute: str,
    aggregate: AggregateKind | str = AggregateKind.AVG,
) -> QueryAction:
    """Group touched tuples by one attribute and aggregate another."""
    if isinstance(aggregate, str):
        aggregate = AggregateKind(aggregate.lower())
    return QueryAction(
        kind=ActionKind.GROUP_BY,
        aggregate=aggregate,
        group_key_attribute=key_attribute,
        measure_attribute=measure_attribute,
    )


def join_action(partner_object: str, predicate: Predicate | None = None) -> QueryAction:
    """Participate in a join with ``partner_object`` (non-blocking, per touch)."""
    return QueryAction(kind=ActionKind.JOIN, join_partner=partner_object, predicate=predicate)


def select_where_action(
    where_attribute: str,
    predicate: Predicate,
    select_attributes: list[str] | tuple[str, ...],
) -> QueryAction:
    """A multi-column plan: slide drives a where restriction, selects project out.

    For every touched tuple whose ``where_attribute`` value satisfies the
    predicate, the values of ``select_attributes`` are fetched and shown.
    """
    return QueryAction(
        kind=ActionKind.SELECT_WHERE,
        predicate=predicate,
        where_attribute=where_attribute,
        select_attributes=tuple(select_attributes),
    )
