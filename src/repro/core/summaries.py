"""Interactive summaries: one aggregate value per touch over a small window.

Instead of returning the single data entry under the finger, dbTouch can
return a *summary* of the ``2k + 1`` entries surrounding the touched tuple
identifier: when position ``p`` maps to rowid ``id_p``, the system scans
``[id_p - k, id_p + k]`` and shows a single aggregate (average by default).
Summaries let each touch inspect more data and expose local patterns and
differences across areas of the same object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.engine.aggregate import AggregateKind, aggregate_window
from repro.storage.column import CACHE_LINE_VALUES, Column
from repro.storage.sample import SampleHierarchy


@dataclass(frozen=True)
class SummaryResult:
    """The outcome of one interactive-summary touch.

    Attributes
    ----------
    rowid:
        The touched tuple identifier (window centre).
    value:
        The aggregate over the window.
    window_start / window_stop:
        The base-rowid range actually aggregated (half-open).
    values_aggregated:
        How many stored values went into the aggregate.
    served_from_level:
        The sample-hierarchy level that supplied the values (0 = base data).
    """

    rowid: int
    value: float | None
    window_start: int
    window_stop: int
    values_aggregated: int
    served_from_level: int


class InteractiveSummarizer:
    """Compute per-touch summaries over a column.

    Parameters
    ----------
    column:
        The base column being explored.
    k:
        Half-window size: each touch aggregates ``[rowid - k, rowid + k]``.
        The paper's evaluation uses 10 entries per summary; the default k
        covers at least one cache line so a fetched line is fully used.
    aggregate:
        Aggregate kind; the paper's default is the average.
    hierarchy:
        Optional sample hierarchy; when provided and ``stride_hint`` is
        coarse, the window is served from a matching sample level instead
        of the base data.
    """

    def __init__(
        self,
        column: Column,
        k: int = CACHE_LINE_VALUES,
        aggregate: AggregateKind | str = AggregateKind.AVG,
        hierarchy: SampleHierarchy | None = None,
    ) -> None:
        if k < 0:
            raise ExecutionError("summary half-window k must be non-negative")
        if not column.is_numeric:
            raise ExecutionError(
                f"interactive summaries require a numeric column, got {column.dtype.name}"
            )
        self.column = column
        self.k = k
        self.aggregate = aggregate
        self.hierarchy = hierarchy
        self.touches = 0
        self.values_read = 0

    def summarize_at(self, rowid: int, stride_hint: int = 1) -> SummaryResult:
        """Summarize the window centred at ``rowid``.

        ``stride_hint`` is the gesture's current rowid stride; with a sample
        hierarchy attached it selects the level that serves the window.
        """
        if not 0 <= rowid < len(self.column):
            raise ExecutionError(
                f"rowid {rowid} out of range for column of length {len(self.column)}"
            )
        start = max(0, rowid - self.k)
        stop = min(len(self.column), rowid + self.k + 1)
        level = 0
        if self.hierarchy is not None and stride_hint > 1:
            window, sample_level = self.hierarchy.read_window(rowid, self.k, stride_hint)
            level = sample_level.level
        else:
            window = self.column.slice(start, stop)
        value = aggregate_window(self.aggregate, window) if len(window) else None
        self.touches += 1
        self.values_read += int(len(window))
        return SummaryResult(
            rowid=rowid,
            value=value,
            window_start=start,
            window_stop=stop,
            values_aggregated=int(len(window)),
            served_from_level=level,
        )

    def summarize_many(self, rowids: list[int], stride_hint: int = 1) -> list[SummaryResult]:
        """Summarize a sequence of touched rowids (one result per touch)."""
        return [self.summarize_at(r, stride_hint=stride_hint) for r in rowids]

    # ------------------------------------------------------------------ #
    # batched summaries (the vectorized slide path)
    # ------------------------------------------------------------------ #
    def summarize_batch(
        self, rowids: np.ndarray, stride_hints: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Summarize a whole array of touched rowids in a few numpy passes.

        Semantically equivalent to calling :meth:`summarize_at` per rowid
        (same windows, same sample-level selection), but windows are
        gathered as one index matrix per sample level and aggregated with
        masked reductions, so the cost per touch is a handful of vector
        operations instead of a Python-level window scan.  Sum-like
        aggregates reduce with numpy's pairwise summation, so float results
        can differ from the sequential fold in the last bits.

        Returns ``(values, values_aggregated, served_from_levels)``.
        """
        centers = np.asarray(rowids, dtype=np.int64)
        strides = np.asarray(stride_hints, dtype=np.int64)
        if centers.size == 0:
            empty_f = np.empty(0, dtype=np.float64)
            empty_i = np.empty(0, dtype=np.int64)
            return empty_f, empty_i, empty_i.copy()
        if centers.min() < 0 or centers.max() >= len(self.column):
            raise ExecutionError(
                f"rowid out of range for column of length {len(self.column)}"
            )
        kind = (
            AggregateKind(self.aggregate.lower())
            if isinstance(self.aggregate, str)
            else self.aggregate
        )
        values = np.empty(centers.size, dtype=np.float64)
        counts = np.empty(centers.size, dtype=np.int64)
        levels = np.zeros(centers.size, dtype=np.int64)

        if self.hierarchy is None:
            base = self.column.values
            values[:], counts[:] = _aggregate_windows(base, centers, self.k, kind)
        else:
            # mirror summarize_at: strides of 1 read the base column, coarser
            # strides go through the hierarchy's best-matching level
            sampled = strides > 1
            if np.any(~sampled):
                sel = ~sampled
                values[sel], counts[sel] = _aggregate_windows(
                    self.column.values, centers[sel], self.k, kind
                )
            if np.any(sampled):
                level_indices = self.hierarchy.level_index_for_strides(strides)
                for index in np.unique(level_indices[sampled]):
                    lvl = self.hierarchy.level(int(index))
                    mask = sampled & (level_indices == index)
                    lvl_centers = np.minimum(lvl.num_rows - 1, centers[mask] // lvl.step)
                    half = self.k // lvl.step if lvl.step > 1 else self.k
                    values[mask], counts[mask] = _aggregate_windows(
                        lvl.column.values, lvl_centers, half, kind
                    )
                    levels[mask] = lvl.level

        self.touches += centers.size
        self.values_read += int(counts.sum())
        return values, counts, levels

    def compare_areas(self, rowid_a: int, rowid_b: int, stride_hint: int = 1) -> float | None:
        """Difference between the summaries of two touched areas.

        The paper highlights that summaries let the user observe pattern
        differences across areas of the same object; this helper returns
        ``summary(a) - summary(b)`` (or None when either window is empty).
        """
        a = self.summarize_at(rowid_a, stride_hint=stride_hint)
        b = self.summarize_at(rowid_b, stride_hint=stride_hint)
        if a.value is None or b.value is None:
            return None
        return a.value - b.value


#: Cap on the window-index matrix size (touches x window width) so batched
#: summaries with huge half-windows stay within a bounded memory footprint.
_WINDOW_MATRIX_BUDGET = 4_000_000


def _aggregate_windows(
    data: np.ndarray, centers: np.ndarray, half: int, kind: AggregateKind
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate the clamped windows ``[c - half, c + half]`` per center.

    Builds an index matrix of shape (centers, 2*half + 1), masks the
    positions that fall outside the array, and reduces each row with the
    requested aggregate.  Processes the centers in chunks so the matrix
    never exceeds :data:`_WINDOW_MATRIX_BUDGET` cells.
    """
    n = data.shape[0]
    width = 2 * half + 1
    values = np.empty(centers.size, dtype=np.float64)
    counts = np.empty(centers.size, dtype=np.int64)
    offsets = np.arange(-half, half + 1, dtype=np.int64)
    chunk = max(1, _WINDOW_MATRIX_BUDGET // width)
    for start in range(0, centers.size, chunk):
        part = centers[start : start + chunk]
        idx = part[:, None] + offsets[None, :]
        valid = (idx >= 0) & (idx < n)
        window = data[np.clip(idx, 0, n - 1)].astype(np.float64, copy=False)
        cnt = valid.sum(axis=1)
        safe_cnt = np.maximum(1, cnt)
        if kind is AggregateKind.COUNT:
            val = cnt.astype(np.float64)
        elif kind is AggregateKind.SUM:
            val = np.sum(window, axis=1, where=valid, initial=0.0)
        elif kind is AggregateKind.AVG:
            val = np.sum(window, axis=1, where=valid, initial=0.0) / safe_cnt
        elif kind is AggregateKind.MIN:
            val = np.min(window, axis=1, where=valid, initial=np.inf)
        elif kind is AggregateKind.MAX:
            val = np.max(window, axis=1, where=valid, initial=-np.inf)
        elif kind is AggregateKind.STD:
            # two-pass: center each window on its own mean before squaring,
            # avoiding catastrophic cancellation on large-offset data
            total = np.sum(window, axis=1, where=valid, initial=0.0)
            mean = total / safe_cnt
            centered = window - mean[:, None]
            total_sq = np.sum(centered * centered, axis=1, where=valid, initial=0.0)
            val = np.sqrt(np.maximum(0.0, total_sq / safe_cnt))
        else:  # pragma: no cover - the enum is closed
            raise ExecutionError(f"unsupported summary aggregate {kind!r}")
        values[start : start + chunk] = val
        counts[start : start + chunk] = cnt
    return values, counts
