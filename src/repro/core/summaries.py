"""Interactive summaries: one aggregate value per touch over a small window.

Instead of returning the single data entry under the finger, dbTouch can
return a *summary* of the ``2k + 1`` entries surrounding the touched tuple
identifier: when position ``p`` maps to rowid ``id_p``, the system scans
``[id_p - k, id_p + k]`` and shows a single aggregate (average by default).
Summaries let each touch inspect more data and expose local patterns and
differences across areas of the same object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.engine.aggregate import AggregateKind, aggregate_window
from repro.storage.column import CACHE_LINE_VALUES, Column
from repro.storage.sample import SampleHierarchy


@dataclass(frozen=True)
class SummaryResult:
    """The outcome of one interactive-summary touch.

    Attributes
    ----------
    rowid:
        The touched tuple identifier (window centre).
    value:
        The aggregate over the window.
    window_start / window_stop:
        The base-rowid range actually aggregated (half-open).
    values_aggregated:
        How many stored values went into the aggregate.
    served_from_level:
        The sample-hierarchy level that supplied the values (0 = base data).
    """

    rowid: int
    value: float | None
    window_start: int
    window_stop: int
    values_aggregated: int
    served_from_level: int


class InteractiveSummarizer:
    """Compute per-touch summaries over a column.

    Parameters
    ----------
    column:
        The base column being explored.
    k:
        Half-window size: each touch aggregates ``[rowid - k, rowid + k]``.
        The paper's evaluation uses 10 entries per summary; the default k
        covers at least one cache line so a fetched line is fully used.
    aggregate:
        Aggregate kind; the paper's default is the average.
    hierarchy:
        Optional sample hierarchy; when provided and ``stride_hint`` is
        coarse, the window is served from a matching sample level instead
        of the base data.
    """

    def __init__(
        self,
        column: Column,
        k: int = CACHE_LINE_VALUES,
        aggregate: AggregateKind | str = AggregateKind.AVG,
        hierarchy: SampleHierarchy | None = None,
    ) -> None:
        if k < 0:
            raise ExecutionError("summary half-window k must be non-negative")
        if not column.is_numeric:
            raise ExecutionError(
                f"interactive summaries require a numeric column, got {column.dtype.name}"
            )
        self.column = column
        self.k = k
        self.aggregate = aggregate
        self.hierarchy = hierarchy
        self.touches = 0
        self.values_read = 0

    def summarize_at(self, rowid: int, stride_hint: int = 1) -> SummaryResult:
        """Summarize the window centred at ``rowid``.

        ``stride_hint`` is the gesture's current rowid stride; with a sample
        hierarchy attached it selects the level that serves the window.
        """
        if not 0 <= rowid < len(self.column):
            raise ExecutionError(
                f"rowid {rowid} out of range for column of length {len(self.column)}"
            )
        start = max(0, rowid - self.k)
        stop = min(len(self.column), rowid + self.k + 1)
        level = 0
        if self.hierarchy is not None and stride_hint > 1:
            window, sample_level = self.hierarchy.read_window(rowid, self.k, stride_hint)
            level = sample_level.level
        else:
            window = self.column.slice(start, stop)
        value = aggregate_window(self.aggregate, window) if len(window) else None
        self.touches += 1
        self.values_read += int(len(window))
        return SummaryResult(
            rowid=rowid,
            value=value,
            window_start=start,
            window_stop=stop,
            values_aggregated=int(len(window)),
            served_from_level=level,
        )

    def summarize_many(self, rowids: list[int], stride_hint: int = 1) -> list[SummaryResult]:
        """Summarize a sequence of touched rowids (one result per touch)."""
        return [self.summarize_at(r, stride_hint=stride_hint) for r in rowids]

    def compare_areas(self, rowid_a: int, rowid_b: int, stride_hint: int = 1) -> float | None:
        """Difference between the summaries of two touched areas.

        The paper highlights that summaries let the user observe pattern
        differences across areas of the same object; this helper returns
        ``summary(a) - summary(b)`` (or None when either window is empty).
        """
        a = self.summarize_at(rowid_a, stride_hint=stride_hint)
        b = self.summarize_at(rowid_b, stride_hint=stride_hint)
        if a.value is None or b.value is None:
            return None
        return a.value - b.value
