"""The dbTouch kernel: mapping gestures to query processing.

The kernel sits between the simulated touch OS and the storage engine
(Figure 3 in the paper).  The OS recognizes touches and gestures; the
kernel maps each touch to a tuple identifier, executes the query action
attached to the touched data object, and emits result values that appear
in place and fade away.  It also hosts the adaptive machinery: sample
hierarchies, the touched-range cache, the gesture-extrapolating prefetcher,
the per-touch latency budget and incremental layout rotation.

Slide gestures have two execution strategies.  The per-touch loop
(`_handle_slide` → `_process_touch`) is the reference implementation and
handles every action; when ``KernelConfig.batch_execution`` is on (the
default), eligible slides — column scans, running aggregates, interactive
summaries and select-where plans — are executed by
:class:`repro.core.batch.BatchSlideExecutor`, which maps, deduplicates,
reads, filters and aggregates the whole touch stream as numpy arrays and
produces the same deterministic outcome counters at a fraction of the
per-touch interpreter cost (see :mod:`repro.core.batch` for the two
timing-dependent deviations: amortized per-touch latencies, and summary
windows adapting per gesture rather than per violating touch).

Touched-range cache keys are namespaced per object *and* per logical read
as ``(object, read-descriptor)`` tuples: the descriptor is the action
kind, extended with ``:a<attribute>`` for attribute-dependent table reads
and ``:k<effective-k>`` for interactive summaries (so values computed
before the adaptive optimizer resized the summary window are never served
for the new window).  See :mod:`repro.core.caching` for the full key
scheme.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.actions import ActionKind, QueryAction
from repro.core.caching import HashTableCache, MemoryBudget, TouchCache
from repro.core.optimizer import AdaptiveOptimizer
from repro.core.prefetch import GesturePrefetcher
from repro.core.result_stream import ResultStream, ResultValue
from repro.core.summaries import InteractiveSummarizer
from repro.core.touch_mapping import MappedTouch, TouchMapper
from repro.engine.aggregate import RunningAggregate, make_aggregate
from repro.engine.filter import Predicate
from repro.engine.groupby import IncrementalGroupBy
from repro.engine.join import SymmetricHashJoin
from repro.errors import ExecutionError, QueryError
from repro.indexing.manager import IndexManager, RangeSelection
from repro.obs.trace import trace_event, trace_span
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.incremental import IncrementalRotation
from repro.storage.layout import LayoutKind
from repro.storage.sample import SampleHierarchy
from repro.storage.table import Table
from repro.touchio.device import TouchDevice
from repro.touchio.events import TouchEvent, TouchPhase, TouchStream
from repro.touchio.recognizer import GestureRecognizer, GestureType, RecognizedGesture
from repro.touchio.views import View, make_column_view, make_table_view


@dataclass
class KernelConfig:
    """Tunable behaviour of the dbTouch kernel.

    Attributes
    ----------
    latency_budget_s:
        Maximum per-touch processing time the kernel aims for; the adaptive
        optimizer shrinks the summary window when the budget is violated.
    enable_prefetch / enable_cache / enable_samples:
        Feature switches used by the ablation benchmarks.
    cache_capacity:
        Entries kept in the touched-range cache.
    sample_factor:
        Down-sampling factor between consecutive sample-hierarchy levels.
    fade_seconds:
        How long a displayed result value stays visible.
    touch_granularity:
        Number of tuples snapped together per touch position (1 = finest).
    rotation_sample_fraction:
        Fraction of a table converted immediately when a rotate gesture
        triggers an incremental layout change.
    batch_execution:
        Execute eligible slide gestures as one vectorized batch
        (:class:`repro.core.batch.BatchSlideExecutor`) instead of the
        per-touch Python loop.  On by default; the per-touch loop remains
        the reference path and still serves joins, group-bys and
        attribute-dependent table scans.
    enable_indexing:
        Maintain the adaptive indexing tier
        (:class:`repro.indexing.manager.IndexManager`): every slide whose
        action carries a range-shaped predicate refines the touched
        column's cracker index as a side effect (outside the outcome
        accounting, so ``GestureOutcome`` counters are bit-identical with
        indexing on or off), and bulk :meth:`DbTouchKernel.select_where`
        queries consult it instead of scanning the whole column.  On by
        default.
    index_manager:
        Optional pre-built :class:`~repro.indexing.manager.IndexManager`
        to use instead of a kernel-private one — the sharing hook for
        serving deployments where many sessions explore the same base
        storage by reference and should split one set of cracked indexes
        (see ``MultiSessionServer(shared_index=...)``).  Ignored when
        ``enable_indexing`` is off.
    stochastic_cracking / crack_seed:
        Passed to the kernel-private :class:`~repro.indexing.manager.
        IndexManager`: when ``stochastic_cracking`` is on, each crack
        mixes in one random pivot (MDD1R) drawn from a generator seeded
        with ``crack_seed``, so skewed gesture sequences cannot leave
        pathologically unbalanced pieces and equal seeds still yield
        bit-identical piece structures.  Ignored when ``index_manager``
        is supplied (the pre-built manager carries its own knobs).
    speculation:
        Optional mined :class:`repro.mining.policy.SpeculativePolicy`.
        Every shown object's prefetcher reports gesture progress to the
        policy, which predicts the object's likely next gesture so the
        service layer can warm for it in the background.  Strictly
        observational on the gesture path — ``GestureOutcome`` counters
        are bit-identical with speculation on or off (the differential
        harness's contract); serving deployments usually adopt one shared
        policy via ``MultiSessionServer(speculation=...)`` instead.
    max_retained_results:
        Retention bound handed to every view's
        :class:`repro.core.result_stream.ResultStream`: the oldest
        (long-faded) displayed values are dropped beyond it.  ``None``
        (the default) retains the full history; serving deployments set
        it so unserviced sessions stay memory-bounded.
    memory_budget:
        Optional :class:`repro.core.caching.MemoryBudget` the kernel's
        touched-range cache registers with.  Out-of-core deployments hand
        the same budget to a
        :class:`repro.persist.diskstore.DiskColumnStore`, so the touch
        cache and the disk store's chunk cache evict against one shared
        byte allowance instead of sizing themselves independently.  Note
        that sharing one budget across *sessions* makes cache-derived
        outcome counters load-dependent (cross-session reclaims evict
        mid-trace); see the determinism caveat on ``MemoryBudget``.
    """

    latency_budget_s: float = 0.05
    enable_prefetch: bool = True
    enable_cache: bool = True
    enable_samples: bool = True
    cache_capacity: int = 4096
    sample_factor: int = 4
    fade_seconds: float = 1.5
    touch_granularity: int = 1
    rotation_sample_fraction: float = 0.05
    batch_execution: bool = True
    max_retained_results: int | None = None
    memory_budget: MemoryBudget | None = None
    enable_indexing: bool = True
    index_manager: IndexManager | None = None
    stochastic_cracking: bool = False
    crack_seed: int = 0
    speculation: Any | None = None


@dataclass
class GestureOutcome:
    """Everything a gesture produced, for display and for measurement."""

    gesture_type: GestureType
    view_name: str
    object_name: str
    entries_returned: int = 0
    tuples_examined: int = 0
    rowids_touched: list[int] = field(default_factory=list)
    results: list[ResultValue] = field(default_factory=list)
    duration_s: float = 0.0
    per_touch_latencies_s: list[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    prefetch_hits: int = 0
    served_level_counts: dict[int, int] = field(default_factory=dict)
    final_aggregate: float | None = None
    join_matches: int = 0
    layout_kind: LayoutKind | None = None
    zoom_scale: float = 1.0
    revealed_tuple: dict[str, object] | None = None

    @property
    def max_touch_latency_s(self) -> float:
        """The slowest single touch in this gesture."""
        return max(self.per_touch_latencies_s, default=0.0)

    @property
    def mean_touch_latency_s(self) -> float:
        """Mean per-touch processing latency."""
        if not self.per_touch_latencies_s:
            return 0.0
        return sum(self.per_touch_latencies_s) / len(self.per_touch_latencies_s)

    def counters(self) -> dict[str, float]:
        """The outcome's metric counters, keyed by outcome-envelope field.

        This is the backend-agnostic measurement surface: both the service
        envelopes (:class:`repro.service.OutcomeEnvelope`) and the session's
        incremental :class:`repro.core.session.SessionSummary` consume it,
        so local and remote backends report identical fields.
        """
        return {
            "entries_returned": self.entries_returned,
            "tuples_examined": self.tuples_examined,
            "cache_hits": self.cache_hits,
            "prefetch_hits": self.prefetch_hits,
            "duration_s": self.duration_s,
            "max_touch_latency_s": self.max_touch_latency_s,
        }


def update_stride(state, rowid: int) -> int:
    """The slide stride-detection rule, shared by every backend.

    ``state`` is any object with ``last_rowid``/``current_stride``
    attributes (the kernel's object state locally, the device-side state in
    :class:`repro.service.RemoteExplorationService`).  Both backends must
    apply the identical rule or local-vs-remote replays diverge.
    """
    if state.last_rowid is not None:
        stride = abs(rowid - state.last_rowid)
        if stride > 0:
            state.current_stride = stride
    return max(1, state.current_stride)


@dataclass
class _ObjectState:
    """Kernel-side state attached to one visualized data object."""

    view: View
    object_name: str
    column: Column | None
    table: Table | None
    column_name: str | None = None
    action: QueryAction = field(default_factory=QueryAction)
    hierarchy: SampleHierarchy | None = None
    summarizer: InteractiveSummarizer | None = None
    aggregate: RunningAggregate | None = None
    group_by: IncrementalGroupBy | None = None
    results: ResultStream | None = None
    prefetcher: GesturePrefetcher | None = None
    prefetched_rowids: set[int] = field(default_factory=set)
    last_rowid: int | None = None
    last_timestamp: float | None = None
    current_stride: int = 1
    layout_kind: LayoutKind = LayoutKind.COLUMN_STORE
    rotation: IncrementalRotation | None = None


class DbTouchKernel:
    """Maps recognized gestures onto touch-driven query processing."""

    def __init__(
        self,
        catalog: Catalog,
        device: TouchDevice,
        config: KernelConfig | None = None,
    ) -> None:
        self.catalog = catalog
        self.device = device
        self.config = config if config is not None else KernelConfig()
        self.recognizer = GestureRecognizer()
        self.mapper = TouchMapper(granularity=self.config.touch_granularity)
        self.cache = TouchCache(
            capacity=self.config.cache_capacity, budget=self.config.memory_budget
        )
        self.hash_table_cache = HashTableCache()
        self.optimizer = AdaptiveOptimizer(
            latency_budget_s=self.config.latency_budget_s,
        )
        self.index_manager: IndexManager | None = None
        if self.config.enable_indexing:
            self.index_manager = (
                self.config.index_manager
                if self.config.index_manager is not None
                else IndexManager(
                    budget=self.config.memory_budget,
                    stochastic=self.config.stochastic_cracking,
                    crack_seed=self.config.crack_seed,
                )
            )
        self.speculation = self.config.speculation
        self._states: dict[str, _ObjectState] = {}
        self._joins: dict[frozenset[str], SymmetricHashJoin] = {}
        # deferred import: repro.core.batch imports GestureOutcome from here
        from repro.core.batch import BatchSlideExecutor

        self._batch_executor = BatchSlideExecutor(self)

    # ------------------------------------------------------------------ #
    # placing data objects on the screen
    # ------------------------------------------------------------------ #
    def show_column(
        self,
        object_name: str,
        column_name: str | None = None,
        view_name: str | None = None,
        height_cm: float = 10.0,
        width_cm: float = 2.0,
        x: float = 0.0,
        y: float = 0.0,
    ) -> View:
        """Place a column-shaped data object on the device screen."""
        column = self.catalog.resolve_column(object_name, column_name)
        name = view_name if view_name is not None else f"{object_name}-view"
        self._forget_view(name)
        view = make_column_view(
            name=name,
            object_name=object_name,
            num_tuples=len(column),
            height_cm=height_cm,
            width_cm=width_cm,
            x=x,
            y=y,
            dtype_names=(column.dtype.name,),
            size_bytes=column.size_bytes,
        )
        self.device.add_view(view)
        hierarchy = None
        if self.config.enable_samples and column.is_numeric:
            hierarchy = self.catalog.hierarchy_for(
                object_name, column_name, factor=self.config.sample_factor
            )
        self._states[name] = _ObjectState(
            view=view,
            object_name=object_name,
            column=column,
            table=None,
            column_name=column_name,
            hierarchy=hierarchy,
            results=self._make_result_stream(),
            prefetcher=self._make_prefetcher(object_name),
        )
        return view

    def show_table(
        self,
        table_name: str,
        view_name: str | None = None,
        height_cm: float = 10.0,
        width_cm: float = 8.0,
        x: float = 0.0,
        y: float = 0.0,
    ) -> View:
        """Place a fat-rectangle table object on the device screen."""
        table = self.catalog.table(table_name)
        name = view_name if view_name is not None else f"{table_name}-view"
        self._forget_view(name)
        view = make_table_view(
            name=name,
            object_name=table_name,
            num_tuples=len(table),
            num_attributes=table.num_columns,
            height_cm=height_cm,
            width_cm=width_cm,
            x=x,
            y=y,
            dtype_names=tuple(c.dtype.name for c in table.columns),
            size_bytes=table.size_bytes,
        )
        self.device.add_view(view)
        self._states[name] = _ObjectState(
            view=view,
            object_name=table_name,
            column=None,
            table=table,
            results=self._make_result_stream(),
            prefetcher=self._make_prefetcher(table_name),
        )
        return view

    def _make_prefetcher(self, object_name: str) -> GesturePrefetcher | None:
        """One prefetcher per shown object, policy-bound when speculating."""
        if not self.config.enable_prefetch:
            return None
        prefetcher = GesturePrefetcher()
        if self.speculation is not None:
            prefetcher.bind_policy(self.speculation, object_name)
        return prefetcher

    def adopt_speculation(self, policy: Any) -> None:
        """Install a mined speculation policy (the serving adoption hook).

        Already-shown objects get their prefetchers bound too, so a
        policy adopted mid-session starts observing immediately.
        """
        self.speculation = policy
        for state in self._states.values():
            if state.prefetcher is not None:
                state.prefetcher.bind_policy(policy, state.object_name)

    def _make_result_stream(self) -> ResultStream:
        return ResultStream(
            fade_seconds=self.config.fade_seconds,
            max_retained=self.config.max_retained_results,
        )

    def state_of(self, view_name: str) -> _ObjectState:
        """Return the kernel state attached to a view (primarily for tests)."""
        if view_name not in self._states:
            raise ExecutionError(f"no data object is shown under view {view_name!r}")
        return self._states[view_name]

    def iter_result_streams(self):
        """Yield ``(view_name, ResultStream)`` for every shown data object.

        The serving layer uses this for result-stream backpressure: after a
        session's command executes (still under the scheduler's session
        affinity, so no lock is needed) the server trims each stream to the
        configured retention bound.
        """
        for view_name, state in self._states.items():
            if state.results is not None:
                yield view_name, state.results

    # ------------------------------------------------------------------ #
    # object-data mutation hooks
    # ------------------------------------------------------------------ #
    def invalidate_object(self, object_name: str) -> int:
        """Drop every cached read derived from ``object_name``.

        Called whenever an object's data or physical representation
        mutates (reloads, layout rotations); returns how many cache
        entries were dropped.  Prefetched-rowid bookkeeping is cleared
        alongside, since it tracks exactly those cache entries.
        """
        dropped = self.cache.invalidate(object_name)
        for state in self._states.values():
            if state.object_name == object_name:
                state.prefetched_rowids.clear()
        return dropped

    def refresh_object(self, object_name: str) -> int:
        """Re-bind shown views of ``object_name`` after its data changed.

        Used by the data-reload path: the catalog already holds the new
        table/column under the same name; this re-resolves every shown
        state's storage references, rebuilds sample hierarchies and
        operators, and invalidates the touched-range cache so no stale
        value survives the reload.
        """
        return self._rebind_object(object_name, grew=False)

    def extend_object(self, object_name: str) -> int:
        """Re-bind shown views after rows were *appended* to ``object_name``.

        The growth twin of :meth:`refresh_object`: appends never mutate
        existing rows, so cracked indexes keep their pieces as a valid
        prefix window (:meth:`IndexManager.extend_valid_prefix`) instead
        of being discarded.  Every other effect — touched-range cache,
        hierarchies, joins, operators, view properties — is identical to
        a reload, which is what keeps gesture outcomes bit-identical
        between preloaded and incrementally appended data.
        """
        return self._rebind_object(object_name, grew=True)

    def _rebind_object(self, object_name: str, grew: bool) -> int:
        dropped = self.invalidate_object(object_name)
        # the catalog caches hierarchies per (object, column); they sample
        # the pre-change arrays and must be rebuilt from the new data
        self.catalog.drop_hierarchies_for(object_name)
        # cracked indexes partition the pre-change values; serving rowids
        # computed from vanished data would be silent corruption.  Growth
        # is the one safe case: old rows kept their positions, so the
        # cracker survives as a prefix window over the new length.
        if self.index_manager is not None:
            if grew:
                self.index_manager.extend_valid_prefix(object_name)
            else:
                self.index_manager.invalidate(object_name)
        for view_name, state in self._states.items():
            if state.object_name != object_name:
                continue
            # joins over the old data index values that no longer exist:
            # drop them (and any cached hash tables) without snapshotting,
            # so set_action below rebuilds the join from scratch
            for key in [k for k in self._joins if view_name in k]:
                del self._joins[key]
            self.hash_table_cache.invalidate_participant(view_name)
            properties = state.view.properties
            if state.table is not None:
                state.table = self.catalog.table(object_name)
                # an in-progress incremental rotation was converting the
                # discarded table; drop it, and keep layout reporting
                # paired with the view's orientation (vertical <->
                # COLUMN_STORE everywhere in the kernel)
                state.rotation = None
                state.layout_kind = (
                    LayoutKind.ROW_STORE
                    if properties is not None and properties.orientation == "horizontal"
                    else LayoutKind.COLUMN_STORE
                )
                if properties is not None:
                    properties.num_tuples = len(state.table)
                    properties.num_attributes = state.table.num_columns
                    properties.dtype_names = tuple(
                        c.dtype.name for c in state.table.columns
                    )
                    properties.size_bytes = state.table.size_bytes
            else:
                state.column = self.catalog.resolve_column(
                    object_name, state.column_name
                )
                state.hierarchy = None
                if self.config.enable_samples and state.column.is_numeric:
                    state.hierarchy = self.catalog.hierarchy_for(
                        object_name,
                        state.column_name,
                        factor=self.config.sample_factor,
                    )
                # the touch->rowid mapping works off the view metadata; a
                # reload with a different shape must re-scale it
                if properties is not None:
                    properties.num_tuples = len(state.column)
                    properties.dtype_names = (state.column.dtype.name,)
                    properties.size_bytes = state.column.size_bytes
            # rebuild the action's operators against the new data
            self.set_action(view_name, state.action)
        return dropped

    # ------------------------------------------------------------------ #
    # configuring actions
    # ------------------------------------------------------------------ #
    def set_action(self, view_name: str, action: QueryAction) -> None:
        """Attach a query action to the data object shown in ``view_name``.

        Replacing a JOIN action tears the view's symmetric join down and
        snapshots its hash tables into the :class:`HashTableCache`, so a
        later re-attachment of the join resumes with the tables already
        built (the paper's hash-table reuse across sample copies).  A join
        is a pairwise agreement: tearing it down from either side ends it
        for the partner view too — the partner's slides stop producing
        join matches until one side re-attaches a JOIN action, which
        restores the cached tables.
        """
        state = self.state_of(view_name)
        if state.action.kind is ActionKind.JOIN:
            self._teardown_join(view_name)
        state.action = action
        state.aggregate = None
        state.summarizer = None
        state.group_by = None
        if action.kind is ActionKind.AGGREGATE:
            state.aggregate = make_aggregate(action.aggregate)
        elif action.kind is ActionKind.SUMMARY:
            if state.column is None:
                raise QueryError("interactive summaries require a column object")
            state.summarizer = InteractiveSummarizer(
                state.column,
                k=action.summary_k,
                aggregate=action.aggregate,
                hierarchy=state.hierarchy,
            )
        elif action.kind is ActionKind.GROUP_BY:
            if state.table is None:
                raise QueryError("group-by actions require a table object")
            state.group_by = IncrementalGroupBy(action.aggregate)
        elif action.kind is ActionKind.SELECT_WHERE:
            if state.table is None:
                raise QueryError("select-where plans require a table object")
            missing = [
                name
                for name in (action.where_attribute, *action.select_attributes)
                if name not in state.table
            ]
            if missing:
                raise QueryError(
                    f"table {state.object_name!r} has no attribute(s) {missing}"
                )
        elif action.kind is ActionKind.JOIN:
            partner_view = self._view_for_object(action.join_partner)
            key = frozenset({view_name, partner_view})
            if key not in self._joins:
                # the lexicographically smaller view plays the left input
                # (see _process_touch), so cache lookups use sorted order
                left_name, right_name = sorted((view_name, partner_view))
                cached = self.hash_table_cache.get(left_name, right_name)
                join = SymmetricHashJoin()
                if cached is not None:
                    left, right = cached
                    join._left.update({k: list(v) for k, v in left.items()})
                    join._right.update({k: list(v) for k, v in right.items()})
                self._joins[key] = join

    def _teardown_join(self, view_name: str) -> None:
        """Detach ``view_name``'s join, caching its hash tables for reuse."""
        for key in [k for k in self._joins if view_name in k]:
            join = self._joins.pop(key)
            names = sorted(key)
            if len(names) == 2 and (join.left_cardinality or join.right_cardinality):
                self.hash_table_cache.put(names[0], names[1], join.hash_table_snapshot())

    def _forget_view(self, view_name: str) -> None:
        """Drop join state tied to a view being re-bound to a new object.

        Cached hash-table snapshots are keyed by view names; when a view
        name is reused for a different data object, both the live joins
        and the snapshots built from the previously shown data would
        otherwise leak into the next join attached under that name.
        """
        if view_name not in self._states:
            return
        for key in [k for k in self._joins if view_name in k]:
            del self._joins[key]
        self.hash_table_cache.invalidate_participant(view_name)

    def _view_for_object(self, object_name: str | None) -> str:
        for view_name, state in self._states.items():
            if state.object_name == object_name:
                return view_name
        raise QueryError(f"object {object_name!r} is not shown on the screen")

    # ------------------------------------------------------------------ #
    # gesture dispatch
    # ------------------------------------------------------------------ #
    def handle_stream(self, stream: TouchStream) -> GestureOutcome:
        """Recognize the gesture in ``stream`` and execute it."""
        gesture = self.recognizer.recognize(stream)
        return self.handle_gesture(gesture)

    def handle_gesture(self, gesture: RecognizedGesture) -> GestureOutcome:
        """Execute an already recognized gesture.

        The whole dispatch runs under an ambient ``kernel_exec`` span (a
        no-op unless a sampled trace is active on this thread), so the
        deeper ``crack``/``chunk_fault``/``tail_scan``/``cache_lookup``
        spans attach under one kernel step per gesture.  Tracing measures
        wall time only — outcome counters are untouched.
        """
        state = self.state_of(gesture.view_name)
        with trace_span(
            "kernel_exec",
            gesture=gesture.gesture_type.value,
            view=gesture.view_name,
            object=state.object_name,
        ):
            return self._dispatch_gesture(state, gesture)

    def _dispatch_gesture(
        self, state: "_ObjectState", gesture: RecognizedGesture
    ) -> GestureOutcome:
        if gesture.gesture_type is GestureType.TAP:
            return self._handle_tap(state, gesture)
        if gesture.gesture_type is GestureType.SLIDE:
            return self._handle_slide(state, gesture)
        if gesture.gesture_type in (GestureType.ZOOM_IN, GestureType.ZOOM_OUT):
            return self._handle_zoom(state, gesture)
        if gesture.gesture_type is GestureType.ROTATE:
            return self._handle_rotate(state, gesture)
        if gesture.gesture_type is GestureType.PAN:
            return GestureOutcome(
                gesture_type=GestureType.PAN,
                view_name=gesture.view_name,
                object_name=state.object_name,
                duration_s=gesture.duration,
            )
        raise ExecutionError(f"unsupported gesture type {gesture.gesture_type}")

    # ------------------------------------------------------------------ #
    # tap: reveal one value or one tuple
    # ------------------------------------------------------------------ #
    def _handle_tap(self, state: _ObjectState, gesture: RecognizedGesture) -> GestureOutcome:
        event = gesture.events[-1]
        mapped = self.mapper.map_touch(state.view, event.primary)
        outcome = GestureOutcome(
            gesture_type=GestureType.TAP,
            view_name=gesture.view_name,
            object_name=state.object_name,
            duration_s=gesture.duration,
        )
        if state.table is not None:
            revealed = state.table.tuple_at(mapped.rowid)
            outcome.revealed_tuple = revealed
            value: object = revealed
            outcome.tuples_examined += state.table.num_columns
        else:
            value = state.column.value_at(mapped.rowid)
            outcome.tuples_examined += 1
        outcome.rowids_touched.append(mapped.rowid)
        outcome.entries_returned = 1
        result = state.results.emit(value, mapped.rowid, mapped.fraction, event.timestamp)
        outcome.results.append(result)
        return outcome

    # ------------------------------------------------------------------ #
    # slide: the main query-processing gesture
    # ------------------------------------------------------------------ #
    def _handle_slide(self, state: _ObjectState, gesture: RecognizedGesture) -> GestureOutcome:
        outcome = GestureOutcome(
            gesture_type=GestureType.SLIDE,
            view_name=gesture.view_name,
            object_name=state.object_name,
            duration_s=gesture.duration,
        )
        join = self._join_for(gesture.view_name)
        if self.config.batch_execution and self._batch_executor.supports(state, join):
            batch_outcome = self._batch_executor.execute(state, gesture)
            if batch_outcome is not None:
                self._refine_index(state)
                return batch_outcome
            # the executor proved it cannot replay this gesture exactly
            # (cache evictions possible mid-gesture); run the reference loop
        for event in gesture.events:
            if event.phase is TouchPhase.ENDED or event.phase is TouchPhase.CANCELLED:
                continue
            started = time.perf_counter()
            mapped = self.mapper.map_touch(state.view, event.primary)
            stride = self._update_stride(state, mapped.rowid)
            processed = self._process_touch(state, mapped, event, stride, outcome, join)
            elapsed = time.perf_counter() - started
            if processed:
                outcome.per_touch_latencies_s.append(elapsed)
                self.optimizer.observe_touch(stride, elapsed)
                self._maybe_prefetch(state, event, mapped, stride)
        if state.aggregate is not None:
            outcome.final_aggregate = state.aggregate.current()
        if join is not None:
            outcome.join_matches = join.num_matches
        if self.config.enable_cache:
            # the reference loop probes the cache touch by touch; the trace
            # gets one aggregate annotation instead of per-touch spans
            trace_event(
                "cache_lookup", hits=outcome.cache_hits, misses=outcome.cache_misses
            )
        self._refine_index(state)
        return outcome

    # ------------------------------------------------------------------ #
    # adaptive indexing: gesture-driven refinement + bulk consultation
    # ------------------------------------------------------------------ #
    def _index_target(self, state: _ObjectState) -> tuple[Column, str | None] | None:
        """The (column, column-name) a state's predicate restricts, if any.

        Select-where plans restrict the where attribute regardless of the
        touched attribute; column objects restrict their own values.
        Plain table scans and group-bys apply the predicate to whatever
        attribute is under the finger, so no single column can be indexed
        for them.
        """
        action = state.action
        if (
            action.kind is ActionKind.SELECT_WHERE
            and state.table is not None
            and action.where_attribute is not None
        ):
            return state.table.column(action.where_attribute), action.where_attribute
        if state.column is not None:
            return state.column, state.column_name
        return None

    def _refine_index(self, state: _ObjectState) -> None:
        """Crack the touched column around a qualifying gesture's predicate.

        Runs after the gesture's outcome is fully computed and mutates
        only index-tier state, so outcome counters are bit-identical with
        indexing enabled or disabled — the property the differential
        gesture harness locks down.
        """
        if self.index_manager is None or state.action.predicate is None:
            return
        target = self._index_target(state)
        if target is None:
            return
        column, column_name = target
        if not column.is_numeric:
            return
        with trace_span("crack", object=state.object_name, column=column_name):
            self.index_manager.observe_predicate(
                state.object_name, column_name, column, state.action.predicate
            )

    def select_where(
        self, view_name: str, predicate: Predicate | None = None
    ) -> RangeSelection:
        """Bulk range selection over the object shown in ``view_name``.

        Where a slide evaluates its predicate touch by touch, this answers
        the whole-object question — "every row where the predicate holds"
        — in one call, consulting the adaptive indexing tier when it is
        enabled: cracked pieces for in-memory columns, zonemap-pruned
        chunks for paged ones, full scan otherwise (and always for
        non-range predicates).  The returned rowids are bit-identical to
        the full scan's in every strategy; the consultation itself further
        refines the index, so repeating a predicate keeps getting cheaper.

        For a table shown with a SELECT_WHERE action the predicate
        restricts the action's where-attribute and the action's selected
        attributes are projected into ``selected``; for a column object
        the matching values are returned in ``values``.  ``predicate``
        defaults to the one attached to the view's action.
        """
        state = self.state_of(view_name)
        action = state.action
        if predicate is None:
            predicate = action.predicate
        if predicate is None:
            raise QueryError(
                "select_where needs a predicate, either passed explicitly or "
                "attached to the view's action"
            )
        select_names: list[str] = []
        if state.table is not None:
            if action.kind is not ActionKind.SELECT_WHERE or action.where_attribute is None:
                raise QueryError(
                    "bulk select_where over a table requires a SELECT_WHERE "
                    "action naming the where attribute"
                )
            column = state.table.column(action.where_attribute)
            column_name: str | None = action.where_attribute
            select_names = list(dict.fromkeys(action.select_attributes))
        else:
            column = state.column
            column_name = state.column_name
        started = time.perf_counter()
        selection: RangeSelection | None = None
        if self.index_manager is not None:
            selection = self.index_manager.select_rowids(
                state.object_name, column_name, column, predicate
            )
        if selection is None:
            mask = predicate.mask(column.values)
            selection = RangeSelection(
                object_name=state.object_name,
                column_name=column_name,
                predicate=predicate,
                rowids=np.nonzero(mask)[0].astype(np.int64),
                strategy="scan",
                rows_scanned=len(column),
            )
        if select_names:
            selection.selected = {
                name: state.table.column(name).read_batch(selection.rowids)
                for name in select_names
            }
        elif state.table is None:
            selection.values = column.read_batch(selection.rowids)
        selection.duration_s = time.perf_counter() - started
        return selection

    def _join_for(self, view_name: str) -> SymmetricHashJoin | None:
        for key, join in self._joins.items():
            if view_name in key:
                return join
        return None

    def _update_stride(self, state: _ObjectState, rowid: int) -> int:
        return update_stride(state, rowid)

    def _process_touch(
        self,
        state: _ObjectState,
        mapped: MappedTouch,
        event: TouchEvent,
        stride: int,
        outcome: GestureOutcome,
        join: SymmetricHashJoin | None,
    ) -> bool:
        """Execute the object's action for one touch.  Returns True if the
        touch produced new work (i.e. it was not a duplicate of the previous
        touch position)."""
        if state.last_rowid == mapped.rowid:
            # a paused finger keeps reporting the same position; no new data
            state.last_timestamp = event.timestamp
            return False
        state.last_rowid = mapped.rowid
        state.last_timestamp = event.timestamp
        outcome.rowids_touched.append(mapped.rowid)
        if mapped.rowid in state.prefetched_rowids:
            outcome.prefetch_hits += 1
            state.prefetched_rowids.discard(mapped.rowid)

        action = state.action
        value, tuples_read, level = self._read_value(state, mapped, stride, outcome)
        outcome.tuples_examined += tuples_read
        outcome.served_level_counts[level] = outcome.served_level_counts.get(level, 0) + 1

        if action.predicate is not None and np.isscalar(value):
            if not action.predicate.matches(value):
                return True

        display_value: object | None = value
        if action.kind is ActionKind.SELECT_WHERE:
            # the predicate already passed on the where-attribute value; fetch
            # the selected attributes of the qualifying tuple
            selected = {
                name: state.table.value_at(mapped.rowid, name)
                for name in action.select_attributes
            }
            outcome.tuples_examined += len(selected)
            display_value = selected
        if action.kind is ActionKind.AGGREGATE and state.aggregate is not None:
            display_value = state.aggregate.on_touch(mapped.rowid, value)
        elif action.kind is ActionKind.GROUP_BY and state.group_by is not None:
            if state.table is None:
                raise QueryError("group-by requires a table object")
            row = state.table.tuple_at(mapped.rowid)
            key = row[action.group_key_attribute]
            measure = row[action.measure_attribute]
            display_value = state.group_by.on_touch(mapped.rowid, (key, measure))
            outcome.tuples_examined += 1
        if join is not None:
            partner = self._partner_view(state.view.name)
            # deterministic side assignment: the lexicographically smaller view
            # name plays the left input of the symmetric join
            if partner is None or state.view.name < partner:
                matches = join.on_left(mapped.rowid, self._join_key(value))
            else:
                matches = join.on_right(mapped.rowid, self._join_key(value))
            display_value = f"{self._join_key(value)} ({len(matches)} matches)"

        if display_value is not None:
            result = state.results.emit(
                display_value, mapped.rowid, mapped.fraction, event.timestamp
            )
            outcome.results.append(result)
            outcome.entries_returned += 1
        return True

    @staticmethod
    def _join_key(value: object) -> object:
        if isinstance(value, np.generic):
            return value.item()
        return value

    def _partner_view(self, view_name: str) -> str | None:
        for key in self._joins:
            if view_name in key:
                others = [v for v in key if v != view_name]
                return others[0] if others else None
        return None

    def _effective_summary_k(self, state: _ObjectState) -> int:
        """The summary half-window after the optimizer's latency allowance.

        The adaptive optimizer may shrink the summary window while the
        latency budget is being violated; the user's requested k is scaled
        by the optimizer's current allowance.
        """
        allowance = self.optimizer.current_summary_k / max(1, self.optimizer.base_summary_k)
        return max(1, int(round(state.action.summary_k * allowance)))

    def _cache_namespace(self, state: _ObjectState, attribute_index: int = 0):
        """Cache namespace for one logical read (see module docstring).

        The namespace is a ``(object_name, read_descriptor)`` tuple — the
        object segment stays a separate component so
        :meth:`TouchCache.invalidate` can match it exactly even when
        object names themselves contain ``":"``.  Interactive summaries
        embed the *effective* half-window in the descriptor so entries
        computed at a different ``k`` are never served; attribute-dependent
        table reads embed the attribute index so sliding over different
        attributes of one table cannot poison each other.
        """
        action = state.action
        descriptor = action.kind.value
        if action.kind is ActionKind.SUMMARY:
            descriptor = f"{descriptor}:k{self._effective_summary_k(state)}"
        elif state.table is not None and action.kind is not ActionKind.SELECT_WHERE:
            descriptor = f"{descriptor}:a{attribute_index}"
        return (state.object_name, descriptor)

    def _read_value(
        self,
        state: _ObjectState,
        mapped: MappedTouch,
        stride: int,
        outcome: GestureOutcome,
    ) -> tuple[object, int, int]:
        """Read the data a touch points at, via cache / samples / base data.

        Returns (value, tuples_read, sample_level_served_from).
        """
        action = state.action
        cache_key_object = self._cache_namespace(state, mapped.attribute_index)
        if self.config.enable_cache:
            cached = self.cache.get(cache_key_object, mapped.rowid, stride)
            if cached is not None:
                outcome.cache_hits += 1
                return cached, 0, -1  # -1 marks "served from cache"
            outcome.cache_misses += 1

        level = 0
        if action.kind is ActionKind.SUMMARY and state.summarizer is not None:
            state.summarizer.k = self._effective_summary_k(state)
            summary = state.summarizer.summarize_at(mapped.rowid, stride_hint=stride)
            value: object = summary.value
            tuples_read = summary.values_aggregated
            level = summary.served_from_level
        elif state.table is not None:
            if action.kind is ActionKind.SELECT_WHERE and action.where_attribute is not None:
                # the slide drives the where restriction: read the where
                # attribute regardless of which attribute the finger is over
                column = state.table.column(action.where_attribute)
            else:
                column = state.table.column_at(mapped.attribute_index)
            value = column.value_at(mapped.rowid)
            tuples_read = 1
        else:
            if (
                state.hierarchy is not None
                and self.config.enable_samples
                and stride > 1
            ):
                value, sample_level = state.hierarchy.read_at(mapped.rowid, stride)
                level = sample_level.level
            else:
                value = state.column.value_at(mapped.rowid)
            tuples_read = 1

        if self.config.enable_cache:
            self.cache.put(cache_key_object, mapped.rowid, value, stride)
        return value, tuples_read, level

    def _maybe_prefetch(
        self,
        state: _ObjectState,
        event: TouchEvent,
        mapped: MappedTouch,
        stride: int,
    ) -> None:
        if state.prefetcher is None:
            return
        state.prefetcher.observe(event.timestamp, mapped.rowid)
        num_tuples = (
            len(state.column) if state.column is not None else len(state.table)
        )
        proposals = state.prefetcher.propose(num_tuples, stride=stride)
        action = state.action
        # prefetch must warm the cache with exactly the column _read_value
        # will read under the same namespace: the where attribute for
        # select-where plans, the touched attribute for other table reads
        cache_key_object = self._cache_namespace(state, mapped.attribute_index)
        for rowid in proposals:
            if self.config.enable_cache and self.cache.contains(cache_key_object, rowid, stride):
                continue
            if action.kind is ActionKind.SUMMARY and state.summarizer is not None:
                value = state.summarizer.summarize_at(rowid, stride_hint=stride).value
            elif state.column is not None:
                value = state.column.value_at(rowid)
            elif action.kind is ActionKind.SELECT_WHERE and action.where_attribute is not None:
                value = state.table.column(action.where_attribute).value_at(rowid)
            else:
                value = state.table.column_at(mapped.attribute_index).value_at(rowid)
            if self.config.enable_cache:
                self.cache.put(cache_key_object, rowid, value, stride)
            state.prefetched_rowids.add(rowid)

    # ------------------------------------------------------------------ #
    # zoom: change the object size, hence the touch granularity
    # ------------------------------------------------------------------ #
    def _handle_zoom(self, state: _ObjectState, gesture: RecognizedGesture) -> GestureOutcome:
        scale = gesture.scale if gesture.scale > 0 else 1.0
        # zoomed objects may extend beyond the visible screen (the OS view
        # scrolls); the paper's Figure 4(b) grows a 10 cm object up to 25 cm
        state.view.resize(scale)
        # a rotated table mid-conversion retrieves more data on zoom-in
        if state.rotation is not None and scale > 1.0 and not state.rotation.progress.complete:
            converted = state.rotation.progress.fraction_converted
            state.rotation.convert_rows_for_sample(
                min(1.0, converted + self.config.rotation_sample_fraction)
            )
        return GestureOutcome(
            gesture_type=gesture.gesture_type,
            view_name=gesture.view_name,
            object_name=state.object_name,
            duration_s=gesture.duration,
            zoom_scale=scale,
        )

    # ------------------------------------------------------------------ #
    # rotate: switch physical design
    # ------------------------------------------------------------------ #
    def _handle_rotate(self, state: _ObjectState, gesture: RecognizedGesture) -> GestureOutcome:
        state.view.rotate()
        new_kind = state.layout_kind
        if state.table is not None:
            source = state.layout_kind
            new_kind = (
                LayoutKind.ROW_STORE
                if source is LayoutKind.COLUMN_STORE
                else LayoutKind.COLUMN_STORE
            )
            state.rotation = IncrementalRotation(state.table, source_kind=source)
            state.rotation.convert_rows_for_sample(self.config.rotation_sample_fraction)
            state.layout_kind = new_kind
            # the physical representation is mutating incrementally from
            # here on; cached reads of the old layout must not survive
            self.invalidate_object(state.object_name)
        return GestureOutcome(
            gesture_type=GestureType.ROTATE,
            view_name=gesture.view_name,
            object_name=state.object_name,
            duration_s=gesture.duration,
            layout_kind=new_kind,
        )
