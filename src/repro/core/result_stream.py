"""Result presentation: values that pop up in place and fade away.

In the prototype, each result value appears next to the touch position that
produced it, stays bold for a moment and then fades out to make room for
newer results.  The result stream models that behaviour with simulated
timestamps so the front-end (and the tests) can ask "what is visible right
now, and how faded is it?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import VisualizationError


@dataclass(frozen=True)
class ResultValue:
    """One displayed result value.

    Attributes
    ----------
    value:
        The value (raw scan value, running aggregate, summary...).
    rowid:
        The tuple identifier that produced it.
    position_fraction:
        Where along the data object the value appeared (0 = top, 1 = bottom).
    timestamp:
        Simulated time at which the value appeared.
    """

    value: Any
    rowid: int
    position_fraction: float
    timestamp: float


@dataclass(frozen=True)
class VisibleResult:
    """A result value together with its current opacity."""

    result: ResultValue
    opacity: float


class ResultStream:
    """Time-ordered stream of result values with a fade-out model.

    Parameters
    ----------
    fade_seconds:
        How long a value remains visible after it appears; opacity decays
        linearly from 1 to 0 over this interval.
    max_visible:
        Upper bound on simultaneously visible values (older values are
        considered fully faded once the bound is exceeded).
    max_retained:
        Optional retention bound on the stored history: once exceeded, the
        oldest (long-faded) values are dropped and counted in
        :attr:`total_dropped`.  This is the per-session backpressure knob
        the concurrent serving engine uses — a session whose display is
        never serviced cannot grow its stream without bound.  ``None``
        (the default) retains everything, preserving the single-user
        behaviour.

    Threading: a stream is single-writer by contract.  Under the
    concurrent serving engine the :class:`repro.core.scheduler.GestureScheduler`
    guarantees session affinity (at most one worker inside a session at a
    time), so emission, trimming and inspection never race.
    """

    def __init__(
        self,
        fade_seconds: float = 1.5,
        max_visible: int = 50,
        max_retained: int | None = None,
    ):
        if fade_seconds <= 0:
            raise VisualizationError("fade_seconds must be positive")
        if max_visible < 1:
            raise VisualizationError("max_visible must be at least 1")
        if max_retained is not None and max_retained < 1:
            raise VisualizationError("max_retained must be at least 1 (or None)")
        self.fade_seconds = fade_seconds
        self.max_visible = max_visible
        self.max_retained = max_retained
        self.total_emitted = 0
        self.total_dropped = 0
        self._results: list[ResultValue] = []

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def emit(
        self, value: Any, rowid: int, position_fraction: float, timestamp: float
    ) -> ResultValue:
        """Record a new result value appearing on screen."""
        if not 0.0 <= position_fraction <= 1.0:
            raise VisualizationError("position_fraction must be within [0, 1]")
        if self._results and timestamp < self._results[-1].timestamp:
            raise VisualizationError("result timestamps must be non-decreasing")
        result = ResultValue(
            value=value,
            rowid=rowid,
            position_fraction=position_fraction,
            timestamp=timestamp,
        )
        self._results.append(result)
        self.total_emitted += 1
        self._enforce_retention()
        return result

    def emit_batch(self, values, rowids, position_fractions, timestamps) -> list[ResultValue]:
        """Record a whole gesture's result values in one call.

        Semantically a loop of :meth:`emit` calls: the same validation is
        applied (fractions within [0, 1], non-decreasing timestamps,
        including against the last already-recorded result), but the checks
        run vectorized before any object is created, so a batch either
        lands completely or not at all.  Accepts numpy arrays or plain
        sequences for every argument.
        """
        fraction_arr = np.asarray(position_fractions, dtype=np.float64)
        time_arr = np.asarray(timestamps, dtype=np.float64)
        if fraction_arr.size == 0:
            return []
        if fraction_arr.min() < 0.0 or fraction_arr.max() > 1.0:
            raise VisualizationError("position_fraction must be within [0, 1]")
        previous = self._results[-1].timestamp if self._results else None
        if (previous is not None and time_arr[0] < previous) or (
            time_arr.size > 1 and bool(np.any(np.diff(time_arr) < 0))
        ):
            raise VisualizationError("result timestamps must be non-decreasing")
        value_list = values.tolist() if isinstance(values, np.ndarray) else values
        rowid_list = (
            rowids.tolist() if isinstance(rowids, np.ndarray) else [int(r) for r in rowids]
        )
        # bulk construction: __new__ + direct __dict__ fill skips the frozen
        # dataclass __init__ (4 object.__setattr__ calls per result), which
        # dominates dense-gesture emission
        new = ResultValue.__new__
        emitted: list[ResultValue] = []
        append = emitted.append
        for value, rowid, fraction, timestamp in zip(
            value_list, rowid_list, fraction_arr.tolist(), time_arr.tolist()
        ):
            result = new(ResultValue)
            result.__dict__["value"] = value
            result.__dict__["rowid"] = rowid
            result.__dict__["position_fraction"] = fraction
            result.__dict__["timestamp"] = timestamp
            append(result)
        self._results.extend(emitted)
        self.total_emitted += len(emitted)
        self._enforce_retention()
        return emitted

    def _enforce_retention(self) -> int:
        """Drop the oldest values beyond ``max_retained``; returns the count."""
        if self.max_retained is None:
            return 0
        overflow = len(self._results) - self.max_retained
        if overflow <= 0:
            return 0
        del self._results[:overflow]
        self.total_dropped += overflow
        return overflow

    def trim(self, max_retained: int | None = None) -> int:
        """Trim the retained history to ``max_retained`` values (or the
        stream's own bound when omitted); returns how many were dropped.

        The serving engine calls this after every executed command for
        sessions configured with result backpressure.
        """
        if max_retained is None:
            return self._enforce_retention()
        if max_retained < 1:
            raise VisualizationError("max_retained must be at least 1")
        overflow = len(self._results) - max_retained
        if overflow <= 0:
            return 0
        del self._results[:overflow]
        self.total_dropped += overflow
        return overflow

    @property
    def backlog(self) -> int:
        """How many result values the stream currently retains."""
        return len(self._results)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._results)

    @property
    def all_results(self) -> list[ResultValue]:
        """Every result emitted so far, oldest first."""
        return list(self._results)

    @property
    def values(self) -> list[Any]:
        """Just the emitted values, oldest first."""
        return [r.value for r in self._results]

    def opacity_at(self, result: ResultValue, now: float) -> float:
        """Opacity of ``result`` at simulated time ``now`` (1 = fresh, 0 = gone)."""
        age = now - result.timestamp
        if age < 0:
            return 1.0
        if age >= self.fade_seconds:
            return 0.0
        return 1.0 - age / self.fade_seconds

    def visible_at(self, now: float) -> list[VisibleResult]:
        """Results still visible at ``now``, newest last, with opacities."""
        visible = [
            VisibleResult(result=r, opacity=self.opacity_at(r, now))
            for r in self._results
            if self.opacity_at(r, now) > 0.0
        ]
        return visible[-self.max_visible :]

    def most_recent(self) -> ResultValue | None:
        """The newest result (the boldest value on screen), if any."""
        return self._results[-1] if self._results else None

    def clear(self) -> None:
        """Forget everything (a new exploration starts)."""
        self._results.clear()
        self.total_emitted = 0
        self.total_dropped = 0
