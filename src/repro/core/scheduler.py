"""Concurrent gesture scheduling: many sessions, one worker pool.

The dbTouch vision is a kernel that keeps up with a *continuous stream of
touches* from many users at once.  :class:`GestureScheduler` is the engine
room for that: a fixed pool of worker threads executes work items (gesture
commands, data loads) submitted for many sessions *in parallel across
sessions* while preserving three guarantees that make concurrent serving
safe for the dbTouch kernel:

**Per-session FIFO.**  Work submitted for one session executes in
submission order, one item at a time.  A session is dispatched to at most
one worker at any moment (session affinity), so per-session kernel state —
touch caches, sample hierarchies, slide-stride tracking, result streams —
is only ever touched by a single thread at a time and needs no internal
locking.

**Deterministic outcomes.**  Because each session's command sequence is
serial and its kernel state private, the per-session
:class:`repro.core.kernel.GestureOutcome` counters (entries returned,
tuples examined, cache and prefetch hits) are bit-identical to a serial
replay of the same commands, regardless of worker count or interleaving.
(The one caveat is the adaptive latency budget: wall-clock budget
violations can shrink the summary window.  Parity-sensitive runs pin
``KernelConfig.latency_budget_s`` high so the budget is never violated;
see the README's "Serving many users" section.)

**Bounded queues.**  Admission control rejects new work outright with
:class:`repro.errors.AdmissionError` once the global pending count reaches
``max_pending`` (load shedding), and a full per-session queue blocks the
submitting producer for up to ``submit_block_s`` before rejecting
(backpressure).  The hosting server pairs this with a retention bound on
each session's :class:`repro.core.result_stream.ResultStream`
(``result_retention``, armed once per session), so an unserviced display
stream cannot grow without bound either.

Think-time pacing: every work item carries a ``think_s`` delay — the gap a
user leaves between receiving one result and issuing the next gesture.
The scheduler enforces it *without occupying a worker*: a session whose
next command is still in its think window parks on a timer heap and other
sessions' work runs in the meantime.  This is precisely what a serial
server cannot do (it must wait each user's pause out inline), and it is
where the multi-session throughput win comes from.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import AdmissionError, ServiceError

#: Reserved lane for host-side maintenance work (sample materialization,
#: snapshot writes).  It behaves like a session — FIFO, at most one worker
#: at a time — so with two or more workers, background items can never
#: occupy more than one worker and gesture traffic keeps flowing.
BACKGROUND_LANE = "__background__"


@dataclass
class SchedulerConfig:
    """Tunable behaviour of a :class:`GestureScheduler`.

    Attributes
    ----------
    num_workers:
        Worker threads executing session work in parallel.
    max_pending:
        Global admission bound: once this many items are queued or
        executing across all sessions, further submits are rejected
        immediately with :class:`repro.errors.AdmissionError`.
    max_session_pending:
        Per-session queue bound.  A submit against a full session queue
        blocks (backpressure on the producer) until space frees up or
        ``submit_block_s`` elapses, then raises ``AdmissionError``.
    submit_block_s:
        How long a backpressured submit may block before being rejected.
    result_retention:
        When set, the hosting server bounds each session's result streams
        to at most this many retained values — armed once at session open
        and enforced by the streams at emission time (per-session
        backpressure on the display stream).  ``None`` leaves streams
        unbounded.
    """

    num_workers: int = 4
    max_pending: int = 4096
    max_session_pending: int = 512
    submit_block_s: float = 5.0
    result_retention: int | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ServiceError("scheduler needs at least one worker")
        if self.max_pending < 1:
            raise ServiceError("max_pending must be at least 1")
        if self.max_session_pending < 1:
            raise ServiceError("max_session_pending must be at least 1")
        if self.submit_block_s < 0:
            raise ServiceError("submit_block_s cannot be negative")
        if self.result_retention is not None and self.result_retention < 1:
            raise ServiceError("result_retention must be at least 1 (or None)")


@dataclass
class SchedulerStats:
    """Counters describing everything a scheduler has done so far.

    Mutated only under the scheduler lock; read without it (single-word
    int reads are atomic in CPython), so snapshots are cheap.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    cancelled: int = 0
    post_exec_errors: int = 0
    peak_pending: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "post_exec_errors": self.post_exec_errors,
            "peak_pending": self.peak_pending,
        }


@dataclass
class _WorkItem:
    """One queued unit of session work."""

    work: Callable[[], Any]
    future: Future
    think_s: float = 0.0


class GestureScheduler:
    """Execute per-session work FIFO on a shared pool of worker threads.

    The scheduler is deliberately generic: it runs thunks, not commands,
    so the serving layer (:class:`repro.service.MultiSessionServer`) can
    route *anything* that must respect a session's command order through
    it — gesture commands and mid-traffic data reloads alike.

    Parameters
    ----------
    config:
        Pool size and queue bounds; defaults to :class:`SchedulerConfig`.
    post_exec:
        Optional hook called after every executed item, still under the
        session's affinity (no other worker can touch the session while
        it runs) — for per-command maintenance a host wants serialized
        with the session's own work.
    """

    def __init__(
        self,
        config: SchedulerConfig | None = None,
        post_exec: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config if config is not None else SchedulerConfig()
        self.stats = SchedulerStats()
        self._post_exec = post_exec
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._space_available = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queues: dict[str, deque[_WorkItem]] = {}
        self._ready: deque[str] = deque()
        self._delayed: list[tuple[float, int, str]] = []
        self._delay_seq = itertools.count()
        #: sessions currently sitting in ``_ready`` or ``_delayed``
        self._scheduled: set[str] = set()
        #: sessions currently running on a worker
        self._executing: set[str] = set()
        #: sessions being torn down (submit rejects while a close waits
        #: out the in-flight item, so no future can be stranded)
        self._closing: set[str] = set()
        self._pending_total = 0
        self._stop = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"gesture-worker-{i}", daemon=True
            )
            for i in range(self.config.num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # session registry
    # ------------------------------------------------------------------ #
    def register_session(self, session_id: str) -> None:
        """Create the FIFO queue for a new session."""
        if session_id == BACKGROUND_LANE:
            raise ServiceError(
                f"session id {BACKGROUND_LANE!r} is reserved for the background lane"
            )
        with self._lock:
            if self._stop:
                raise ServiceError("scheduler is shut down")
            if session_id in self._queues:
                raise ServiceError(f"session {session_id!r} is already registered")
            self._queues[session_id] = deque()

    def unregister_session(self, session_id: str) -> int:
        """Remove a session: cancel its queued work, wait out in-flight work.

        Returns how many queued (not yet started) items were cancelled.
        The in-flight item, if any, completes normally — its future
        resolves — before the session disappears.  Submissions racing the
        teardown are rejected (``ServiceError``) from the moment this is
        called, so no accepted future can be silently dropped.
        """
        if session_id == BACKGROUND_LANE:
            raise ServiceError("the background lane cannot be unregistered")
        with self._lock:
            queue = self._queues.get(session_id)
            if queue is None or session_id in self._closing:
                raise ServiceError(f"session {session_id!r} is not registered")
            self._closing.add(session_id)
            try:
                cancelled = self._cancel_queue(queue)
                self._scheduled.discard(session_id)
                while session_id in self._executing:
                    self._space_available.wait()
                # nothing can have been enqueued while we waited (submit
                # rejects closing sessions); drain defensively anyway
                cancelled += self._cancel_queue(queue)
                del self._queues[session_id]
            finally:
                self._closing.discard(session_id)
            self._space_available.notify_all()
            if self._pending_total == 0:
                self._idle.notify_all()
            return cancelled

    def _cancel_queue(self, queue: deque[_WorkItem]) -> int:
        """Cancel every queued item (lock held); returns how many."""
        cancelled = 0
        while queue:
            item = queue.popleft()
            if item.future.cancel():
                cancelled += 1
            self._pending_total -= 1
        self.stats.cancelled += cancelled
        return cancelled

    @property
    def session_ids(self) -> list[str]:
        """Identifiers of every registered session (the lane excluded)."""
        with self._lock:
            return sorted(sid for sid in self._queues if sid != BACKGROUND_LANE)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self, session_id: str, work: Callable[[], Any], think_s: float = 0.0
    ) -> Future:
        """Queue one unit of work for a session and return its future.

        ``think_s`` is enforced as a minimum gap between the completion of
        the session's previous item and the start of this one (for the
        session's first item: from submission).  Raises
        :class:`repro.errors.AdmissionError` when the global queue is full
        or the per-session queue stays full beyond ``submit_block_s``.
        """
        if think_s < 0:
            raise ServiceError("think_s cannot be negative")
        deadline: float | None = None
        with self._lock:
            while True:
                if self._stop:
                    raise ServiceError("scheduler is shut down")
                queue = self._queues.get(session_id)
                if queue is None or session_id in self._closing:
                    raise ServiceError(f"session {session_id!r} is not registered")
                if self._pending_total >= self.config.max_pending:
                    self.stats.rejected += 1
                    raise AdmissionError(
                        f"scheduler is at capacity ({self.config.max_pending} pending items)"
                    )
                if len(queue) < self.config.max_session_pending:
                    break
                now = time.monotonic()
                if deadline is None:
                    deadline = now + self.config.submit_block_s
                if now >= deadline:
                    self.stats.rejected += 1
                    raise AdmissionError(
                        f"session {session_id!r} queue stayed full for "
                        f"{self.config.submit_block_s:.3f}s ({len(queue)} items)"
                    )
                self._space_available.wait(timeout=deadline - now)
            item = _WorkItem(work=work, future=Future(), think_s=think_s)
            queue.append(item)
            self._pending_total += 1
            self.stats.submitted += 1
            self.stats.peak_pending = max(self.stats.peak_pending, self._pending_total)
            if (
                session_id not in self._executing
                and session_id not in self._scheduled
            ):
                # idle session: its new head becomes runnable after think_s
                self._schedule_session(session_id, item.think_s)
            return item.future

    def submit_background(self, work: Callable[[], Any]) -> Future:
        """Queue maintenance work on the scheduler's background lane.

        The lane (:data:`BACKGROUND_LANE`) is registered lazily on first
        use and shares the pool under the ordinary session rules: strictly
        FIFO, dispatched to at most one worker at a time, subject to the
        same admission bounds.  Session affinity is what keeps gesture
        traffic unblocked — however much materialization work is queued,
        it can monopolize only a single worker while every other worker
        stays available for gestures.
        """
        with self._lock:
            if self._stop:
                raise ServiceError("scheduler is shut down")
            if BACKGROUND_LANE not in self._queues:
                self._queues[BACKGROUND_LANE] = deque()
        return self.submit(BACKGROUND_LANE, work)

    def _schedule_session(self, session_id: str, delay_s: float) -> None:
        """Mark a session runnable now or after ``delay_s`` (lock held)."""
        self._scheduled.add(session_id)
        if delay_s > 0:
            heapq.heappush(
                self._delayed,
                (time.monotonic() + delay_s, next(self._delay_seq), session_id),
            )
            # a sleeping worker may need to shorten its timed wait
            self._work_available.notify()
        else:
            self._ready.append(session_id)
            self._work_available.notify()

    # ------------------------------------------------------------------ #
    # worker loop
    # ------------------------------------------------------------------ #
    def _next_item(self) -> tuple[str, _WorkItem] | None:
        """Block until a session head is runnable; ``None`` means exit (lock held)."""
        while True:
            now = time.monotonic()
            while self._delayed and self._delayed[0][0] <= now:
                _, _, session_id = heapq.heappop(self._delayed)
                if session_id in self._scheduled:
                    self._ready.append(session_id)
            while self._ready:
                session_id = self._ready.popleft()
                if session_id not in self._scheduled:
                    continue  # stale entry (session unregistered or re-queued)
                self._scheduled.discard(session_id)
                queue = self._queues.get(session_id)
                if not queue or session_id in self._executing:
                    continue
                item = queue.popleft()
                self._executing.add(session_id)
                if self._delayed:
                    # this worker may have been the one watching the timer
                    # heap (timed wait); hand the watch to another idle
                    # worker so a parked session's deadline is never missed
                    # while workers sleep in untimed waits
                    self._work_available.notify()
                return session_id, item
            if self._stop and self._pending_total == 0:
                return None
            timeout = None
            if self._delayed:
                timeout = max(0.0, self._delayed[0][0] - now)
            self._work_available.wait(timeout=timeout)

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                dispatched = self._next_item()
            if dispatched is None:
                return
            session_id, item = dispatched
            executed = item.future.set_running_or_notify_cancel()
            failed = False
            if executed:
                try:
                    result = item.work()
                except BaseException as exc:  # noqa: BLE001 - delivered to the caller
                    item.future.set_exception(exc)
                    failed = True
                else:
                    item.future.set_result(result)
                if self._post_exec is not None:
                    try:
                        self._post_exec(session_id)
                    except Exception:
                        with self._lock:
                            self.stats.post_exec_errors += 1
            with self._lock:
                self._executing.discard(session_id)
                self._pending_total -= 1
                if executed:
                    self.stats.completed += 1
                    if failed:
                        self.stats.failed += 1
                else:
                    # cancelled between dispatch and execution
                    self.stats.cancelled += 1
                queue = self._queues.get(session_id)
                if queue:
                    self._schedule_session(session_id, queue[0].think_s)
                self._space_available.notify_all()
                if self._pending_total == 0:
                    self._idle.notify_all()
                    if self._stop:
                        # wake workers parked in _next_item so they can exit
                        self._work_available.notify_all()

    # ------------------------------------------------------------------ #
    # introspection and lifecycle
    # ------------------------------------------------------------------ #
    def queue_depth(self, session_id: str | None = None) -> int:
        """Items queued or executing — for one session, or in total."""
        with self._lock:
            if session_id is None:
                return self._pending_total
            queue = self._queues.get(session_id)
            if queue is None:
                raise ServiceError(f"session {session_id!r} is not registered")
            return len(queue) + (1 if session_id in self._executing else 0)

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every queued item (including delayed ones) finished.

        Returns ``False`` if ``timeout`` elapsed with work still pending.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._pending_total > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
            return True

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting work and (optionally) wait for the pool to exit.

        With ``cancel_pending``, queued-but-unstarted items are cancelled;
        otherwise the workers drain every queue (respecting think delays)
        before exiting.
        """
        with self._lock:
            self._stop = True
            if cancel_pending:
                for queue in self._queues.values():
                    self._cancel_queue(queue)
                self._scheduled.clear()
                if self._pending_total == 0:
                    self._idle.notify_all()
            self._space_available.notify_all()
            self._work_available.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "GestureScheduler":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown(wait=True, cancel_pending=exc_type is not None)
        return False
