"""Vectorized batch execution of slide gestures.

The per-touch reference path in :class:`repro.core.kernel.DbTouchKernel`
executes a slide one event at a time: map the touch, detect the stride,
probe the cache, read the value, fold the aggregate, emit the result.
That loop is pure Python and its cost per touch dwarfs the cost of the
actual data access, so a fast digitizer (thousands of events per gesture)
blows the per-touch latency budget on interpreter overhead alone.

:class:`BatchSlideExecutor` runs the same gesture as a handful of numpy
passes over whole arrays:

1. :meth:`repro.core.touch_mapping.TouchMapper.map_batch` converts the
   entire event stream to rowid/fraction arrays in one Rule-of-Three pass;
2. :func:`dedupe_slide_batch` removes paused-finger duplicates and derives
   the per-touch stride sequence with ``np.diff``;
3. sample-hierarchy reads, summary windows, predicates and running
   aggregates are applied with the batched APIs
   (:meth:`~repro.storage.sample.SampleHierarchy.read_batch`,
   :meth:`~repro.core.summaries.InteractiveSummarizer.summarize_batch`,
   :meth:`~repro.engine.filter.Predicate.mask`,
   :meth:`~repro.engine.aggregate.RunningAggregate.on_batch`);
4. the cache/prefetch feedback loop is resolved analytically: every read
   and every extrapolated prefetch proposal is given a position on one
   sequential event timeline, and a single "first writer per cache key"
   pass reproduces which touches the per-touch loop would have served
   from the cache, which prefetch proposals would have landed, and which
   touches would have consumed them.

The executor produces the same deterministic
:class:`~repro.core.kernel.GestureOutcome` fields as the reference loop —
``rowids_touched``, ``tuples_examined``, ``entries_returned``,
``cache_hits``/``cache_misses``, ``prefetch_hits``,
``served_level_counts`` and (for exactly-representable inputs)
``final_aggregate`` — while being an order of magnitude faster on dense
gestures.  Two documented deviations from the reference path: per-touch
wall-clock latencies are amortized (batch time divided by touches), and
the adaptive optimizer adjusts the summary window once per gesture rather
than once per violating touch — so when the latency budget is actually
violated mid-gesture (a timing-dependent condition no replay can
reproduce bit-exactly), a SUMMARY gesture's window sizes, and with them
``tuples_examined`` and the displayed values, may differ from what the
per-touch loop's touch-by-touch shrinking would have produced.  Counter
parity is exact whenever the budget is honored.

Adaptive-index *refinement* is not part of batch execution: the kernel
cracks the touched column around a qualifying gesture's predicate bounds
only after this executor (or the reference loop) has fully produced the
outcome, so the counters above are bit-identical whether the indexing
tier is enabled or not — the invariant the differential gesture harness
(``tests/test_differential_gestures.py``) replays seeded scripts to lock
down.  Index *consultation* is: a dense range-filtered SELECT_WHERE
slide running without the touched-range cache answers its predicate
through :meth:`~repro.indexing.manager.IndexManager.select_rowids`
membership instead of reading one where-value per touch
(:meth:`BatchSlideExecutor._index_prefilter`).  The selection is
bit-identical to evaluating the predicate on every touched value, and
the skipped reads are accounted analytically (the table path examines
exactly one tuple per touch), so ``tuples_examined`` and every other
counter still match the reference loop exactly.

Mid-gesture cache evictions are not simulated.  Instead, before touching
any state the executor *proves* the gesture eviction-free: for every
cache-key reference it bounds how many distinct keys the LRU could have
refreshed since that key's previous insertion or hit, and when any bound
reaches the cache capacity — a revisit-after-eviction is then possible —
``execute`` returns ``None`` and the kernel runs the gesture on the
per-touch reference loop, keeping results exact in every configuration.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict

import numpy as np

from repro.core.actions import ActionKind
from repro.obs.trace import trace_span
from repro.touchio.recognizer import GestureType

_INT64_MAX = np.iinfo(np.int64).max
#: Per-touch latencies are quantized to multiples of 2^-40 s (~1 ps): n
#: such multiples (n * value < 2^53 quanta) sum exactly in float64, so the
#: mean of the constant amortized-latency list equals its max.
_LATENCY_QUANTUM = float(2**40)


def dedupe_slide_batch(
    rowids: np.ndarray,
    last_rowid: int | None,
    current_stride: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Run-deduplicate a mapped slide and derive its stride sequence.

    Mirrors the per-touch rule exactly: a touch reporting the same rowid as
    the previous *processed* touch (including ``last_rowid`` carried over
    from an earlier gesture) is dropped, and each kept touch's stride is
    the absolute rowid distance to its predecessor, with ``current_stride``
    carried into the first touch when no distance is available yet.

    Returns ``(keep_mask, strides)`` where ``keep_mask`` indexes the input
    and ``strides`` aligns with the *kept* touches.
    """
    r = np.asarray(rowids, dtype=np.int64)
    n = r.size
    keep = np.empty(n, dtype=bool)
    if n == 0:
        return keep, np.empty(0, dtype=np.int64)
    keep[0] = last_rowid is None or int(r[0]) != int(last_rowid)
    np.not_equal(r[1:], r[:-1], out=keep[1:])
    kept = r[keep]
    strides = np.empty(kept.size, dtype=np.int64)
    if kept.size == 0:
        return keep, strides
    if kept.size > 1:
        strides[1:] = np.abs(np.diff(kept))
    first = abs(int(kept[0]) - int(last_rowid)) if last_rowid is not None else 0
    strides[0] = first if first > 0 else max(1, int(current_stride))
    return keep, strides


class BatchSlideExecutor:
    """Executes slide gestures over whole touch arrays at once.

    Owned by a :class:`~repro.core.kernel.DbTouchKernel`; the kernel
    dispatches to :meth:`execute` when ``KernelConfig.batch_execution`` is
    on and :meth:`supports` accepts the object/action combination.  The
    per-touch loop remains the reference implementation for join,
    group-by and attribute-dependent table scans.
    """

    def __init__(self, kernel) -> None:
        self._kernel = kernel

    # ------------------------------------------------------------------ #
    # eligibility
    # ------------------------------------------------------------------ #
    def supports(self, state, join) -> bool:
        """Whether this gesture can take the vectorized path."""
        if join is not None:
            return False
        action = state.action
        if action.kind in (ActionKind.SCAN, ActionKind.AGGREGATE, ActionKind.SUMMARY):
            if state.column is None:
                return False  # table scans read a per-touch attribute
            if action.kind is ActionKind.SUMMARY and state.summarizer is None:
                return False
            if action.kind is ActionKind.AGGREGATE and state.aggregate is None:
                return False
            return True
        if action.kind is ActionKind.SELECT_WHERE:
            return state.table is not None and action.where_attribute is not None
        return False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, state, gesture):
        """Execute one recognized slide gesture and return its outcome.

        Returns ``None`` — without having mutated any kernel, cache or
        prefetcher state — when the eviction-safety probe cannot prove the
        gesture exact under the configured cache capacity; the kernel then
        falls back to the per-touch reference loop.
        """
        from repro.core.kernel import GestureOutcome

        kernel = self._kernel
        outcome = GestureOutcome(
            gesture_type=GestureType.SLIDE,
            view_name=gesture.view_name,
            object_name=state.object_name,
            duration_s=gesture.duration,
        )
        started = time.perf_counter()
        batch = kernel.mapper.map_batch(state.view, gesture.events, active_only=True)
        if len(batch) == 0:
            self._finalize(state, outcome)
            return outcome
        keep, strides = dedupe_slide_batch(
            batch.rowids, state.last_rowid, state.current_stride
        )
        state.last_timestamp = float(batch.timestamps[-1])
        rowids = batch.rowids[keep]
        if rowids.size == 0:
            self._finalize(state, outcome)
            return outcome
        fractions = batch.fractions[keep]
        timestamps = batch.timestamps[keep]
        n = int(rowids.size)

        served = self._serve_values(state, rowids, strides, timestamps, outcome)
        if served is None:
            return None  # eviction risk: the reference loop takes over
        values, levels, pass_rowids = served
        outcome.rowids_touched.extend(rowids.tolist())
        self._count_levels(outcome, levels)
        self._apply_action(
            state, outcome, rowids, values, fractions, timestamps, pass_rowids
        )

        state.last_rowid = int(rowids[-1])
        state.current_stride = int(strides[-1])
        elapsed = time.perf_counter() - started
        # amortized per-touch latency, quantized to 2^-40 s so that summing
        # n copies is exact float arithmetic and mean == max holds for the
        # constant latency list (unquantized, the sum can round 1 ulp up)
        per_touch = math.floor((elapsed / n) * _LATENCY_QUANTUM) / _LATENCY_QUANTUM
        outcome.per_touch_latencies_s = [per_touch] * n
        kernel.optimizer.observe_batch(strides, per_touch)
        self._finalize(state, outcome)
        return outcome

    @staticmethod
    def _finalize(state, outcome) -> None:
        if state.aggregate is not None:
            outcome.final_aggregate = state.aggregate.current()

    @staticmethod
    def _count_levels(outcome, levels: np.ndarray) -> None:
        unique_levels, counts = np.unique(levels, return_counts=True)
        served = outcome.served_level_counts
        for level, count in zip(unique_levels.tolist(), counts.tolist()):
            served[level] = served.get(level, 0) + count

    # ------------------------------------------------------------------ #
    # reading values through cache / samples / prefetch
    # ------------------------------------------------------------------ #
    def _serve_values(self, state, rowids, strides, timestamps, outcome):
        """Serve one value per processed touch, replaying the cache and
        prefetch feedback loop analytically.  Returns ``(values, levels,
        pass_rowids)`` with level ``-1`` marking cache-served touches, and
        updates the outcome's cache/prefetch/tuple counters.  When the
        index prefilter answers the gesture's predicate, ``values`` is
        ``None`` and ``pass_rowids`` holds the qualifying rowids;
        otherwise ``pass_rowids`` is ``None``."""
        kernel = self._kernel
        config = kernel.config
        action = state.action
        n = int(rowids.size)
        num_tuples = len(state.column) if state.column is not None else len(state.table)
        if action.kind is ActionKind.SUMMARY:
            state.summarizer.k = kernel._effective_summary_k(state)
        namespace = kernel._cache_namespace(state)

        # --- extrapolated prefetch proposals, placed on the event timeline.
        # Read j happens at time j*slots; its proposals at j*slots + rank,
        # i.e. strictly after the read and strictly before read j+1 —
        # exactly the interleaving of the per-touch loop.
        prefetcher = state.prefetcher
        if prefetcher is not None:
            # proposals are computed side-effect free; the observation
            # history is committed only once the gesture is known to stay
            # on the batch path
            prop_rows, prop_src, prop_rank = prefetcher.propose_batch(
                timestamps, rowids, strides, num_tuples, commit=False
            )
        else:
            prop_rows = np.empty(0, dtype=np.int64)
            prop_src = np.empty(0, dtype=np.int64)
            prop_rank = np.empty(0, dtype=np.int64)
        slots = (prefetcher.max_prefetch if prefetcher is not None else 1) + 1
        read_times = np.arange(n, dtype=np.int64) * slots
        prop_times = prop_src * slots + prop_rank

        pass_rowids = None
        if config.enable_cache:
            with trace_span("cache_lookup", touches=n) as span:
                served = self._serve_with_cache(
                    state, namespace, rowids, strides, read_times,
                    prop_rows, prop_src, prop_times, outcome,
                )
                if span is not None and served is not None:
                    span.tags["hits"] = outcome.cache_hits
                    span.tags["misses"] = outcome.cache_misses
            if served is None:
                return None
            values, levels, add_rows, add_times = served
        else:
            pass_rowids = self._index_prefilter(state)
            if pass_rowids is not None:
                # the index answers the predicate wholesale; the skipped
                # touch reads are accounted analytically — the table path
                # examines exactly one tuple per touch
                values = None
                levels = np.zeros(n, dtype=np.int64)
                outcome.tuples_examined += n
            else:
                values, counts, levels = self._read_rows(state, rowids, strides)
                outcome.tuples_examined += int(counts.sum())
            # without a cache the sequential loop still computes a value for
            # every proposal (same side effects, e.g. summarizer counters)
            # and remembers every proposed rowid
            if prop_rows.size:
                self._read_rows(state, prop_rows, strides[prop_src], prefetch=True)
            add_rows, add_times = prop_rows, prop_times

        if prefetcher is not None:
            prefetcher.commit_observations(timestamps, rowids, int(prop_rows.size))
        hits = self._prefetch_membership(
            state, rowids, read_times, add_rows, add_times
        )
        outcome.prefetch_hits += hits
        return values, levels, pass_rowids

    def _index_prefilter(self, state):
        """Qualifying rowids for a select-where slide, answered by the
        adaptive index instead of reading one where-value per touch.

        Only taken when the touched-range cache is off: with the cache
        on, skipping the reads would change which values enter the cache
        and the LRU replay would diverge from the per-touch loop.  The
        returned rowids are bit-identical to evaluating the predicate on
        every touched value (the :class:`~repro.indexing.manager.
        IndexManager` contract), so predicate membership reproduces the
        reference loop's pass/fail decisions exactly.  Returns ``None``
        when the index cannot answer (indexing off, non-range predicate,
        non-numeric where column) and the read path takes over.
        """
        kernel = self._kernel
        action = state.action
        if (
            kernel.index_manager is None
            or kernel.config.enable_cache
            or action.kind is not ActionKind.SELECT_WHERE
            or state.table is None
            or action.predicate is None
        ):
            return None
        column = state.table.column(action.where_attribute)
        selection = kernel.index_manager.select_rowids(
            state.object_name, action.where_attribute, column, action.predicate
        )
        return None if selection is None else selection.rowids

    def _serve_with_cache(
        self, state, namespace, rowids, strides, read_times,
        prop_rows, prop_src, prop_times, outcome,
    ):
        """First-writer analysis over one gesture's reads and prefetches.

        A cache key becomes present the first time any event (a missing
        read, which puts its value, or an eligible prefetch proposal)
        references it; every later read of that key is a hit served with
        the first writer's value.  This reproduces the per-touch loop's
        interleaved get/put sequence without executing it.

        The analysis assumes no entry referenced by this gesture is
        evicted mid-gesture; :meth:`_eviction_safe` proves that before any
        state is touched, and on failure this method returns ``None`` so
        the gesture re-runs on the reference loop.
        """
        kernel = self._kernel
        cache = kernel.cache
        n = int(rowids.size)
        read_keys = cache.collapsed_keys(rowids, strides)
        prop_keys = cache.collapsed_keys(prop_rows, strides[prop_src])
        all_keys = np.concatenate([read_keys, prop_keys])
        all_times = np.concatenate([read_times, prop_times])
        unique_keys, first_idx, inverse = np.unique(
            all_keys, return_index=True, return_inverse=True
        )
        arrival = np.full(unique_keys.size, _INT64_MAX, dtype=np.int64)
        np.minimum.at(arrival, inverse, all_times)

        # probe the pre-gesture cache by iterating its (capacity-bounded)
        # namespace once — no statistics or LRU side effects, so the
        # eviction-safety check can still bail out leaving it untouched
        present0 = np.isin(unique_keys, cache.collapsed_namespace_keys(namespace))
        if not self._eviction_safe(
            cache, present0, arrival, inverse, all_times, read_times
        ):
            return None
        rep_rowids = np.concatenate([rowids, prop_rows])[first_idx]
        rep_strides = np.concatenate([strides, strides[prop_src]])[first_idx]
        present_idx = np.nonzero(present0)[0]
        cached_values: list = []
        if present_idx.size:
            cached_values, _ = cache.get_many(
                namespace,
                rep_rowids[present_idx],
                rep_strides[present_idx],
                count_stats=False,
                touch_lru=False,
            )

        touch_u = inverse[:n]
        hit_mask = present0[touch_u] | (arrival[touch_u] < read_times)
        miss_mask = ~hit_mask

        miss_vals, miss_counts, miss_levels = self._read_rows(
            state, rowids[miss_mask], strides[miss_mask]
        )
        if prop_rows.size:
            prop_u = inverse[n:]
            winners = (~present0[prop_u]) & (arrival[prop_u] == prop_times)
        else:
            winners = np.empty(0, dtype=bool)
        pf_rows = prop_rows[winners]
        pf_strides = strides[prop_src[winners]]
        pf_vals, _, _ = self._read_rows(state, pf_rows, pf_strides, prefetch=True)

        # value stored under each key: pre-gesture entry or first writer
        key_vals = np.empty(unique_keys.size, dtype=self._value_dtype(state))
        if present_idx.size:
            key_vals[present_idx] = np.asarray(cached_values, dtype=key_vals.dtype)
        key_vals[touch_u[miss_mask]] = miss_vals
        if pf_rows.size:
            key_vals[prop_u[winners]] = pf_vals

        values = np.empty(n, dtype=key_vals.dtype)
        values[miss_mask] = miss_vals
        values[hit_mask] = key_vals[touch_u[hit_mask]]

        # replay one LRU event per touched entry — its last insertion or
        # hit, in event order — so the cache's recency order (and hence
        # which entries later gestures evict) ends up exactly as the
        # per-touch loop would leave it.  Present keys referenced only by
        # prefetch contains-checks are deliberately left untouched: a
        # contains probe does not refresh the LRU.
        last_read = np.full(unique_keys.size, np.int64(-1), dtype=np.int64)
        np.maximum.at(last_read, touch_u, read_times)
        new_mask = ~present0
        event_time = np.where(new_mask, np.maximum(arrival, last_read), last_read)
        replayed = new_mask | (last_read >= 0)
        replay_idx = np.nonzero(replayed)[0]
        replay_order = replay_idx[np.argsort(event_time[replay_idx], kind="stable")]
        cache.replay_lru(
            namespace,
            rep_rowids[replay_order],
            rep_strides[replay_order],
            list(key_vals[replay_order]),
            new_mask[replay_order].tolist(),
        )

        num_hits = int(hit_mask.sum())
        outcome.cache_hits += num_hits
        outcome.cache_misses += n - num_hits
        cache.record_external(hits=num_hits, misses=n - num_hits)
        outcome.tuples_examined += int(miss_counts.sum())

        levels = np.full(n, -1, dtype=np.int64)
        levels[miss_mask] = miss_levels
        return values, levels, pf_rows, prop_times[winners]

    # ------------------------------------------------------------------ #
    # applying the query action
    # ------------------------------------------------------------------ #
    def _apply_action(
        self, state, outcome, rowids, values, fractions, timestamps, pass_rowids=None
    ):
        """Filter, fold and emit the served values as one batch.

        Reproduces the per-touch action application: the predicate drops
        touches without results, select-where projects the qualifying
        tuples' selected attributes, running aggregates display their
        evolving value, and every displayed value is emitted into the
        result stream at the touch's position and timestamp.  When the
        index prefilter served the gesture, ``values`` is ``None`` and
        the predicate decision is membership in ``pass_rowids``.
        """
        action = state.action
        if pass_rowids is not None:
            pass_mask = np.isin(rowids, pass_rowids)
        elif action.predicate is not None:
            # batch values are always scalars, matching the per-touch
            # np.isscalar guard
            pass_mask = np.asarray(action.predicate.mask(values), dtype=bool)
        else:
            pass_mask = np.ones(rowids.size, dtype=bool)
        if not pass_mask.any():
            return
        pass_rowids = rowids[pass_mask]
        pass_fractions = fractions[pass_mask]
        pass_timestamps = timestamps[pass_mask]
        if action.kind is ActionKind.SELECT_WHERE:
            # dict.fromkeys mirrors the reference path's dict-collapse of
            # duplicate select attributes in the tuples_examined count
            names = list(dict.fromkeys(action.select_attributes))
            selected = [state.table.column(name).read_batch(pass_rowids) for name in names]
            display = [dict(zip(names, row)) for row in zip(*selected)]
            outcome.tuples_examined += len(names) * int(pass_rowids.size)
        elif action.kind is ActionKind.AGGREGATE and state.aggregate is not None:
            display = state.aggregate.on_batch(values[pass_mask])
        else:
            display = values[pass_mask]
        emitted = state.results.emit_batch(
            display, pass_rowids, pass_fractions, pass_timestamps
        )
        outcome.results.extend(emitted)
        outcome.entries_returned += int(pass_rowids.size)

    def _read_rows(self, state, rowids, strides, prefetch: bool = False):
        """Read values for an array of rowids the way the per-touch path
        would: summaries through the summarizer, select-where through the
        where attribute, column scans through the sample hierarchy — or,
        for prefetch reads, through the base column (mirroring
        ``_maybe_prefetch``).  Returns (values, tuples_read, levels)."""
        config = self._kernel.config
        action = state.action
        m = int(np.asarray(rowids).size)
        if m == 0:
            return (
                np.empty(0, dtype=self._value_dtype(state)),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        if action.kind is ActionKind.SUMMARY and state.summarizer is not None:
            return state.summarizer.summarize_batch(rowids, strides)
        ones = np.ones(m, dtype=np.int64)
        zeros = np.zeros(m, dtype=np.int64)
        # reads go through Column.read_batch (not raw fancy indexing) so
        # out-of-core paged columns fault in only the touched chunks
        if state.table is not None:
            column = state.table.column(action.where_attribute)
            return column.read_batch(rowids), ones, zeros
        if (
            not prefetch
            and state.hierarchy is not None
            and config.enable_samples
        ):
            values, levels = state.hierarchy.read_batch(rowids, strides)
            return values, ones, levels
        return state.column.read_batch(rowids), ones, zeros

    def _value_dtype(self, state):
        action = state.action
        if action.kind is ActionKind.SUMMARY:
            return np.dtype(np.float64)
        if state.table is not None:
            return state.table.column(action.where_attribute).values.dtype
        return state.column.values.dtype

    @staticmethod
    def _eviction_safe(
        cache, present0, arrival, inverse, all_times, read_times
    ) -> bool:
        """Prove no LRU eviction can change this gesture's replay.

        An entry is evicted only after at least ``capacity`` distinct keys
        are inserted or refreshed above it since the entry's own last
        insertion or hit.  Per referenced key this bounds the LRU
        movements — insertions of new keys plus reads (every read either
        inserts or refreshes something) — across the key's whole reference
        span: from its first event (for pre-existing entries, the start of
        the gesture, where up to ``len(cache)`` entries may already sit
        above it) to its last.  The span contains every
        refresh-to-reference window of the key, so a bound below the
        capacity for every key proves no referenced entry can have been
        evicted mid-gesture and the first-writer analysis is exact;
        otherwise the caller falls back to the per-touch loop.
        """
        capacity = cache.capacity
        start_len = len(cache)
        insert_times = np.sort(arrival[~present0])
        if start_len + insert_times.size <= capacity:
            return True  # the cache cannot overflow during this gesture
        last_ref = np.full(arrival.size, np.int64(-1), dtype=np.int64)
        np.maximum.at(last_ref, inverse, all_times)
        span_start = np.where(present0, np.int64(-1), arrival)
        inserts_in = np.searchsorted(
            insert_times, last_ref, side="right"
        ) - np.searchsorted(insert_times, span_start, side="right")
        reads_in = np.searchsorted(
            read_times, last_ref, side="right"
        ) - np.searchsorted(read_times, span_start, side="right")
        movements = inserts_in + reads_in + np.where(present0, start_len, 0)
        # a key's own reads refresh it rather than bury it; remove them
        # from its span count (all but one may coincide with the span
        # start, so one is conservatively left in)
        n_reads = read_times.size
        own_reads = np.bincount(inverse[:n_reads], minlength=arrival.size)
        movements = movements - np.maximum(0, own_reads - 1)
        return bool(np.all(movements < capacity))

    # ------------------------------------------------------------------ #
    # prefetched-rowid bookkeeping
    # ------------------------------------------------------------------ #
    def _prefetch_membership(
        self, state, rowids, read_times, add_rows, add_times
    ) -> int:
        """Replay the prefetched-rowid set against this gesture's touches.

        A touch is a prefetch hit when its rowid is in the set at touch
        time (carried over from earlier gestures or added by an earlier
        proposal of this gesture); a hit consumes the rowid.  Rowids
        touched once are resolved vectorized; the rare revisited rowids of
        a back-and-forth gesture fall back to an exact per-rowid merge.
        Updates ``state.prefetched_rowids`` and returns the hit count.
        """
        initial: set = state.prefetched_rowids
        if not initial and not add_rows.size:
            return 0
        unique_r, counts = np.unique(rowids, return_counts=True)
        positions = np.searchsorted(unique_r, rowids)

        min_add = np.full(unique_r.size, _INT64_MAX, dtype=np.int64)
        max_add = np.full(unique_r.size, np.int64(-1), dtype=np.int64)
        stray_adds: list[int] = []
        if add_rows.size:
            add_pos = np.searchsorted(unique_r, add_rows)
            in_range = add_pos < unique_r.size
            matched = np.zeros(add_rows.size, dtype=bool)
            matched[in_range] = unique_r[add_pos[in_range]] == add_rows[in_range]
            np.minimum.at(min_add, add_pos[matched], add_times[matched])
            np.maximum.at(max_add, add_pos[matched], add_times[matched])
            stray_adds = add_rows[~matched].tolist()

        in_initial = np.zeros(unique_r.size, dtype=bool)
        if initial:
            init_arr = np.fromiter(initial, dtype=np.int64, count=len(initial))
            init_pos = np.searchsorted(unique_r, init_arr)
            in_range = init_pos < unique_r.size
            hit_init = np.zeros(init_arr.size, dtype=bool)
            hit_init[in_range] = unique_r[init_pos[in_range]] == init_arr[in_range]
            in_initial[init_pos[hit_init]] = True

        single = counts == 1
        # scatter each single-occurrence rowid's read time to its slot
        read_time_u = np.zeros(unique_r.size, dtype=np.int64)
        read_time_u[positions] = read_times
        hit_u = single & (in_initial | (min_add < read_time_u))
        final_u = single & (max_add > read_time_u)
        hits = int(hit_u.sum())

        # exact merge for rowids touched more than once
        multi = np.nonzero(~single)[0]
        if multi.size:
            adds_by_value: dict[int, list[int]] = defaultdict(list)
            if add_rows.size:
                multi_values = set(unique_r[multi].tolist())
                for value, when in zip(add_rows.tolist(), add_times.tolist()):
                    if value in multi_values:
                        adds_by_value[value].append(when)
            order = np.argsort(positions, kind="stable")
            starts = np.cumsum(counts) - counts
            for u in multi.tolist():
                value = int(unique_r[u])
                touch_idx = order[starts[u] : starts[u] + counts[u]]
                merged = sorted(
                    [(int(read_times[j]), 0) for j in touch_idx]
                    + [(when, 1) for when in adds_by_value.get(value, ())]
                )
                present = value in initial
                for _, is_add in merged:
                    if is_add:
                        present = True
                    elif present:
                        hits += 1
                        present = False
                final_u[u] = present

        survivors = set(unique_r[final_u].tolist())
        untouched_initial = initial - set(unique_r.tolist())
        state.prefetched_rowids = untouched_initial | survivors | set(stray_adds)
        return hits
