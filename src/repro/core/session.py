"""The exploration session: the public facade of the dbTouch reproduction.

An :class:`ExplorationSession` bundles a catalog, a simulated device, the
dbTouch kernel and a gesture synthesizer behind a small API that mirrors
how a person would use the prototype: load some data, put objects on the
screen, pick a query action, and then slide / tap / zoom / rotate.  In the
paper's terms, *a query is a session of one or more continuous gestures*;
the session records every gesture outcome so the full exploration can be
inspected afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.actions import (
    QueryAction,
    aggregate_action,
    scan_action,
    summary_action,
)
from repro.core.kernel import DbTouchKernel, GestureOutcome, KernelConfig
from repro.core.schema_gestures import SchemaGestureOutcome, SchemaGestures
from repro.errors import QueryError
from repro.storage.catalog import Catalog, ObjectInfo
from repro.storage.column import Column
from repro.storage.table import Table
from repro.touchio.device import DeviceProfile, IPAD1, TouchDevice
from repro.touchio.synthesizer import GestureSynthesizer, SlideSegment
from repro.touchio.views import View


@dataclass
class SessionSummary:
    """Aggregate view of everything a session did so far."""

    gestures: int = 0
    entries_returned: int = 0
    tuples_examined: int = 0
    cache_hits: int = 0
    prefetch_hits: int = 0
    max_touch_latency_s: float = 0.0


class ExplorationSession:
    """High-level, gesture-oriented interface to a dbTouch kernel.

    Parameters
    ----------
    profile:
        The simulated device profile (defaults to the paper's iPad 1).
    config:
        Kernel configuration; the defaults enable samples, caching and
        prefetching.
    jitter_cm:
        Positional noise added to synthesized gestures, for more
        human-like touch streams (0 = perfectly straight finger).
    """

    def __init__(
        self,
        profile: DeviceProfile = IPAD1,
        config: KernelConfig | None = None,
        jitter_cm: float = 0.0,
        seed: int = 11,
    ) -> None:
        self.catalog = Catalog()
        self.device = TouchDevice(profile)
        self.kernel = DbTouchKernel(self.catalog, self.device, config)
        self.synthesizer = GestureSynthesizer(profile, jitter_cm=jitter_cm, seed=seed)
        self.schema_gestures = SchemaGestures(self.kernel)
        self.history: list[GestureOutcome] = []

    # ------------------------------------------------------------------ #
    # loading and showing data
    # ------------------------------------------------------------------ #
    def load_column(self, name: str, values: Iterable) -> Column:
        """Register a standalone column in the catalog."""
        column = values if isinstance(values, Column) else Column(name, values)
        if column.name != name:
            column = column.rename(name)
        self.catalog.register_column(column)
        return column

    def load_table(self, name: str, data: Mapping[str, Iterable] | Table) -> Table:
        """Register a table in the catalog (from arrays or an existing Table)."""
        table = data if isinstance(data, Table) else Table.from_arrays(name, data)
        self.catalog.register_table(table)
        return table

    def show_column(
        self,
        object_name: str,
        column_name: str | None = None,
        height_cm: float = 10.0,
        width_cm: float = 2.0,
        x: float = 0.0,
        y: float = 0.0,
        view_name: str | None = None,
    ) -> View:
        """Place a column object on the screen and return its view."""
        return self.kernel.show_column(
            object_name,
            column_name=column_name,
            view_name=view_name,
            height_cm=height_cm,
            width_cm=width_cm,
            x=x,
            y=y,
        )

    def show_table(
        self,
        table_name: str,
        height_cm: float = 10.0,
        width_cm: float = 8.0,
        x: float = 0.0,
        y: float = 0.0,
        view_name: str | None = None,
    ) -> View:
        """Place a table object on the screen and return its view."""
        return self.kernel.show_table(
            table_name,
            view_name=view_name,
            height_cm=height_cm,
            width_cm=width_cm,
            x=x,
            y=y,
        )

    def glance(self) -> list[ObjectInfo]:
        """What the user sees by glancing at the screen: object descriptions."""
        return self.catalog.describe_all()

    # ------------------------------------------------------------------ #
    # choosing query actions
    # ------------------------------------------------------------------ #
    def choose_action(self, view: View | str, action: QueryAction) -> None:
        """Attach a query action to a shown object."""
        self.kernel.set_action(self._view_name(view), action)

    def choose_scan(self, view: View | str) -> None:
        """Shortcut: attach a plain-scan action."""
        self.choose_action(view, scan_action())

    def choose_aggregate(self, view: View | str, aggregate: str = "avg") -> None:
        """Shortcut: attach a running-aggregate action."""
        self.choose_action(view, aggregate_action(aggregate))

    def choose_summary(self, view: View | str, k: int = 10, aggregate: str = "avg") -> None:
        """Shortcut: attach an interactive-summary action (default k=10/avg,
        the configuration the paper's evaluation uses)."""
        self.choose_action(view, summary_action(k=k, aggregate=aggregate))

    # ------------------------------------------------------------------ #
    # gestures
    # ------------------------------------------------------------------ #
    def _view_name(self, view: View | str) -> str:
        return view.name if isinstance(view, View) else view

    def _view(self, view: View | str) -> View:
        return view if isinstance(view, View) else self.device.view(view)

    def _record(self, outcome: GestureOutcome) -> GestureOutcome:
        self.history.append(outcome)
        return outcome

    def slide(
        self,
        view: View | str,
        duration: float = 1.0,
        start_fraction: float = 0.0,
        end_fraction: float = 1.0,
        axis: str | None = None,
        cross_fraction: float = 0.5,
    ) -> GestureOutcome:
        """Slide a single finger over an object for ``duration`` seconds."""
        target = self._view(view)
        stream = self.synthesizer.slide(
            target,
            duration=duration,
            start_fraction=start_fraction,
            end_fraction=end_fraction,
            axis=axis if axis is not None else self._default_axis(target),
            cross_fraction=cross_fraction,
            start_time=self.device.now,
        )
        self.device.advance_clock(stream.duration)
        return self._record(self.kernel.handle_stream(stream))

    def slide_path(
        self,
        view: View | str,
        segments: Sequence[SlideSegment],
        axis: str | None = None,
        cross_fraction: float = 0.5,
    ) -> GestureOutcome:
        """Slide along a multi-leg path (speed changes, reversals, pauses)."""
        target = self._view(view)
        stream = self.synthesizer.slide_path(
            target,
            segments,
            axis=axis if axis is not None else self._default_axis(target),
            cross_fraction=cross_fraction,
            start_time=self.device.now,
        )
        self.device.advance_clock(stream.duration)
        return self._record(self.kernel.handle_stream(stream))

    def tap(self, view: View | str, fraction: float = 0.5) -> GestureOutcome:
        """Tap an object once to reveal a single value (or tuple)."""
        target = self._view(view)
        stream = self.synthesizer.tap(
            target,
            fraction=fraction,
            axis=self._default_axis(target),
            start_time=self.device.now,
        )
        self.device.advance_clock(stream.duration)
        return self._record(self.kernel.handle_stream(stream))

    def zoom_in(self, view: View | str, duration: float = 0.4) -> GestureOutcome:
        """Two-finger zoom-in: the object grows, access becomes finer-grained."""
        target = self._view(view)
        stream = self.synthesizer.zoom(target, zoom_in=True, duration=duration, start_time=self.device.now)
        self.device.advance_clock(stream.duration)
        return self._record(self.kernel.handle_stream(stream))

    def zoom_out(self, view: View | str, duration: float = 0.4) -> GestureOutcome:
        """Two-finger zoom-out: the object shrinks, access becomes coarser."""
        target = self._view(view)
        stream = self.synthesizer.zoom(target, zoom_in=False, duration=duration, start_time=self.device.now)
        self.device.advance_clock(stream.duration)
        return self._record(self.kernel.handle_stream(stream))

    def rotate(self, view: View | str, duration: float = 0.5) -> GestureOutcome:
        """Two-finger rotate: switch the object's physical layout."""
        target = self._view(view)
        stream = self.synthesizer.rotate(target, duration=duration, start_time=self.device.now)
        self.device.advance_clock(stream.duration)
        return self._record(self.kernel.handle_stream(stream))

    # ------------------------------------------------------------------ #
    # schema and layout gestures (Section 2.8)
    # ------------------------------------------------------------------ #
    def pan(self, view: View | str, dx_cm: float, dy_cm: float) -> SchemaGestureOutcome:
        """Drag an object to a different position on the screen."""
        return self.schema_gestures.pan_view(self._view(view), dx_cm, dy_cm)

    def drag_column_out(
        self,
        table_view: View | str,
        column_name: str,
        new_object_name: str | None = None,
        x: float = 0.0,
        y: float = 0.0,
        height_cm: float = 10.0,
    ) -> SchemaGestureOutcome:
        """Drag a column out of a fat table into its own smaller object."""
        return self.schema_gestures.drag_column_out(
            self._view(table_view),
            column_name,
            new_object_name=new_object_name,
            x=x,
            y=y,
            height_cm=height_cm,
        )

    def group_columns(
        self,
        column_object_names: Sequence[str],
        table_name: str,
        x: float = 0.0,
        y: float = 0.0,
        height_cm: float = 10.0,
        width_cm: float = 8.0,
    ) -> SchemaGestureOutcome:
        """Drop standalone columns into a table placeholder (drag-and-drop grouping)."""
        return self.schema_gestures.group_columns(
            list(column_object_names),
            table_name,
            x=x,
            y=y,
            height_cm=height_cm,
            width_cm=width_cm,
        )

    def ungroup_table(self, table_view: View | str, height_cm: float = 10.0) -> SchemaGestureOutcome:
        """Split a table object into one standalone object per attribute."""
        return self.schema_gestures.ungroup_table(self._view(table_view), height_cm=height_cm)

    def _default_axis(self, view: View) -> str:
        props = view.properties
        if props is not None and props.orientation == "horizontal":
            return "horizontal"
        return "vertical"

    # ------------------------------------------------------------------ #
    # session-level reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> SessionSummary:
        """Aggregate statistics over every gesture executed so far."""
        report = SessionSummary()
        for outcome in self.history:
            report.gestures += 1
            report.entries_returned += outcome.entries_returned
            report.tuples_examined += outcome.tuples_examined
            report.cache_hits += outcome.cache_hits
            report.prefetch_hits += outcome.prefetch_hits
            report.max_touch_latency_s = max(
                report.max_touch_latency_s, outcome.max_touch_latency_s
            )
        return report

    def last_outcome(self) -> GestureOutcome:
        """The most recent gesture outcome."""
        if not self.history:
            raise QueryError("no gestures have been executed in this session yet")
        return self.history[-1]
