"""The exploration session: the public facade of the dbTouch reproduction.

An :class:`ExplorationSession` mirrors how a person uses the prototype:
load some data, put objects on the screen, pick a query action, and then
slide / tap / zoom / rotate.  In the paper's terms, *a query is a session
of one or more continuous gestures*.

Since the service redesign the session is a thin facade over an
:class:`repro.service.ExplorationService`: every imperative method builds a
serializable :class:`repro.core.commands.GestureCommand` and calls
``execute`` on the backing service (an in-process
:class:`repro.service.LocalExplorationService` by default — pass
``service=`` to explore against a remote backend instead).  Because the
session speaks commands, any interactive run can be recorded with
:meth:`record` and replayed later as a :class:`GestureScript` on any
backend.  The session also keeps a running :class:`SessionSummary`,
updated per gesture, so :meth:`summary` is O(1) regardless of history
length.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.core.actions import (
    QueryAction,
    aggregate_action,
    scan_action,
    summary_action,
)
from repro.core.commands import (
    AppendCommand,
    ChooseAction,
    DragColumnOut,
    GestureCommand,
    GestureScript,
    GroupColumns,
    Pan,
    Rotate,
    ShowColumn,
    ShowTable,
    Slide,
    SlidePath,
    Tap,
    TimedCommand,
    UngroupTable,
    ZoomIn,
    ZoomOut,
)
from repro.core.kernel import GestureOutcome, KernelConfig
from repro.core.schema_gestures import SchemaGestureOutcome
from repro.errors import QueryError
from repro.service import (
    ExplorationService,
    LocalExplorationService,
    OutcomeEnvelope,
    _accepts_replace,
)
from repro.storage.catalog import ObjectInfo
from repro.storage.column import Column
from repro.storage.table import Table
from repro.touchio.device import DeviceProfile, IPAD1
from repro.touchio.synthesizer import SlideSegment
from repro.touchio.views import View


@dataclass
class SessionSummary:
    """Aggregate view of everything a session did so far."""

    gestures: int = 0
    entries_returned: int = 0
    tuples_examined: int = 0
    cache_hits: int = 0
    prefetch_hits: int = 0
    max_touch_latency_s: float = 0.0


class ExplorationSession:
    """High-level, gesture-oriented interface to an exploration backend.

    Parameters
    ----------
    profile:
        The simulated device profile (defaults to the paper's iPad 1).
    config:
        Kernel configuration; the defaults enable samples, caching and
        prefetching.
    jitter_cm:
        Positional noise added to synthesized gestures, for more
        human-like touch streams (0 = perfectly straight finger).
    service:
        The backend executing the session's commands.  ``None`` (the
        default) creates a private in-process
        :class:`repro.service.LocalExplorationService` from the other
        parameters; pass a :class:`repro.service.RemoteExplorationService`
        to run the same gestures against a simulated server deployment.
    """

    def __init__(
        self,
        profile: DeviceProfile = IPAD1,
        config: KernelConfig | None = None,
        jitter_cm: float = 0.0,
        seed: int = 11,
        service: ExplorationService | None = None,
    ) -> None:
        self._owns_service = service is None
        if service is None:
            service = LocalExplorationService(
                profile=profile, config=config, jitter_cm=jitter_cm, seed=seed
            )
        self._service = service
        self.history: list[GestureOutcome] = []
        self._summary = SessionSummary()
        self._recording: GestureScript | None = None
        self._trace: list[TimedCommand] | None = None
        self._last_trace_t: float | None = None

    # ------------------------------------------------------------------ #
    # the backing service
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> ExplorationService:
        """The backend executing this session's commands."""
        return self._service

    @property
    def catalog(self):
        """The backend's catalog (local backends only)."""
        return self._service.catalog

    @property
    def device(self):
        """The backend's simulated touch device."""
        return self._service.device

    @property
    def kernel(self):
        """The backend's dbTouch kernel (local backends only)."""
        return self._service.kernel

    @property
    def synthesizer(self):
        """The backend's gesture synthesizer."""
        return self._service.synthesizer

    @property
    def schema_gestures(self):
        """The backend's schema-gesture executor (local backends only)."""
        return self._service.schema_gestures

    def _execute(self, command: GestureCommand) -> OutcomeEnvelope:
        """Execute, then record and account one command.

        Recording happens only after the backend accepted the command, so a
        failed gesture (typo'd view name, bad geometry) never poisons the
        script for replay.
        """
        think_s = 0.0
        if self._trace is not None and self._last_trace_t is not None:
            think_s = max(0.0, time.monotonic() - self._last_trace_t)
        envelope = self._service.execute(command)
        if self._recording is not None:
            self._recording.append(command)
        if self._trace is not None:
            self._trace.append(TimedCommand(command=command, think_s=think_s))
            self._last_trace_t = time.monotonic()
        if isinstance(envelope.payload, GestureOutcome):
            self._record(envelope.payload)
        take = getattr(self._service, "take_speculation", None)
        if take is not None:
            # a session has no background lane: run the mined warm-up
            # inline (cache-only work; outcome counters are unaffected)
            job = take()
            if job is not None:
                job()
        return envelope

    # ------------------------------------------------------------------ #
    # recording and replay
    # ------------------------------------------------------------------ #
    def record(self, name: str = "") -> GestureScript:
        """Start recording: every subsequent command lands in the returned script.

        The script is live — it grows as the session executes commands —
        and survives the session via ``script.to_json()``.  Data loading is
        host-side and is *not* recorded; replaying a script requires the
        referenced columns/tables to be loaded on the target backend.
        """
        self._recording = GestureScript(name=name)
        return self._recording

    @property
    def recording(self) -> GestureScript | None:
        """The live script being recorded, or ``None``."""
        return self._recording

    def stop_recording(self) -> GestureScript | None:
        """Stop recording and return the finished script."""
        script, self._recording = self._recording, None
        return script

    def record_trace(self) -> list[TimedCommand]:
        """Start recording a *paced* trace: commands plus real think-times.

        Like :meth:`record`, but each accepted command is captured as a
        :class:`repro.core.commands.TimedCommand` whose ``think_s`` is the
        wall-clock gap since the previous command completed — the pacing a
        human (or driver) actually left between gestures.  The resulting
        trace replays on a :class:`repro.service.MultiSessionServer` via
        ``replay_traces``, turning one interactive exploration into a
        serving workload.  The returned list is live and grows as the
        session executes commands.
        """
        self._trace = []
        self._last_trace_t = None
        return self._trace

    def stop_trace(self) -> list[TimedCommand] | None:
        """Stop trace recording and return the finished paced trace."""
        trace, self._trace = self._trace, None
        self._last_trace_t = None
        return trace

    # ------------------------------------------------------------------ #
    # mined speculation
    # ------------------------------------------------------------------ #
    def adopt_speculation(self, policy) -> None:
        """Drive this session's speculation from a mined policy.

        Convenience pass-through to
        :meth:`repro.service.LocalExplorationService.adopt_speculation`
        for sessions over a local backend — traces recorded with
        :meth:`record_trace`, mined into a
        :class:`repro.mining.model.GestureTransitionModel` and wrapped in
        a :class:`repro.mining.policy.SpeculativePolicy` close the loop
        back into the session that recorded them.
        """
        adopt = getattr(self._service, "adopt_speculation", None)
        if adopt is None:
            raise QueryError(
                f"the {getattr(self._service, 'backend', '?')!r} backend "
                "does not support speculation adoption"
            )
        adopt(policy)

    def speculation_stats(self) -> dict[str, int] | None:
        """Mined-speculation counters (``None`` without an adopted policy)."""
        stats = getattr(self._service, "speculation_stats", None)
        return stats() if callable(stats) else None

    def run(self, script: GestureScript) -> list[OutcomeEnvelope]:
        """Replay a script through this session (outcomes land in history)."""
        commands = list(script)
        if script is self._recording:
            # replaying the live recording: suspend recording so the replayed
            # commands are not appended back into the script being iterated
            saved, self._recording = self._recording, None
            try:
                return [self._execute(command) for command in commands]
            finally:
                self._recording = saved
        return [self._execute(command) for command in commands]

    # ------------------------------------------------------------------ #
    # session lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Recycle the session: fresh backend state, empty history/summary.

        Long-running drivers can reuse one session object for many
        independent explorations without leaking catalog or view state.
        The backing service is reset only when the session created it; an
        injected (possibly shared) service belongs to its owner, so only
        the session-side state is discarded in that case.
        """
        if self._owns_service:
            self._service.reset()
        self.history = []
        self._summary = SessionSummary()
        self._recording = None
        self._trace = None
        self._last_trace_t = None

    def __enter__(self) -> "ExplorationSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.reset()
        return False

    # ------------------------------------------------------------------ #
    # loading and showing data
    # ------------------------------------------------------------------ #
    def _replace_loader(self, method_name: str):
        """The backend's loader if it supports ``replace=``, else raise."""
        loader = getattr(self._service, method_name, None)
        if loader is None or not _accepts_replace(loader):
            raise QueryError(
                f"the {getattr(self._service, 'backend', 'backing')!r} backend "
                f"does not support replace-reloads via {method_name}()"
            )
        return loader

    def load_column(self, name: str, values: Iterable, replace: bool = False) -> Column:
        """Register a standalone column on the backend (host-side, not recorded).

        ``replace`` reloads an already-registered column: shown views are
        re-bound and stale caches invalidated (local backends only).
        """
        if replace:
            return self._replace_loader("load_column")(name, values, replace=True)
        return self._service.load_column(name, values)

    def load_table(
        self, name: str, data: Mapping[str, Iterable] | Table, replace: bool = False
    ) -> Table:
        """Register a table on the backend (from arrays or an existing Table)."""
        if replace:
            return self._replace_loader("load_table")(name, data, replace=True)
        return self._service.load_table(name, data)

    def append(
        self,
        object_name: str,
        values: Iterable | None = None,
        columns: Mapping[str, Iterable] | None = None,
    ) -> int:
        """Append rows to an already-loaded object, mid-exploration.

        Unlike :meth:`load_column`, appending *is* part of the command
        vocabulary (:class:`repro.core.commands.AppendCommand`), so it is
        recorded and replays at the same position in the script — which
        is what lets a replay reproduce an exploration over live,
        incrementally arriving data.  Shown views stay live: cracked
        indexes keep their pieces and tail-scan the appended rows until
        the backend merges them in.  Returns the object's new row count.
        """
        normalized_values = None if values is None else tuple(values)
        normalized_columns = (
            None
            if columns is None
            else {name: tuple(rows) for name, rows in columns.items()}
        )
        envelope = self._execute(
            AppendCommand(
                object_name=object_name,
                values=normalized_values,
                columns=normalized_columns,
            )
        )
        return int(envelope.payload["num_rows"])

    def show_column(
        self,
        object_name: str,
        column_name: str | None = None,
        height_cm: float = 10.0,
        width_cm: float = 2.0,
        x: float = 0.0,
        y: float = 0.0,
        view_name: str | None = None,
    ) -> View:
        """Place a column object on the screen and return its view."""
        envelope = self._execute(
            ShowColumn(
                object_name=object_name,
                column_name=column_name,
                height_cm=height_cm,
                width_cm=width_cm,
                x=x,
                y=y,
                view_name=view_name,
            )
        )
        return envelope.payload

    def show_table(
        self,
        table_name: str,
        height_cm: float = 10.0,
        width_cm: float = 8.0,
        x: float = 0.0,
        y: float = 0.0,
        view_name: str | None = None,
    ) -> View:
        """Place a table object on the screen and return its view."""
        envelope = self._execute(
            ShowTable(
                table_name=table_name,
                height_cm=height_cm,
                width_cm=width_cm,
                x=x,
                y=y,
                view_name=view_name,
            )
        )
        return envelope.payload

    def glance(self) -> list[ObjectInfo]:
        """What the user sees by glancing at the screen: object descriptions."""
        return self.catalog.describe_all()

    # ------------------------------------------------------------------ #
    # choosing query actions
    # ------------------------------------------------------------------ #
    def choose_action(self, view: View | str, action: QueryAction) -> None:
        """Attach a query action to a shown object."""
        self._execute(ChooseAction(view=self._view_name(view), action=action))

    def choose_scan(self, view: View | str) -> None:
        """Shortcut: attach a plain-scan action."""
        self.choose_action(view, scan_action())

    def choose_aggregate(self, view: View | str, aggregate: str = "avg") -> None:
        """Shortcut: attach a running-aggregate action."""
        self.choose_action(view, aggregate_action(aggregate))

    def choose_summary(self, view: View | str, k: int = 10, aggregate: str = "avg") -> None:
        """Shortcut: attach an interactive-summary action (default k=10/avg,
        the configuration the paper's evaluation uses)."""
        self.choose_action(view, summary_action(k=k, aggregate=aggregate))

    # ------------------------------------------------------------------ #
    # bulk range selection
    # ------------------------------------------------------------------ #
    def select_where(self, view: View | str, predicate=None):
        """Whole-object range selection over the object shown in ``view``.

        Delegates to the backend's ``select_where`` extra (local backends
        only): the adaptive indexing tier — refined as a side effect of
        this session's filtered slides — answers repeated range predicates
        from cracked pieces or zonemap-pruned chunks instead of full
        scans.  Not a gesture, so it is neither recorded nor counted in
        :meth:`summary`.  Returns a
        :class:`repro.indexing.manager.RangeSelection`.
        """
        select = getattr(self._service, "select_where", None)
        if select is None:
            raise QueryError(
                f"the {getattr(self._service, 'backend', '?')!r} backend does "
                "not support bulk select_where"
            )
        return select(self._view_name(view), predicate)

    # ------------------------------------------------------------------ #
    # gestures
    # ------------------------------------------------------------------ #
    def _view_name(self, view: View | str) -> str:
        return view.name if isinstance(view, View) else view

    def _record(self, outcome: GestureOutcome) -> GestureOutcome:
        self.history.append(outcome)
        summary = self._summary
        summary.gestures += 1
        summary.entries_returned += outcome.entries_returned
        summary.tuples_examined += outcome.tuples_examined
        summary.cache_hits += outcome.cache_hits
        summary.prefetch_hits += outcome.prefetch_hits
        summary.max_touch_latency_s = max(
            summary.max_touch_latency_s, outcome.max_touch_latency_s
        )
        return outcome

    def slide(
        self,
        view: View | str,
        duration: float = 1.0,
        start_fraction: float = 0.0,
        end_fraction: float = 1.0,
        axis: str | None = None,
        cross_fraction: float = 0.5,
    ) -> GestureOutcome:
        """Slide a single finger over an object for ``duration`` seconds."""
        envelope = self._execute(
            Slide(
                view=self._view_name(view),
                duration=duration,
                start_fraction=start_fraction,
                end_fraction=end_fraction,
                axis=axis,
                cross_fraction=cross_fraction,
            )
        )
        return envelope.payload

    def slide_path(
        self,
        view: View | str,
        segments: Sequence[SlideSegment],
        axis: str | None = None,
        cross_fraction: float = 0.5,
    ) -> GestureOutcome:
        """Slide along a multi-leg path (speed changes, reversals, pauses)."""
        envelope = self._execute(
            SlidePath(
                view=self._view_name(view),
                segments=tuple(segments),
                axis=axis,
                cross_fraction=cross_fraction,
            )
        )
        return envelope.payload

    def tap(self, view: View | str, fraction: float = 0.5) -> GestureOutcome:
        """Tap an object once to reveal a single value (or tuple)."""
        envelope = self._execute(Tap(view=self._view_name(view), fraction=fraction))
        return envelope.payload

    def zoom_in(self, view: View | str, duration: float = 0.4) -> GestureOutcome:
        """Two-finger zoom-in: the object grows, access becomes finer-grained."""
        envelope = self._execute(ZoomIn(view=self._view_name(view), duration=duration))
        return envelope.payload

    def zoom_out(self, view: View | str, duration: float = 0.4) -> GestureOutcome:
        """Two-finger zoom-out: the object shrinks, access becomes coarser."""
        envelope = self._execute(ZoomOut(view=self._view_name(view), duration=duration))
        return envelope.payload

    def rotate(self, view: View | str, duration: float = 0.5) -> GestureOutcome:
        """Two-finger rotate: switch the object's physical layout."""
        envelope = self._execute(Rotate(view=self._view_name(view), duration=duration))
        return envelope.payload

    # ------------------------------------------------------------------ #
    # schema and layout gestures (Section 2.8)
    # ------------------------------------------------------------------ #
    def pan(self, view: View | str, dx_cm: float, dy_cm: float) -> SchemaGestureOutcome:
        """Drag an object to a different position on the screen."""
        envelope = self._execute(
            Pan(view=self._view_name(view), dx_cm=dx_cm, dy_cm=dy_cm)
        )
        return envelope.payload

    def drag_column_out(
        self,
        table_view: View | str,
        column_name: str,
        new_object_name: str | None = None,
        x: float = 0.0,
        y: float = 0.0,
        height_cm: float = 10.0,
    ) -> SchemaGestureOutcome:
        """Drag a column out of a fat table into its own smaller object."""
        envelope = self._execute(
            DragColumnOut(
                table_view=self._view_name(table_view),
                column_name=column_name,
                new_object_name=new_object_name,
                x=x,
                y=y,
                height_cm=height_cm,
            )
        )
        return envelope.payload

    def group_columns(
        self,
        column_object_names: Sequence[str],
        table_name: str,
        x: float = 0.0,
        y: float = 0.0,
        height_cm: float = 10.0,
        width_cm: float = 8.0,
    ) -> SchemaGestureOutcome:
        """Drop standalone columns into a table placeholder (drag-and-drop grouping)."""
        envelope = self._execute(
            GroupColumns(
                column_object_names=tuple(column_object_names),
                table_name=table_name,
                x=x,
                y=y,
                height_cm=height_cm,
                width_cm=width_cm,
            )
        )
        return envelope.payload

    def ungroup_table(
        self, table_view: View | str, height_cm: float = 10.0
    ) -> SchemaGestureOutcome:
        """Split a table object into one standalone object per attribute."""
        envelope = self._execute(
            UngroupTable(table_view=self._view_name(table_view), height_cm=height_cm)
        )
        return envelope.payload

    # ------------------------------------------------------------------ #
    # session-level reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> SessionSummary:
        """Aggregate statistics over every gesture executed so far.

        The summary is maintained incrementally as gestures execute, so
        this is O(1) in the length of the history.
        """
        return replace(self._summary)

    def last_outcome(self) -> GestureOutcome:
        """The most recent gesture outcome."""
        if not self.history:
            raise QueryError("no gestures have been executed in this session yet")
        return self.history[-1]
